"""Tests for the virtually synchronous SMR layer and shared-memory emulation."""

from __future__ import annotations

import pytest

from repro.sim.stacks import stack
from repro.vs.smr import KeyValueStateMachine, LogStateMachine, RegisterStateMachine
from repro.vs.view import View, newer_view
from repro.vs.virtual_synchrony import VSStatus
from repro.vs.shared_memory import SharedRegister
from repro.counters.counter import Counter
from repro.labels.label import EpochLabel

from tests.conftest import quick_cluster


class TestStateMachines:
    def test_log_machine_roundtrip(self):
        machine = LogStateMachine()
        machine.apply("a")
        machine.apply("b")
        snapshot = machine.snapshot()
        other = LogStateMachine()
        other.restore(snapshot)
        assert other.log == ["a", "b"]
        other.reset()
        assert other.log == []

    def test_kv_machine_operations(self):
        machine = KeyValueStateMachine()
        machine.apply(("put", "x", 1))
        machine.apply(("put", "y", 2))
        assert machine.apply(("get", "x")) == 1
        assert machine.apply(("del", "y")) == 2
        assert machine.data == {"x": 1}
        assert machine.apply("garbage") is None

    def test_register_machine(self):
        machine = RegisterStateMachine()
        machine.apply(("write", "v1", 7, 1))
        assert machine.value == "v1"
        assert machine.last_writer == 7
        snapshot = machine.snapshot()
        machine.apply(("write", "v2", 8, 2))
        machine.restore(snapshot)
        assert machine.value == "v1"
        assert machine.write_count == 1


class TestView:
    def _counter(self, seqn, wid=1):
        return Counter(label=EpochLabel(1, 0, frozenset()), seqn=seqn, wid=wid)

    def test_view_membership_and_coordinator(self):
        view = View(view_id=self._counter(3, wid=5), members=frozenset([1, 5]))
        assert 5 in view
        assert len(view) == 2
        assert view.coordinator == 5

    def test_newer_view(self):
        old = View(view_id=self._counter(1), members=frozenset([1]))
        new = View(view_id=self._counter(2), members=frozenset([1, 2]))
        assert newer_view(old, new) == new
        assert newer_view(None, old) == old
        assert newer_view(old, None) == old


class _VSCluster:
    """Cluster of nodes running counters + virtual synchrony."""

    def __init__(self, n, seed, machine_factory=LogStateMachine):
        self.cluster = quick_cluster(
            n, seed=seed, stack=stack("vs_smr", state_machine=machine_factory)
        )
        self.vs = {pid: node.service("vs") for pid, node in self.cluster.nodes.items()}
        assert self.cluster.run_until_converged(timeout=800)

    def set_reconfigure(self, pid, value):
        """Flip the coordinator's evalConfig() through the control mailbox."""
        self.cluster.nodes[pid].control["reconfigure"] = value

    def _alive(self):
        return {
            pid: vs
            for pid, vs in self.vs.items()
            if not self.cluster.nodes[pid].crashed
        }

    def wait_for_view(self, timeout=3000):
        return self.cluster.run_until(
            lambda: any(
                vs.view is not None and vs.status is VSStatus.MULTICAST and vs.is_coordinator()
                for vs in self._alive().values()
            ),
            timeout=self.cluster.simulator.now + timeout,
        )

    def coordinator(self):
        for pid, vs in self._alive().items():
            if vs.is_coordinator() and vs.view is not None:
                return pid
        return None

    def members_in_view(self):
        coord = self.coordinator()
        if coord is None:
            return []
        return [pid for pid in self.vs if self.vs[coord].view and pid in self.vs[coord].view]


class TestVirtualSynchrony:
    def test_view_installation_and_coordinator_election(self):
        env = _VSCluster(4, seed=71)
        assert env.wait_for_view()
        coord = env.coordinator()
        assert coord is not None
        view = env.vs[coord].view
        assert coord in view.members
        assert len(view.members & env.cluster.agreed_configuration()) >= 3

    def test_total_order_delivery(self):
        env = _VSCluster(4, seed=72)
        assert env.wait_for_view()
        env.vs[0].submit("a")
        env.vs[1].submit("b")
        env.vs[2].submit("c")
        env.cluster.run_until(
            lambda: all(len(vs.machine.log) == 3 for vs in env.vs.values()),
            timeout=env.cluster.simulator.now + 300,
        )
        logs = {tuple(vs.machine.log) for vs in env.vs.values()}
        assert len(logs) == 1
        assert set(next(iter(logs))) == {"a", "b", "c"}

    def test_delivery_callback_invoked(self):
        env = _VSCluster(3, seed=73)
        assert env.wait_for_view()
        delivered = []
        coord = env.coordinator()
        env.vs[coord].delivery_callback = lambda rnd, view, batch: delivered.extend(batch)
        env.vs[coord].submit("hello")
        env.cluster.run_until(
            lambda: "hello" in delivered, timeout=env.cluster.simulator.now + 200
        )
        assert "hello" in delivered

    def test_coordinator_crash_elects_new_coordinator(self):
        env = _VSCluster(4, seed=74)
        assert env.wait_for_view()
        old_coord = env.coordinator()
        env.vs[old_coord].submit("before-crash")
        env.cluster.run_until(
            lambda: any(
                "before-crash" in vs.machine.log for pid, vs in env.vs.items() if pid != old_coord
            ),
            timeout=env.cluster.simulator.now + 300,
        )
        env.cluster.crash(old_coord)
        assert env.cluster.run_until(
            lambda: any(
                vs.is_coordinator() and vs.view is not None and old_coord not in vs.view.members
                for pid, vs in env.vs.items()
                if pid != old_coord
            ),
            timeout=env.cluster.simulator.now + 5000,
        )
        new_coord = env.coordinator()
        assert new_coord is not None and new_coord != old_coord
        # State survived the coordinator change.
        assert "before-crash" in env.vs[new_coord].machine.log

    def test_coordinator_led_reconfiguration_preserves_state(self):
        env = _VSCluster(4, seed=75)
        assert env.wait_for_view()
        coord = env.coordinator()
        env.vs[coord].submit("persist-me")
        env.cluster.run_until(
            lambda: all("persist-me" in vs.machine.log for vs in env.vs.values()),
            timeout=env.cluster.simulator.now + 300,
        )
        # A membership change (a joiner) makes the participant set differ from
        # the configuration, so the coordinator has something to reconfigure to.
        joiner = env.cluster.add_joiner(9)
        assert env.cluster.run_until(
            lambda: joiner.scheme.is_participant(),
            timeout=env.cluster.simulator.now + 3000,
        )
        installs_before = sum(node.recsa.install_count for node in env.cluster.nodes.values())
        # The coordinator's evalConfig() now asks for a delicate reconfiguration.
        env.set_reconfigure(coord, True)
        assert env.cluster.run_until(
            lambda: sum(node.recsa.install_count for node in env.cluster.nodes.values())
            > installs_before,
            timeout=env.cluster.simulator.now + 5000,
        )
        env.set_reconfigure(coord, False)
        assert env.cluster.run_until_converged(timeout=3000)
        # The new configuration includes the joiner, the reconfiguration was
        # requested by the VS coordinator, and the replicated state survived.
        assert 9 in env.cluster.agreed_configuration()
        assert env.vs[coord].reconfigurations_requested >= 1
        assert env.wait_for_view(timeout=5000)
        new_coord = env.coordinator()
        assert "persist-me" in env.vs[new_coord].machine.log

    def test_reconfiguration_request_skipped_when_nothing_to_change(self):
        env = _VSCluster(3, seed=79)
        assert env.wait_for_view()
        coord = env.coordinator()
        # Participants already equal the configuration: the policy fires but
        # there is nothing to reconfigure to, and the service must resume
        # (rather than staying suspended forever).
        env.set_reconfigure(coord, True)
        env.cluster.run(until=env.cluster.simulator.now + 120)
        env.set_reconfigure(coord, False)
        env.cluster.run(until=env.cluster.simulator.now + 120)
        env.vs[coord].submit("still-alive")
        assert env.cluster.run_until(
            lambda: all("still-alive" in vs.machine.log for vs in env._alive().values()),
            timeout=env.cluster.simulator.now + 500,
        )


class TestSharedRegister:
    def test_requires_register_machine(self):
        env = _VSCluster(3, seed=76)
        with pytest.raises(TypeError):
            SharedRegister(0, env.vs[0])

    def test_write_read_roundtrip(self):
        env = _VSCluster(3, seed=77, machine_factory=RegisterStateMachine)
        assert env.wait_for_view()
        registers = {pid: SharedRegister(pid, vs) for pid, vs in env.vs.items()}
        registers[0].write("value-1")
        env.cluster.run_until(
            lambda: all(reg.read() == "value-1" for reg in registers.values()),
            timeout=env.cluster.simulator.now + 300,
        )
        value, writer, count = registers[1].read_with_metadata()
        assert value == "value-1"
        assert writer == 0
        assert count == 1

    def test_concurrent_writes_totally_ordered(self):
        env = _VSCluster(3, seed=78, machine_factory=RegisterStateMachine)
        assert env.wait_for_view()
        registers = {pid: SharedRegister(pid, vs) for pid, vs in env.vs.items()}
        registers[0].write("from-0")
        registers[1].write("from-1")
        env.cluster.run_until(
            lambda: all(len(reg.history()) == 2 for reg in registers.values()),
            timeout=env.cluster.simulator.now + 300,
        )
        histories = {tuple(reg.history()) for reg in registers.values()}
        assert len(histories) == 1
        final_values = {reg.read() for reg in registers.values()}
        assert len(final_values) == 1
