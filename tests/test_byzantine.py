"""Tests for the Byzantine fault layer (behaviors, traitors, audit wiring).

Pins the layer's load-bearing guarantees: the behavior registry and
deterministic traitor planning, interceptor install/uninstall through the
fault injector, the failure detector's heartbeat-inflation clamp, the
motivating counterexample (an equivocating traitor splits the naive
baseline's deliveries — ``rb_agreement`` violated — while Bracha certifies
under the same adversary), ddmin shrinking of a violating traitor program to
its minimal behavior, and byte-identical warm prefix reuse for Byzantine
audit cases.
"""

from __future__ import annotations

import copy

import pytest

from repro.audit.byzantine import (
    BEHAVIORS,
    ByzantineSpec,
    TraitorProgram,
    available_behaviors,
    get_behavior,
    plan_assignments,
    select_traitors,
)
from repro.audit.harness import (
    STACK_INVARIANTS,
    AuditCase,
    prefix_snapshot,
    run_case,
    shrink_case,
)
from repro.common.rng import make_rng
from repro.failure_detector.ntheta import NThetaFailureDetector
from repro.sim.faults import FaultInjector

from tests.conftest import quick_cluster

ALL_BEHAVIORS = ("forge", "mutate", "drop", "equivocate", "inflate")


def _violated(result):
    """Names of the invariants that recorded violation intervals."""
    summary = result.get("invariants") or {}
    return sorted({v["name"] for v in summary.get("intervals", ())})


def _strip_wall(result):
    result = copy.deepcopy(result)
    result.pop("wall_seconds", None)
    result.pop("worker_pid", None)
    return result


# ---------------------------------------------------------------------------
# Behavior registry + deterministic traitor planning
# ---------------------------------------------------------------------------
class TestRegistryAndPlanning:
    def test_registry_contains_the_five_core_behaviors(self):
        assert set(ALL_BEHAVIORS) <= set(available_behaviors())
        for name in ALL_BEHAVIORS:
            behavior = get_behavior(name)
            assert behavior.name == name and behavior.description

    def test_unknown_behavior_raises(self):
        with pytest.raises(KeyError, match="unknown byzantine behavior"):
            get_behavior("bribe")

    def test_selection_policies(self):
        cluster = quick_cluster(5, stack="rb_bracha")
        assert cluster.run_until_converged(timeout=2_000)
        rng = make_rng(7, "test-selection")
        assert select_traitors(cluster, 2, "lowest", rng) == [0, 1]
        sampled = select_traitors(cluster, 2, "random", rng)
        assert len(sampled) == 2 and set(sampled) <= set(cluster.nodes)
        adaptive = select_traitors(cluster, 1, "coordinator", make_rng(7, "x"))
        assert len(adaptive) == 1
        with pytest.raises(KeyError, match="unknown traitor selection"):
            select_traitors(cluster, 1, "nepotism", rng)

    def test_plan_is_deterministic_and_ordered(self):
        cluster = quick_cluster(5, stack="rb_bracha")
        assert cluster.run_until_converged(timeout=2_000)
        spec = ByzantineSpec(behaviors=("forge", "equivocate"), traitors=2)
        plan = plan_assignments(cluster, spec)
        assert plan == [
            (0, "forge"), (0, "equivocate"), (1, "forge"), (1, "equivocate"),
        ]
        assert plan == plan_assignments(cluster, spec)


# ---------------------------------------------------------------------------
# Interceptor lifecycle through the fault injector
# ---------------------------------------------------------------------------
class TestTraitorLifecycle:
    def test_make_byzantine_installs_and_restore_honest_removes(self):
        cluster = quick_cluster(5, stack="rb_bracha")
        assert cluster.run_until_converged(timeout=2_000)
        injector = FaultInjector(cluster.simulator, seed=3)
        program = TraitorProgram(cluster, 1, ("equivocate",), seed=3)
        assert injector.make_byzantine(cluster, 1, program)
        assert cluster.simulator.outbound_interceptors[1] is program
        assert 1 in cluster.byzantine_pids and program.active

        injector.restore_honest(1)
        assert 1 not in cluster.simulator.outbound_interceptors
        assert not program.active
        # The pid stays marked: its local state carries no guarantees.
        assert 1 in cluster.byzantine_pids

    def test_make_byzantine_refuses_dead_nodes(self):
        cluster = quick_cluster(4, stack="rb_bracha")
        assert cluster.run_until_converged(timeout=2_000)
        cluster.try_crash(2)
        injector = FaultInjector(cluster.simulator, seed=1)
        program = TraitorProgram(cluster, 2, ("forge",), seed=1)
        assert not injector.make_byzantine(cluster, 2, program)
        assert 2 not in cluster.simulator.outbound_interceptors

    def test_traitor_emissions_bypass_interception(self):
        """Forged spontaneous traffic must not recurse into the interceptor."""
        cluster = quick_cluster(5, stack="rb_bracha")
        assert cluster.run_until_converged(timeout=2_000)
        injector = FaultInjector(cluster.simulator, seed=5)
        program = TraitorProgram(cluster, 0, ("forge", "inflate"), seed=5)
        assert injector.make_byzantine(cluster, 0, program)
        cluster.run(until=cluster.simulator.now + 30.0)
        assert program.forged > 0 and program.inflated > 0
        # Honest nodes survived the junk: simulation kept executing and the
        # garbage landed in quarantine counters, not exceptions.
        for node in cluster.alive_nodes():
            if node.pid != 0:
                rb = node.service_map["rb"]
                assert rb.statistics()["variant"] == "bracha"


# ---------------------------------------------------------------------------
# Failure-detector inflation clamp (satellite hardening)
# ---------------------------------------------------------------------------
class TestInflationClamp:
    def _fd_with_peers(self, peers=(1, 2, 3, 4)):
        fd = NThetaFailureDetector(0, upper_bound_n=10)
        for _ in range(3):  # interleaved honest rounds register everyone
            for peer in peers:
                fd.heartbeat(peer)
        return fd

    def test_burst_from_freshest_sender_ages_at_clamped_rate(self):
        fd = self._fd_with_peers()
        baseline = fd.snapshot_counts()[1]
        burst = 120
        for _ in range(burst):
            fd.heartbeat(2)  # sender 2 is already the freshest entry
        aged = fd.snapshot_counts()[1] - baseline
        assert aged == burst // NThetaFailureDetector.INFLATION_CLAMP

    def test_interleaved_honest_traffic_resets_the_streak(self):
        fd = self._fd_with_peers()
        before = fd.snapshot_counts()[3]
        for _ in range(8):
            fd.heartbeat(1)
            fd.heartbeat(2)  # alternating fresh senders: every beat ages
        assert fd.snapshot_counts()[3] == before + 16

    @staticmethod
    def _storm(clamp=None):
        """Honest heartbeat rounds with a 25-beat traitor burst after each."""
        fd = NThetaFailureDetector(0, upper_bound_n=10)
        if clamp is not None:
            fd.INFLATION_CLAMP = clamp  # instance override: pre-fix behaviour
        for _ in range(12):
            for peer in (1, 2, 3, 4):
                fd.heartbeat(peer)
            for _ in range(25):
                fd.heartbeat(2)
        return fd

    def test_heartbeat_storm_does_not_poison_trusted(self):
        fd = self._storm()
        assert fd.trusted() == frozenset({0, 1, 2, 3, 4})

    def test_unclamped_storm_did_poison_trusted(self):
        # The regression the clamp fixes: with every traitor beat aging the
        # vector (clamp 1 ≡ pre-fix), honest peers blow past the suspicion
        # gap between their legitimate heartbeats.
        fd = self._storm(clamp=1)
        assert {1, 3, 4} & fd.suspects()

    def test_single_live_peer_still_ages_out_the_crashed(self):
        # Everyone but peer 1 crashed: peer 1 is the only traffic source, so
        # every beat comes from an already-freshest sender.  The clamp must
        # slow aging, not freeze it — the crashed peers' counts keep growing
        # until the gap rule suspects them.
        fd = self._fd_with_peers()
        for _ in range(2_000):
            fd.heartbeat(1)
        assert 1 in fd.trusted()
        assert {2, 3, 4} <= fd.suspects()


# ---------------------------------------------------------------------------
# The pinned counterexample + the protocol that fixes it
# ---------------------------------------------------------------------------
EQUIVOCATE = ByzantineSpec(behaviors=("equivocate",), traitors=1)


def _case(stack, byzantine):
    # ``build_cases`` arms the stack's invariants automatically; direct
    # construction must pass them (an AuditCase without invariants only
    # probes convergence, so violations would go unrecorded).
    return AuditCase(
        scheduler="uniform",
        corruption_seed=0,
        stack=stack,
        profile="none",
        invariants=STACK_INVARIANTS[stack],
        byzantine=byzantine,
    )


class TestAuditIntegration:
    def test_equivocation_splits_the_naive_baseline(self):
        """The motivating violation: no echo round ⇒ honest nodes deliver
        different payloads for the same message id."""
        result = run_case(_case("rb_naive", EQUIVOCATE), seed=0)
        assert not result["ok"]
        assert "rb_agreement" in _violated(result)

    def test_bracha_certifies_under_the_same_adversary(self):
        result = run_case(_case("rb_bracha", EQUIVOCATE), seed=0)
        assert result["ok"], _violated(result)
        assert _violated(result) == []

    def test_bracha_certifies_under_all_behaviors(self):
        spec = ByzantineSpec(behaviors=ALL_BEHAVIORS, traitors=1)
        result = run_case(_case("rb_bracha", spec), seed=1)
        assert result["ok"], _violated(result)

    def test_shrink_finds_the_minimal_traitor_behavior(self):
        spec = ByzantineSpec(
            behaviors=("forge", "drop", "equivocate", "inflate"), traitors=1
        )
        report = shrink_case(_case("rb_naive", spec), seed=0)
        assert report["plan"] == "byzantine"
        assert report["still_fails"]
        assert report["minimal_size"] == 1
        assert report["atoms"] == ["traitor 0: equivocate"]

    def test_byzantine_case_warm_prefix_is_byte_identical(self):
        case = _case("rb_bracha", EQUIVOCATE)
        cold = run_case(case, seed=0, record_atoms=True)
        snapshot = prefix_snapshot(case, seed=0)
        assert snapshot is not None
        warm = run_case(case, seed=0, record_atoms=True, snapshot=snapshot)
        assert _strip_wall(warm) == _strip_wall(cold)
        byz_reports = [
            r for r in warm["workload_reports"] if r.get("workload") == "byzantine"
        ]
        assert byz_reports and byz_reports[0]["atoms"] == ["traitor 0: equivocate"]
