"""Tests for the declarative scenario engine and the layers beneath it.

Covers the config layer (ClusterConfig presets, the channel-conflict guard),
the service layer (stack profiles instantiated by nodes and joiners), the
unified ``Workload.install(cluster)`` protocol (churn guard/dedup, corruption
and fault campaigns), probes, scenario determinism and the parallel runner.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import probes
from repro.common.errors import SimulationError
from repro.scenarios import (
    ChurnWorkload,
    CrashWorkload,
    ScenarioSpec,
    ScrambleWorkload,
    available_scenarios,
    get_scenario,
    run_matrix,
    run_scenario,
)
from repro.sim.cluster import build_cluster
from repro.sim.config import ClusterConfig, fast_sim, paper_faithful, preset
from repro.sim.faults import TransientFaultCampaign
from repro.sim.network import ChannelConfig
from repro.sim.stacks import available_stacks, get_stack, stack
from repro.workloads.churn import ChurnEvent, ChurnTrace
from repro.workloads.corruption import scramble_cluster

from tests.conftest import quick_cluster

COMPOSED = [
    "churn_during_corruption",
    "quorum_edge_crash_storm",
    "flash_join_wave",
    "partition_heal",
    "register_under_churn",
    "arbitrary_state_recovery",
    "arbitrary_state_reorder",
]


class TestClusterConfig:
    def test_presets_resolve(self):
        for name in ("fast_sim", "paper_faithful", "coherent_start"):
            config = preset(name).resolve(4)
            assert config.channel is not None
            assert config.upper_bound_n == 8

    def test_unknown_preset_raises(self):
        with pytest.raises(SimulationError, match="unknown cluster preset"):
            preset("warp_speed")

    def test_paper_faithful_is_stricter(self):
        config = paper_faithful()
        assert config.require_link_cleaning
        assert config.heartbeat_resend_interval == 1

    def test_conflicting_channel_capacity_raises(self):
        with pytest.raises(SimulationError, match="conflicting channel"):
            build_cluster(
                n=3,
                channel_config=ChannelConfig(capacity=8),
                channel_capacity=4,
            )

    def test_agreeing_channel_capacity_accepted(self):
        cluster = build_cluster(
            n=3, channel_config=ChannelConfig(capacity=4), channel_capacity=4
        )
        assert cluster.channel_capacity == 4

    def test_capacity_alone_builds_channel(self):
        cluster = build_cluster(n=3, channel_capacity=5)
        assert cluster.config.channel.capacity == 5

    def test_preset_capacity_override_resizes_channel(self):
        # Overriding only the capacity must keep the preset's delay shape.
        config = fast_sim(channel_capacity=16).resolve(3)
        assert config.channel.capacity == 16
        assert config.channel.max_delay == 0.6
        cluster = build_cluster(n=3, config=fast_sim(), channel_capacity=16)
        assert cluster.channel_capacity == 16

    def test_resolved_config_reusable_with_new_channel(self):
        # A resolved config bakes channel_capacity in; overriding the channel
        # alone must not trip the conflict guard on the next resolve.
        resolved = fast_sim().resolve(3)
        cluster = build_cluster(
            n=3, config=resolved, channel_config=ChannelConfig(capacity=4)
        )
        assert cluster.channel_capacity == 4

    def test_config_shared_by_late_joiners(self):
        cluster = quick_cluster(3, seed=9, gossip_refresh_interval=7)
        joiner = cluster.add_joiner(77)
        assert joiner.config is cluster.config
        assert joiner.config.gossip_refresh_interval == 7


class TestStackProfiles:
    def test_builtin_registry(self):
        assert {"bare", "labels", "counters", "vs_smr", "shared_register"} <= set(
            available_stacks()
        )

    def test_unknown_stack_raises(self):
        with pytest.raises(KeyError, match="unknown stack profile"):
            get_stack("turbo")

    def test_configure_returns_derived_profile(self):
        base = get_stack("counters")
        derived = stack("counters", seqn_bound=3)
        assert base.options == {}
        assert derived.options == {"seqn_bound": 3}

    def test_nodes_instantiate_stack(self):
        cluster = quick_cluster(3, seed=10, stack="shared_register")
        for node in cluster.nodes.values():
            assert set(node.service_map) == {"counters", "vs", "register"}
            # Registration order is the profile's build order.
            assert node.services[0] is node.service("counters")

    def test_joiner_gets_the_cluster_stack(self):
        cluster = quick_cluster(3, seed=11, stack="counters")
        joiner = cluster.add_joiner(50)
        assert joiner.service("counters").pid == 50

    def test_missing_service_error_names_stack(self):
        cluster = quick_cluster(2, seed=12)
        with pytest.raises(KeyError, match="stack 'bare'"):
            cluster.nodes[0].service("vs")

    def test_shared_register_rejects_foreign_state_machine(self):
        from repro.vs.smr import KeyValueStateMachine

        with pytest.raises(ValueError, match="pinned to RegisterStateMachine"):
            quick_cluster(
                2, seed=13, stack=stack("shared_register", state_machine=KeyValueStateMachine)
            )


class TestChurnTraceGuards:
    def test_join_of_existing_pid_is_noop(self):
        cluster = quick_cluster(3, seed=81)
        assert cluster.run_until_converged(timeout=800)
        trace = ChurnTrace(
            events=[ChurnEvent(time=cluster.simulator.now + 5.0, kind="join", pid=0)]
        )
        trace.install(cluster)
        cluster.run(until=cluster.simulator.now + 20)
        # Node 0 is the original node, not a rebooted joiner.
        assert cluster.nodes[0].scheme.is_participant()
        assert len(cluster.nodes) == 3

    def test_crash_then_join_of_same_pid_deduplicated(self):
        cluster = quick_cluster(3, seed=82)
        assert cluster.run_until_converged(timeout=800)
        now = cluster.simulator.now
        trace = ChurnTrace(
            events=[
                ChurnEvent(time=now + 2.0, kind="crash", pid=1),
                ChurnEvent(time=now + 6.0, kind="join", pid=1),
                ChurnEvent(time=now + 8.0, kind="crash", pid=1),
            ]
        )
        trace.install(cluster)
        cluster.run(until=now + 20)
        # Only the first event fired: 1 crashed and was never re-added.
        assert cluster.nodes[1].crashed

    def test_crash_of_unknown_pid_is_noop(self):
        cluster = quick_cluster(2, seed=83)
        trace = ChurnTrace(events=[ChurnEvent(time=5.0, kind="crash", pid=999)])
        trace.install(cluster)
        cluster.run(until=20)  # must not raise


class TestWorkloadProtocol:
    def test_campaign_installs_on_cluster(self):
        cluster = quick_cluster(3, seed=84)
        fired = []
        campaign = TransientFaultCampaign()
        campaign.add(5.0, lambda: fired.append("boom"), label="test")
        campaign.install(cluster)  # cluster, not simulator: the workload protocol
        cluster.run(until=10)
        assert fired == ["boom"]

    def test_corruption_during_inflight_reconfiguration_converges(self):
        """Scramble recSA/recMA state while a reconfiguration is mid-flight."""
        cluster = quick_cluster(4, seed=85, stack="counters")
        assert cluster.run_until_converged(timeout=800)
        target = frozenset([0, 1, 2])
        assert cluster.nodes[0].scheme.request_reconfiguration(target)
        # The reconfiguration is now in flight; corrupt most of the cluster.
        report = scramble_cluster(cluster, seed=3, fraction=0.75)
        assert report["recsa_fields"] > 0 and report["recma_fields"] > 0
        assert cluster.run_until_converged(timeout=8_000)
        assert all(node.scheme.no_reco() for node in cluster.participants())

    def test_scramble_workload_fires_at_time(self):
        cluster = quick_cluster(3, seed=86)
        assert cluster.run_until_converged(timeout=800)
        at = cluster.simulator.now + 10.0
        ScrambleWorkload(at=at, fraction=1.0).install(cluster)
        cluster.run(until=at + 1.0)  # let the scramble fire
        assert cluster.run_until_converged(timeout=8_000)
        assert cluster.simulator.now > at

    def test_crash_workload_guards_double_crash(self):
        cluster = quick_cluster(3, seed=87)
        CrashWorkload(schedule=((2.0, 1), (4.0, 1), (6.0, 999))).install(cluster)
        cluster.run(until=10)
        assert cluster.nodes[1].crashed

    def test_churn_workload_defaults_seed_to_simulator(self):
        cluster_a = quick_cluster(3, seed=21)
        cluster_b = quick_cluster(3, seed=21)
        for cluster in (cluster_a, cluster_b):
            ChurnWorkload(duration=50.0, crash_rate=0.05, join_rate=0.05).install(cluster)
            cluster.run(until=100)
        assert cluster_a.statistics() == cluster_b.statistics()


class TestScenarioEngine:
    def test_library_contains_composed_scenarios(self):
        assert set(COMPOSED) <= set(available_scenarios())

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("does_not_exist")

    @pytest.mark.parametrize("name", COMPOSED)
    def test_composed_scenarios_pass_and_are_deterministic(self, name):
        first = run_scenario(name, seed=0)
        second = run_scenario(name, seed=0)
        assert first["ok"], f"{name} failed: {first['probes']}"
        # Same seed -> identical statistics dict (and probe outcomes).
        assert first["statistics"] == second["statistics"]
        assert first["probes"] == second["probes"]

    def test_different_seeds_diverge(self):
        a = run_scenario("churn_during_corruption", seed=0)
        b = run_scenario("churn_during_corruption", seed=1)
        assert a["statistics"] != b["statistics"]

    def test_inline_spec_runs(self):
        spec = ScenarioSpec(
            name="inline",
            n=3,
            config=fast_sim(),
            probes=(probes.converged(2_000),),
        )
        result = run_scenario(spec, seed=5)
        assert result["ok"] and result["probes"]["converged"]["satisfied"]

    def test_repeated_probe_names_all_reported(self):
        spec = ScenarioSpec(
            name="repeat_probes",
            n=3,
            probes=(probes.converged(2_000), probes.converged(2_000)),
        )
        result = run_scenario(spec, seed=4)
        assert set(result["probes"]) == {"converged", "converged#2"}
        assert result["ok"]

    def test_measure_window_reports_deltas(self):
        spec = ScenarioSpec(name="window", n=3, measure_window=50.0)
        result = run_scenario(spec, seed=6)
        assert result["window"]["horizon"] == 50.0
        assert result["window"]["delivered_messages"] > 0

    def test_matrix_serial(self):
        sweep = run_matrix(["bootstrap"], seeds=[0, 1], workers=1)
        assert sweep["meta"]["workers"] == 1
        assert [entry["seed"] for entry in sweep["results"]] == [0, 1]
        assert all(entry["ok"] for entry in sweep["results"])

    def test_matrix_uses_all_configured_workers(self):
        sweep = run_matrix(["bootstrap"], seeds=[0, 1, 2, 3], workers=2)
        assert sweep["meta"]["workers"] == 2
        pids = {entry["worker_pid"] for entry in sweep["results"]}
        # Work stealing: jobs go to whichever pool worker is free, so the
        # only hard guarantees are that the pool (not the parent) ran them
        # and that every job is accounted exactly once.  Demanding an exact
        # worker split would be timing-dependent.
        assert 1 <= len(pids) <= 2
        assert os.getpid() not in pids
        assert sum(w["jobs"] for w in sweep["meta"]["sweep"]["by_worker"].values()) == 4
        assert all(entry["ok"] for entry in sweep["results"])
        # Results come back sorted regardless of completion order.
        assert [entry["seed"] for entry in sweep["results"]] == [0, 1, 2, 3]

    def test_matrix_results_match_serial_runs(self):
        sweep = run_matrix(["bootstrap"], seeds=[3], workers=2)
        direct = run_scenario("bootstrap", seed=3)
        (entry,) = sweep["results"]
        assert entry["statistics"] == direct["statistics"]


class TestCLI:
    def test_seed_specs(self):
        from repro.scenarios.__main__ import parse_seeds

        assert parse_seeds("0:4") == [0, 1, 2, 3]
        assert parse_seeds("1,5,9") == [1, 5, 9]
        assert parse_seeds("7") == [7]

    def test_cli_list(self, capsys):
        from repro.scenarios.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in COMPOSED:
            assert name in out

    def test_cli_single_scenario(self, capsys):
        from repro.scenarios.__main__ import main

        assert main(["bootstrap", "--seeds", "0:2"]) == 0
        assert "bootstrap" in capsys.readouterr().out
