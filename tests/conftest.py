"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

import pytest

from repro.common.types import BOTTOM, ProcessId, make_config
from repro.core.recsa import RecSA
from repro.sim.cluster import Cluster, build_cluster
from repro.sim.network import ChannelConfig


def quick_cluster(n: int, seed: int = 1, **kwargs: Any) -> Cluster:
    """A small, fast cluster with low-latency channels for tests."""
    kwargs.setdefault(
        "channel_config",
        ChannelConfig(capacity=8, loss_probability=0.0, min_delay=0.2, max_delay=0.6),
    )
    kwargs.setdefault("step_interval", 1.0)
    return build_cluster(n=n, seed=seed, **kwargs)


class LocalBus:
    """A synchronous, in-memory message bus for unit-testing protocol objects.

    Messages sent through the bus are queued; :meth:`deliver_all` hands every
    queued message to its destination's handler.  This gives fully
    deterministic unit tests of recSA/recMA without the discrete-event
    simulator.
    """

    def __init__(self) -> None:
        self.queues: Dict[ProcessId, List] = {}
        self.handlers: Dict[ProcessId, Any] = {}
        self.dropped: int = 0

    def sender_for(self, pid: ProcessId):
        def _send(destination: ProcessId, message: Any) -> None:
            self.queues.setdefault(destination, []).append((pid, message))

        return _send

    def register(self, pid: ProcessId, handler: Any) -> None:
        self.handlers[pid] = handler

    def deliver_all(self) -> int:
        """Deliver every queued message; returns how many were delivered."""
        delivered = 0
        pending = {pid: list(messages) for pid, messages in self.queues.items()}
        self.queues = {}
        for destination, messages in pending.items():
            handler = self.handlers.get(destination)
            for sender, message in messages:
                if handler is None:
                    self.dropped += 1
                    continue
                handler(sender, message)
                delivered += 1
        return delivered


class RecSAHarness:
    """A set of RecSA instances wired over a :class:`LocalBus`.

    The failure detector is simulated by a mutable ``trusted`` mapping: tests
    control exactly which processors each instance trusts.
    """

    def __init__(self, pids: Iterable[ProcessId], initial_config: Any = BOTTOM) -> None:
        self.pids = sorted(pids)
        self.bus = LocalBus()
        self.trusted: Dict[ProcessId, frozenset] = {
            pid: frozenset(self.pids) for pid in self.pids
        }
        self.instances: Dict[ProcessId, RecSA] = {}
        for pid in self.pids:
            instance = RecSA(
                pid=pid,
                fd_provider=(lambda p=pid: self.trusted[p]),
                send=self.bus.sender_for(pid),
                initial_config=initial_config,
            )
            self.instances[pid] = instance
            self.bus.register(pid, instance.dispatch)

    def __getitem__(self, pid: ProcessId) -> RecSA:
        return self.instances[pid]

    def crash(self, pid: ProcessId) -> None:
        """Remove *pid* from every failure detector and stop scheduling it."""
        self.pids = [p for p in self.pids if p != pid]
        self.instances.pop(pid, None)
        self.bus.handlers.pop(pid, None)
        for other in self.pids:
            self.trusted[other] = frozenset(self.pids)

    def round(self, count: int = 1) -> None:
        """Run *count* rounds of (step every instance, deliver every message)."""
        for _ in range(count):
            for pid in self.pids:
                self.instances[pid].step()
            self.bus.deliver_all()

    def run_until(self, predicate, max_rounds: int = 200) -> bool:
        """Run rounds until *predicate()* holds; False when it never did."""
        if predicate():
            return True
        for _ in range(max_rounds):
            self.round()
            if predicate():
                return True
        return False

    def configs(self) -> Dict[ProcessId, Any]:
        """Each instance's own configuration value."""
        return {pid: self.instances[pid].config.get(pid) for pid in self.pids}

    def converged(self) -> bool:
        """All instances hold the same real configuration and report stability."""
        values = set()
        for pid in self.pids:
            value = self.instances[pid].config.get(pid)
            if not isinstance(value, frozenset):
                return False
            values.add(value)
        if len(values) != 1:
            return False
        return all(self.instances[pid].no_reco() for pid in self.pids)


@pytest.fixture
def recsa_harness() -> RecSAHarness:
    """A three-processor RecSA harness bootstrapping via a reset."""
    return RecSAHarness(pids=[1, 2, 3])
