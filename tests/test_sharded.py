"""Tests of the sharded (multi-shard, window-synchronized) simulator."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.sim.cluster import build_cluster
from repro.sim.config import ClusterConfig, fast_sim
from repro.sim.network import ChannelConfig
from repro.sim.sharded import ShardedCluster, build_sharded_cluster

CHANNEL = ChannelConfig(capacity=8, loss_probability=0.0, min_delay=0.2, max_delay=0.6)


def _single(n: int, seed: int, **overrides):
    config = fast_sim(broadcast_streams="per_source", **overrides)
    return build_cluster(n=n, seed=seed, config=config, channel_config=CHANNEL)


def _sharded(n: int, seed: int, shards: int, mode: str = "serial", **overrides):
    return ShardedCluster(
        n=n, seed=seed, shards=shards, mode=mode, channel_config=CHANNEL, **overrides
    )


class TestEquivalence:
    def test_serial_statistics_byte_identical_to_single_process(self):
        single = _single(12, seed=41)
        single.run(until=60.0)
        expected = single.statistics()

        sharded = _sharded(12, seed=41, shards=3)
        sharded.run(until=60.0)
        assert sharded.statistics() == expected

    def test_fork_statistics_byte_identical_to_single_process(self):
        single = _single(10, seed=17)
        single.run(until=40.0)
        expected = single.statistics()

        with _sharded(10, seed=17, shards=2, mode="fork") as sharded:
            sharded.run(until=40.0)
            assert sharded.statistics() == expected

    def test_shard_count_does_not_change_statistics(self):
        results = []
        for shards in (1, 2, 4):
            sharded = _sharded(9, seed=5, shards=shards)
            sharded.run(until=30.0)
            results.append(sharded.statistics())
        assert results[0] == results[1] == results[2]

    def test_convergence_matches_single_within_one_window(self):
        single = _single(8, seed=7)
        assert single.run_until_converged(timeout=300)
        t_single = single.simulator.now

        sharded = _sharded(8, seed=7, shards=3)
        assert sharded.run_until_converged(timeout=300)
        # Barrier-cadence detection may trail by at most one window.
        assert sharded.now <= t_single + sharded.window + 1e-9

    def test_sharded_agrees_with_single_on_convergence_config(self):
        single = _single(8, seed=23)
        assert single.run_until_converged(timeout=300)
        sharded = _sharded(8, seed=23, shards=2)
        assert sharded.run_until_converged(timeout=300)
        summaries = [shard.convergence_summary() for shard in sharded._shards]
        configs = {value for summary in summaries for value in summary[3]}
        assert configs == {single.agreed_configuration()}


class TestCheckpoint:
    def test_checkpoint_restore_continues_byte_identically(self):
        reference = _sharded(10, seed=31, shards=3)
        reference.run(until=50.0)
        expected = reference.statistics()

        original = _sharded(10, seed=31, shards=3)
        original.run(until=20.0)
        checkpoint = original.checkpoint()
        # Perturb the original past the checkpoint; the restore is unaffected.
        original.run(until=50.0)
        assert original.statistics() == expected

        resumed = ShardedCluster.restore(original, checkpoint)
        assert resumed.now == 20.0
        resumed.run(until=50.0)
        assert resumed.statistics() == expected

    def test_checkpoint_rejected_in_fork_mode(self):
        with _sharded(4, seed=1, shards=2, mode="fork") as sharded:
            with pytest.raises(SimulationError):
                sharded.checkpoint()


class TestGuards:
    def test_zero_min_delay_rejected(self):
        with pytest.raises(SimulationError):
            ShardedCluster(
                n=4,
                seed=1,
                shards=2,
                channel_config=ChannelConfig(capacity=8, min_delay=0.0, max_delay=0.5),
            )

    def test_shards_clamped_to_node_count(self):
        sharded = _sharded(3, seed=1, shards=16)
        assert sharded.shards == 3

    def test_crash_routes_to_owning_shard(self):
        sharded = _sharded(6, seed=3, shards=2)
        sharded.run(until=10.0)
        assert sharded.crash(5)
        assert not sharded.crash(5)  # already crashed
        active = sharded.statistics()["active"]
        assert active == 5

    def test_builder_mirror(self):
        sharded = build_sharded_cluster(4, seed=2, shards=2, channel_config=CHANNEL)
        sharded.run(until=5.0)
        assert sharded.statistics()["processes"] == 4

    def test_shared_broadcast_stream_rejected(self):
        from repro.sim.sharded import ShardSimulator

        with pytest.raises(SimulationError):
            ShardSimulator(
                seed=1, channel_config=CHANNEL, owned=[0], broadcast_streams="shared"
            )
