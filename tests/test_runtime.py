"""Live-runtime integration tests: the full stack over UDP/localhost.

These exercise :class:`repro.runtime.cluster.RuntimeCluster` end to end —
bootstrap from ``BOTTOM`` to an agreed configuration, stop-fail eviction,
joiner re-admission — plus a miniature closed-loop load-generator run and
the hostile-datagram quarantine path.  Everything runs at ``tick_seconds``
well below the default so the whole module stays a few wall seconds.

Wall-clock budgets are deliberately generous (CI machines stall); the
expected timings are an order of magnitude smaller.
"""

from __future__ import annotations

import asyncio
import socket
import struct

from repro.runtime.cluster import RuntimeCluster
from repro.runtime.loadgen import percentile, run_loadgen
from repro.runtime.transport import _HEADER

#: Fast pacing for tests: 10 ms of wall clock per sim-time unit.
TICK = 0.01
#: Outer wall-clock budget per wait; actual convergence is well under 1 s.
BUDGET_S = 30.0


def test_bootstrap_kill_restart_cycle():
    """n=8: converge from scratch, evict a killed node, re-admit it."""

    async def scenario() -> None:
        async with RuntimeCluster(
            n=8, seed=7, stack="counters", tick_seconds=TICK
        ) as cluster:
            assert await cluster.wait_converged(timeout_s=BUDGET_S, poll_s=0.01)
            assert cluster.agreed_configuration() == frozenset(range(8))

            victim = 7
            cluster.kill(victim)
            assert cluster.nodes[victim].crashed

            def evicted() -> bool:
                return all(
                    victim not in node.trusted()
                    for pid, node in cluster.nodes.items()
                    if pid != victim
                )

            loop = asyncio.get_running_loop()
            deadline = loop.time() + BUDGET_S
            while not evicted():
                assert loop.time() < deadline, "survivors never evicted the victim"
                await asyncio.sleep(0.01)

            node = await cluster.restart(victim)
            assert not node.scheme.is_participant()  # fresh joiner
            deadline = loop.time() + BUDGET_S
            while not (
                node.scheme.is_participant() and cluster.is_converged()
            ):
                assert loop.time() < deadline, "restarted node never rejoined"
                await asyncio.sleep(0.01)

            stats = cluster.statistics()
            assert stats["delivery_errors"] == 0
            assert stats["sent_datagrams"] > 0

    asyncio.run(scenario())


def test_mini_loadgen_counters():
    """A small closed-loop run completes increments and reports latency."""

    async def scenario() -> dict:
        return await run_loadgen(
            n=4,
            clients=4,
            duration_s=1.5,
            mode="counters",
            seed=7,
            tick_seconds=TICK,
            bootstrap_timeout_s=BUDGET_S,
            op_timeout_s=10.0,
        )

    report = asyncio.run(scenario())
    assert "error" not in report
    assert report["ops_completed"] > 0
    assert report["ops_failed"] == 0
    latency = report["latency"]
    assert latency["p50_ms"] > 0
    assert latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
    assert report["statistics"]["delivery_errors"] == 0


def test_hostile_datagrams_are_quarantined_not_fatal():
    """Garbage sprayed at a node's port is counted and dropped, and the
    node keeps working (same stance as the Byzantine datalink validation)."""

    async def scenario() -> None:
        async with RuntimeCluster(
            n=3, seed=7, stack="counters", tick_seconds=TICK
        ) as cluster:
            assert await cluster.wait_converged(timeout_s=BUDGET_S, poll_s=0.01)
            transport = cluster.transport
            target = transport._addrs[0]
            hostile = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            try:
                hostile.sendto(b"", target)  # empty
                hostile.sendto(b"\x01", target)  # shorter than header
                hostile.sendto(_HEADER.pack(99) + b"junk", target)  # bad frame
                hostile.sendto(  # oversized length prefix
                    _HEADER.pack(1) + struct.pack(">I", 1 << 30) + b"x", target
                )
                hostile.sendto(  # valid frame, unknown wire type
                    _HEADER.pack(1)
                    + struct.pack(">I", 30)
                    + b'{"%": "dc", "t": "Nope", "f": {}}'[:30],
                    target,
                )
            finally:
                hostile.close()
            # Let the loop drain the socket, then check the node survived.
            deadline = asyncio.get_running_loop().time() + 5.0
            while transport.quarantined_datagrams < 4:
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.01)
            assert transport.delivery_errors == 0
            assert not cluster.nodes[0].crashed
            await asyncio.sleep(0.1)
            assert cluster.is_converged()

    asyncio.run(scenario())


def test_percentile_nearest_rank():
    values = list(range(1, 101))  # 1..100
    assert percentile(values, 0.50) == 51
    assert percentile(values, 0.95) == 96
    assert percentile(values, 0.99) == 100
    assert percentile([7.0], 0.99) == 7.0
    assert percentile([], 0.50) is None
