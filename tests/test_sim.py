"""Unit tests for the simulation substrate (events, network, simulator, faults)."""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.common.types import make_config
from repro.sim.events import EventQueue
from repro.sim.faults import FaultInjector, TransientFaultCampaign
from repro.sim.monitors import ConvergenceTracker, InvariantMonitor
from repro.sim.network import Channel, ChannelConfig, Network, Packet
from repro.sim.process import Process
from repro.sim.simulator import Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2.0, lambda: fired.append("b"))
        queue.schedule(1.0, lambda: fired.append("a"))
        queue.schedule(3.0, lambda: fired.append("c"))
        while queue:
            queue.pop().callback()
        assert fired == ["a", "b", "c"]

    def test_ties_broken_in_insertion_order(self):
        queue = EventQueue()
        fired = []
        for name in "abc":
            queue.schedule(1.0, lambda n=name: fired.append(n))
        while queue:
            queue.pop().callback()
        assert fired == ["a", "b", "c"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        queue.cancel(event)
        assert len(queue) == 1
        assert queue.pop().time == 2.0

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.schedule(5.0, lambda: None)
        assert queue.peek_time() == 5.0

    def test_rejects_non_finite_time(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.schedule(float("inf"), lambda: None)
        with pytest.raises(SimulationError):
            queue.schedule(float("nan"), lambda: None)

    def test_clear(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.clear()
        assert not queue

    def test_live_count_exact_across_cancel_paths(self):
        """Regression: ``len(queue)`` stays exact whichever path cancels or
        drains a cancelled event (queue.cancel vs event.cancel, peek vs pop)."""
        queue = EventQueue()
        a = queue.schedule(1.0, lambda: None)
        b = queue.schedule(2.0, lambda: None)
        c = queue.schedule(3.0, lambda: None)
        assert len(queue) == 3
        # Cancel through the handle (used to leak the live count).
        a.cancel()
        assert len(queue) == 2
        # Cancelled head dropped via peek_time: count unchanged.
        assert queue.peek_time() == 2.0
        assert len(queue) == 2
        # Cancel through the queue; double-cancel must not double-decrement.
        queue.cancel(b)
        b.cancel()
        queue.cancel(b)
        assert len(queue) == 1
        # Cancelled head dropped inside pop: the live event comes out.
        assert queue.pop() is c
        assert len(queue) == 0
        assert queue.pop() is None
        assert len(queue) == 0

    def test_cancel_after_pop_does_not_corrupt_count(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert queue.pop() is event
        assert len(queue) == 1
        # Cancelling the already-popped event (a process crashing itself from
        # inside its own firing timer does this) must not decrement the count.
        event.cancel()
        assert len(queue) == 1
        assert bool(queue)
        queue.cancel(event)
        assert len(queue) == 1

    def test_cancel_after_clear_is_noop(self):
        queue = EventQueue()
        event = queue.schedule(1.0, lambda: None)
        queue.clear()
        event.cancel()
        assert len(queue) == 0

    def test_schedule_many_atomic_on_invalid_entry(self):
        """A bad entry mid-batch must leave the queue untouched and usable."""
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.schedule_many(
                [(1.0, lambda: None, (), ""), (float("nan"), lambda: None, (), "")]
            )
        assert len(queue) == 0
        # The queue still works and the next sequence number is unused.
        queue.schedule(1.0, lambda: None)
        queue.schedule(1.0, lambda: None)
        assert len(queue) == 2
        assert queue.pop() is not None and queue.pop() is not None

    def test_schedule_many_bulk(self):
        queue = EventQueue()
        fired = []
        events = queue.schedule_many(
            (float(t), fired.append, (t,), "") for t in (3, 1, 2)
        )
        assert len(events) == 3
        assert len(queue) == 3
        while queue:
            queue.pop().fire()
        assert fired == [1, 2, 3]

    def test_schedule_many_rejects_non_finite(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.schedule_many([(float("nan"), lambda: None, (), "")])

    def test_event_args_passed_to_callback(self):
        queue = EventQueue()
        got = []
        queue.schedule(1.0, lambda a, b: got.append((a, b)), args=(1, 2))
        queue.pop().fire()
        assert got == [(1, 2)]


class TestChannel:
    def test_capacity_drops_new_packet(self):
        chan = Channel(1, 2, ChannelConfig(capacity=2), seed=0)
        packets = [Packet(1, 2, i) for i in range(3)]
        assert chan.try_accept(packets[0])
        assert chan.try_accept(packets[1])
        assert chan.try_accept(packets[2]) == []
        assert chan.dropped_count == 1
        assert chan.occupancy() == 2

    def test_complete_delivery_frees_capacity(self):
        chan = Channel(1, 2, ChannelConfig(capacity=1), seed=0)
        packet = Packet(1, 2, "x")
        chan.try_accept(packet)
        assert chan.complete_delivery(packet)
        assert chan.occupancy() == 0
        assert not chan.complete_delivery(packet)

    def test_total_loss_probability_rejected(self):
        with pytest.raises(SimulationError):
            ChannelConfig(loss_probability=1.0)

    def test_loss_probability_drops_some_packets(self):
        chan = Channel(1, 2, ChannelConfig(capacity=1000, loss_probability=0.5), seed=3)
        deliveries = sum(
            1 for i in range(200) if chan.try_accept(Packet(1, 2, i))
        )
        assert 0 < deliveries < 200

    def test_duplication(self):
        chan = Channel(1, 2, ChannelConfig(capacity=10, duplicate_probability=1.0), seed=0)
        result = chan.try_accept(Packet(1, 2, "x"))
        assert len(result) == 2
        assert chan.duplicated_count == 1

    def test_stuff_respects_capacity(self):
        chan = Channel(1, 2, ChannelConfig(capacity=1), seed=0)
        assert chan.stuff(Packet(1, 2, "a"))
        assert not chan.stuff(Packet(1, 2, "b"))

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            ChannelConfig(capacity=0)


class _Echo(Process):
    """Test process replying 'pong' to every 'ping'."""

    def __init__(self, pid):
        super().__init__(pid, step_interval=1.0)
        self.got = []

    def on_receive(self, sender, payload):
        self.got.append((sender, payload))
        if payload == "ping":
            self.context.send(sender, "pong")


class TestSimulator:
    def test_send_and_receive(self):
        sim = Simulator(seed=1)
        a, b = _Echo(1), _Echo(2)
        sim.add_process(a)
        sim.add_process(b)
        sim.send(1, 2, "ping")
        sim.run(until=10.0)
        assert (1, "ping") in b.got
        assert (2, "pong") in a.got

    def test_duplicate_pid_rejected(self):
        sim = Simulator(seed=1)
        sim.add_process(_Echo(1))
        with pytest.raises(SimulationError):
            sim.add_process(_Echo(1))

    def test_crashed_process_receives_nothing(self):
        sim = Simulator(seed=1)
        a, b = _Echo(1), _Echo(2)
        sim.add_process(a)
        sim.add_process(b)
        sim.crash_process(2)
        sim.send(1, 2, "ping")
        sim.run(until=10.0)
        assert b.got == []
        assert b.crashed

    def test_periodic_timer_runs_steps(self):
        sim = Simulator(seed=1)
        proc = _Echo(1)
        sim.add_process(proc)
        sim.run(until=10.0)
        assert proc.step_count >= 5

    def test_run_until_predicate(self):
        sim = Simulator(seed=1)
        proc = _Echo(1)
        sim.add_process(proc)
        assert sim.run_until(lambda: proc.step_count >= 3, timeout=100.0)
        assert proc.step_count >= 3

    def test_run_until_timeout(self):
        sim = Simulator(seed=1)
        proc = _Echo(1)
        sim.add_process(proc)
        assert not sim.run_until(lambda: False, timeout=5.0)
        assert sim.now <= 6.5

    def test_call_later_and_cancel(self):
        sim = Simulator(seed=1)
        fired = []
        handle = sim.call_later(1.0, lambda: fired.append("x"))
        sim.cancel_timer(handle)
        sim.call_later(2.0, lambda: fired.append("y"))
        sim.run(until=5.0)
        assert fired == ["y"]

    def test_cannot_schedule_in_past(self):
        sim = Simulator(seed=1)
        sim.call_later(1.0, lambda: None)
        sim.run(until=2.0)
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_statistics_keys(self):
        sim = Simulator(seed=1)
        sim.add_process(_Echo(1))
        sim.run(until=3.0)
        stats = sim.statistics()
        assert {"time", "executed_events", "processes", "net_sent"} <= set(stats)


class TestNetworkFastPath:
    def test_statistics_match_per_channel_counters(self):
        """The O(1) aggregate must equal the sum over channels at all times."""
        sim = Simulator(seed=3)
        a, b, c = _Echo(1), _Echo(2), _Echo(3)
        for proc in (a, b, c):
            sim.add_process(proc)
        for i in range(20):
            sim.send(1, 2, f"m{i}")
            sim.send(2, 3, f"n{i}")
        sim.run(until=15.0)
        aggregate = sim.network.statistics()
        manual = {"sent": 0, "delivered": 0, "dropped": 0, "duplicated": 0}
        for chan in sim.network.channels():
            manual["sent"] += chan.sent_count
            manual["delivered"] += chan.delivered_count
            manual["dropped"] += chan.dropped_count
            manual["duplicated"] += chan.duplicated_count
        assert aggregate == manual

    def test_total_in_flight_matches_occupancy_sum(self):
        sim = Simulator(seed=3)
        sim.add_process(_Echo(1))
        sim.add_process(_Echo(2))
        for i in range(5):
            sim.send(1, 2, i)
        assert sim.network.total_in_flight() == sum(
            chan.occupancy() for chan in sim.network.channels()
        )
        sim.run(until=10.0)
        assert sim.network.total_in_flight() == sum(
            chan.occupancy() for chan in sim.network.channels()
        )

    def test_send_many_delivers_to_every_destination(self):
        sim = Simulator(seed=4)
        procs = {pid: _Echo(pid) for pid in range(4)}
        for proc in procs.values():
            sim.add_process(proc)
        accepted = sim.send_many(0, [(pid, f"hello-{pid}") for pid in (1, 2, 3)])
        assert accepted == 3
        sim.run(until=10.0)
        for pid in (1, 2, 3):
            assert (0, f"hello-{pid}") in procs[pid].got

    def test_send_many_respects_partition(self):
        sim = Simulator(seed=4)
        a, b = _Echo(1), _Echo(2)
        sim.add_process(a)
        sim.add_process(b)
        sim.network.partition([1], [2])
        assert sim.send_many(1, [(2, "blocked")]) == 0
        sim.run(until=5.0)
        assert b.got == []
        assert sim.network.statistics()["dropped"] >= 1

    def test_send_many_respects_capacity(self):
        sim = Simulator(seed=4)
        sim.network.default_config = ChannelConfig(capacity=2)
        sim.add_process(_Echo(1))
        sim.add_process(_Echo(2))
        accepted = sim.send_many(1, [(2, i) for i in range(5)])
        assert accepted == 2
        chan = sim.network.channel(1, 2)
        assert chan.dropped_count == 3

    def test_duplicate_delivery_consumes_one_slot(self):
        chan = Channel(1, 2, ChannelConfig(capacity=10, duplicate_probability=1.0), seed=0)
        packet = Packet(1, 2, "x")
        deliveries = chan.try_accept(packet)
        assert len(deliveries) == 2
        assert chan.occupancy() == 1
        assert chan.complete_delivery(packet)
        assert not chan.complete_delivery(packet)
        assert chan.occupancy() == 0

    def test_unhashable_payload_supported(self):
        # The in-flight ledger is identity-keyed: payloads need not be
        # hashable (VS snapshots carry lists).
        chan = Channel(1, 2, ChannelConfig(capacity=4), seed=0)
        packet = Packet(1, 2, ["mutable", {"nested": True}])
        assert chan.try_accept(packet)
        assert chan.complete_delivery(packet)


class TestNetworkPartition:
    def test_partition_blocks_and_heal_restores(self):
        sim = Simulator(seed=1)
        a, b = _Echo(1), _Echo(2)
        sim.add_process(a)
        sim.add_process(b)
        sim.network.partition([1], [2])
        sim.send(1, 2, "ping")
        sim.run(until=5.0)
        assert b.got == []
        sim.network.heal_partitions()
        sim.send(1, 2, "ping")
        sim.run(until=10.0)
        assert (1, "ping") in b.got


class TestFaultInjector:
    def test_crash_and_records(self):
        sim = Simulator(seed=1)
        proc = _Echo(1)
        sim.add_process(proc)
        injector = FaultInjector(sim, seed=2)
        injector.crash(1)
        assert proc.crashed
        assert injector.records[0].kind == "crash"

    def test_crash_majority_of(self):
        sim = Simulator(seed=1)
        for pid in range(5):
            sim.add_process(_Echo(pid))
        injector = FaultInjector(sim, seed=2)
        victims = injector.crash_majority_of(make_config(range(5)))
        assert len(victims) == 3
        assert all(sim.get_process(v).crashed for v in victims)

    def test_stuff_channel_delivers_stale_packet(self):
        sim = Simulator(seed=1)
        a, b = _Echo(1), _Echo(2)
        sim.add_process(a)
        sim.add_process(b)
        assert FaultInjector(sim, seed=0).stuff_channel(1, 2, "stale")
        sim.run(until=10.0)
        assert (1, "stale") in b.got

    def test_random_config_value_types(self):
        sim = Simulator(seed=1)
        injector = FaultInjector(sim, seed=5)
        values = [injector.random_config_value([1, 2, 3]) for _ in range(50)]
        assert any(isinstance(v, frozenset) for v in values)

    def test_campaign_installs_actions(self):
        sim = Simulator(seed=1)
        fired = []
        campaign = TransientFaultCampaign()
        campaign.add(1.0, lambda: fired.append(1))
        campaign.add(2.0, lambda: fired.append(2))
        campaign.install(sim)
        assert len(campaign) == 2
        sim.run(until=5.0)
        assert fired == [1, 2]


class TestMonitors:
    def test_invariant_monitor_records_violations(self):
        sim = Simulator(seed=1)
        proc = _Echo(1)
        sim.add_process(proc)
        monitor = InvariantMonitor(sim)
        monitor.add_invariant("few-steps", lambda: proc.step_count < 3)
        sim.run(until=10.0)
        assert not monitor.ok()
        assert monitor.violated("few-steps")

    def test_invariant_monitor_strict_raises(self):
        from repro.common.errors import InvariantViolation

        sim = Simulator(seed=1)
        proc = _Echo(1)
        sim.add_process(proc)
        monitor = InvariantMonitor(sim, strict=True)
        monitor.add_invariant("never", lambda: False)
        with pytest.raises(InvariantViolation):
            sim.run(until=5.0)

    def test_convergence_tracker(self):
        sim = Simulator(seed=1)
        proc = _Echo(1)
        sim.add_process(proc)
        tracker = ConvergenceTracker(sim, lambda: proc.step_count >= 3, name="steps")
        sim.run(until=20.0)
        assert tracker.currently_true
        assert tracker.stabilization_time is not None
        assert tracker.summary()["converged"]

    def test_convergence_tracker_not_converged(self):
        sim = Simulator(seed=1)
        sim.add_process(_Echo(1))
        tracker = ConvergenceTracker(sim, lambda: False)
        sim.run(until=5.0)
        assert tracker.stabilization_time is None
