"""Tests for the counter scheme (Algorithms 4.3 / 4.4 / 4.5)."""

from __future__ import annotations

import pytest

from repro.counters.counter import Counter, CounterPair, counter_less_than, max_counter
from repro.labels.label import EpochLabel
from repro.sim.stacks import stack

from tests.conftest import quick_cluster


def _label(creator=1, sting=0, antistings=()):
    return EpochLabel(creator=creator, sting=sting, antistings=frozenset(antistings))


class TestCounterOrdering:
    def test_order_by_label_first(self):
        small = Counter(label=_label(creator=1), seqn=100, wid=5)
        big = Counter(label=_label(creator=2), seqn=1, wid=1)
        assert counter_less_than(small, big)

    def test_order_by_seqn_within_label(self):
        label = _label(creator=1)
        assert counter_less_than(Counter(label, 1, 9), Counter(label, 2, 1))

    def test_order_by_wid_breaks_ties(self):
        label = _label(creator=1)
        assert counter_less_than(Counter(label, 5, 1), Counter(label, 5, 2))

    def test_max_counter(self):
        label = _label(creator=1)
        counters = [Counter(label, 1, 1), Counter(label, 3, 2), Counter(label, 3, 1)]
        assert max_counter(counters) == Counter(label, 3, 2)

    def test_exhaustion(self):
        label = _label(creator=1)
        assert Counter(label, 2 ** 64, 1).is_exhausted()
        assert not Counter(label, 5, 1).is_exhausted()
        assert Counter(label, 10, 1).is_exhausted(bound=10)

    def test_next_preserves_label(self):
        counter = Counter(_label(creator=1), 4, 1)
        incremented = counter.next(writer=7)
        assert incremented.seqn == 5
        assert incremented.wid == 7
        assert incremented.label == counter.label

    def test_counter_pair_cancel(self):
        pair = CounterPair(mct=Counter(_label(), 1, 1))
        assert pair.legit
        canceled = pair.cancel()
        assert not canceled.legit
        assert canceled.cancel() is canceled


class _ClusterWithCounters:
    def __init__(self, n, seed, seqn_bound=2 ** 64):
        self.cluster = quick_cluster(
            n, seed=seed, stack=stack("counters", seqn_bound=seqn_bound)
        )
        self.services = {
            pid: node.service("counters") for pid, node in self.cluster.nodes.items()
        }
        assert self.cluster.run_until_converged(timeout=800)
        self.cluster.run(until=self.cluster.simulator.now + 40)

    def increment(self, pid, timeout=120.0):
        results = []
        self.services[pid].increment(results.append)
        self.cluster.run_until(lambda: bool(results), timeout=timeout)
        return results[0] if results else None


class TestCounterService:
    def test_single_increment_succeeds(self):
        env = _ClusterWithCounters(4, seed=61)
        outcome = env.increment(0)
        assert outcome is not None and outcome.success
        assert outcome.counter.seqn >= 1

    def test_sequential_increments_are_monotonic(self):
        env = _ClusterWithCounters(4, seed=62)
        previous = None
        for pid in (0, 1, 2, 0, 3):
            outcome = env.increment(pid)
            assert outcome is not None and outcome.success
            if previous is not None:
                assert counter_less_than(previous, outcome.counter)
            previous = outcome.counter

    def test_concurrent_increments_are_ordered_by_wid(self):
        env = _ClusterWithCounters(4, seed=63)
        results = []
        env.services[0].increment(results.append)
        env.services[2].increment(results.append)
        env.cluster.run_until(lambda: len(results) == 2, timeout=150)
        assert all(outcome.success for outcome in results)
        a, b = (outcome.counter for outcome in results)
        assert counter_less_than(a, b) or counter_less_than(b, a)

    def test_increment_aborted_during_reconfiguration(self):
        env = _ClusterWithCounters(4, seed=64)
        node = env.cluster.nodes[0]
        assert node.scheme.request_reconfiguration(frozenset([0, 1, 2]))
        results = []
        env.services[0].increment(results.append)
        assert results and not results[0].success and results[0].aborted

    def test_exhaustion_rolls_over_to_new_label(self):
        env = _ClusterWithCounters(3, seed=65, seqn_bound=3)
        labels_seen = set()
        for round_index in range(6):
            outcome = env.increment(round_index % 3)
            assert outcome is not None and outcome.success
            labels_seen.add(outcome.counter.label)
            assert outcome.counter.seqn <= 3
        assert len(labels_seen) >= 2
        assert any(svc.exhaustion_rollovers > 0 for svc in env.services.values())

    def test_non_member_participant_can_increment(self):
        env = _ClusterWithCounters(3, seed=66)
        # The joiner instantiates the cluster's stack profile itself.
        joiner = env.cluster.add_joiner(42)
        env.services[42] = joiner.service("counters")
        assert env.cluster.run_until(
            lambda: joiner.scheme.is_participant(), timeout=2500
        )
        env.cluster.run(until=env.cluster.simulator.now + 30)
        outcome = env.increment(42)
        assert outcome is not None and outcome.success
        assert outcome.counter.wid == 42

    def test_counter_survives_member_crash(self):
        env = _ClusterWithCounters(5, seed=67)
        first = env.increment(0)
        assert first is not None and first.success
        env.cluster.crash(4)
        env.cluster.run(until=env.cluster.simulator.now + 50)
        second = env.increment(1)
        assert second is not None and second.success
        assert counter_less_than(first.counter, second.counter)

    def test_members_converge_on_max_counter(self):
        env = _ClusterWithCounters(3, seed=68)
        outcome = env.increment(0)
        assert outcome is not None and outcome.success
        env.cluster.run(until=env.cluster.simulator.now + 80)
        for pid in env.cluster.agreed_configuration():
            local = env.services[pid].local_max_counter()
            assert local is not None
            assert not counter_less_than(local.mct, outcome.counter) or local.mct == outcome.counter
