"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.common.types import Phase, Proposal, is_majority, majority_size, make_config
from repro.core.quorum import MajorityQuorumSystem
from repro.counters.counter import Counter, counter_less_than
from repro.labels.label import (
    EpochLabel,
    label_less_than,
    max_label,
    next_label,
)
from repro.sim.events import EventQueue


pids = st.integers(min_value=0, max_value=20)
pid_sets = st.frozensets(pids, min_size=1, max_size=8)


proposals = st.builds(
    Proposal,
    phase=st.sampled_from(list(Phase)),
    members=st.one_of(st.none(), pid_sets),
)


class TestProposalOrderProperties:
    @given(proposals, proposals)
    def test_order_is_total_and_antisymmetric(self, a, b):
        assert (a < b) or (b < a) or (a.sort_key() == b.sort_key())
        assert not ((a < b) and (b < a))

    @given(proposals, proposals, proposals)
    def test_order_is_transitive(self, a, b, c):
        if a < b and b < c:
            assert a < c

    @given(proposals)
    def test_default_is_minimum(self, a):
        from repro.common.types import DEFAULT_PROPOSAL

        assert DEFAULT_PROPOSAL <= a


class TestMajorityProperties:
    @given(pid_sets)
    def test_majority_is_more_than_half(self, members):
        size = majority_size(members)
        assert 2 * size > len(members)
        assert 2 * (size - 1) <= len(members)

    @given(pid_sets, st.data())
    def test_two_majorities_intersect(self, members, data):
        size = majority_size(members)
        quorum_a = frozenset(data.draw(st.permutations(sorted(members)))[:size])
        quorum_b = frozenset(data.draw(st.permutations(sorted(members)))[:size])
        assert quorum_a & quorum_b

    @given(pid_sets)
    def test_quorum_system_consistent_with_is_majority(self, members):
        system = MajorityQuorumSystem(members)
        sorted_members = sorted(members)
        subset = frozenset(sorted_members[: system.quorum_size()])
        assert system.is_quorum(subset)
        assert is_majority(subset, members)


labels = st.builds(
    EpochLabel,
    creator=st.integers(min_value=0, max_value=5),
    sting=st.integers(min_value=0, max_value=30),
    antistings=st.frozensets(st.integers(min_value=0, max_value=30), max_size=6),
)


class TestLabelProperties:
    @given(labels, labels)
    def test_strict_order_is_antisymmetric(self, a, b):
        assert not (label_less_than(a, b) and label_less_than(b, a))

    @given(labels)
    def test_irreflexive(self, a):
        assert not label_less_than(a, a)

    @given(st.lists(labels, min_size=1, max_size=6))
    def test_max_label_is_maximal(self, known):
        chosen = max_label(known)
        assert chosen is not None
        assert not any(label_less_than(chosen, other) for other in known)

    @settings(max_examples=50)
    @given(st.lists(labels, max_size=6), st.integers(min_value=0, max_value=5))
    def test_next_label_dominates_same_creator_labels(self, known, creator):
        fresh = next_label(creator=creator, known=known)
        for label in known:
            if label.creator == creator:
                assert label_less_than(label, fresh)
            assert not label_less_than(fresh, label) or label.creator > creator


counters = st.builds(
    Counter,
    label=labels,
    seqn=st.integers(min_value=0, max_value=1000),
    wid=st.integers(min_value=0, max_value=10),
)


class TestCounterProperties:
    @given(counters, counters)
    def test_antisymmetric(self, a, b):
        assert not (counter_less_than(a, b) and counter_less_than(b, a))

    @given(counters)
    def test_increment_is_strictly_greater(self, a):
        assert counter_less_than(a, a.next(writer=a.wid))

    @given(counters, st.integers(min_value=0, max_value=10), st.integers(min_value=0, max_value=10))
    def test_same_seqn_ordered_by_wid(self, a, wid1, wid2):
        c1 = Counter(label=a.label, seqn=a.seqn, wid=wid1)
        c2 = Counter(label=a.label, seqn=a.seqn, wid=wid2)
        if wid1 != wid2:
            assert counter_less_than(c1, c2) or counter_less_than(c2, c1)


class TestEventQueueProperties:
    @settings(max_examples=50)
    @given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=40))
    def test_events_pop_in_time_order(self, times):
        queue = EventQueue()
        for t in times:
            queue.schedule(t, lambda: None)
        popped = []
        while queue:
            popped.append(queue.pop().time)
        assert popped == sorted(popped)
        assert len(popped) == len(times)
