"""Determinism guards for the fast-path refactor.

Two full-stack runs from the same ``(topology, seed)`` must be byte-identical
in every observable statistic: this pins the tuple-heap tie-breaking, the
per-stream RNG derivation (including the dedicated broadcast stream used by
``send_many``) and the change-detected gossip, all of which must be pure
functions of the seeded state.
"""

from __future__ import annotations

import pytest

from repro.sim.events import EventQueue
from tests.conftest import quick_cluster


def _bootstrap_run(n: int, seed: int, extra_horizon: float = 60.0):
    """One full bootstrap (plus steady-state tail) returning all observables."""
    cluster = quick_cluster(n, seed=seed)
    converged = cluster.run_until_converged(timeout=6_000)
    cluster.run(until=cluster.simulator.now + extra_horizon)
    stats = cluster.statistics()
    gossip = {
        pid: (
            node.recsa.broadcasts_sent,
            node.recsa.broadcasts_skipped,
            node.recma.broadcasts_sent,
            node.recma.broadcasts_skipped,
        )
        for pid, node in cluster.nodes.items()
    }
    return {
        "converged": converged,
        "config": cluster.agreed_configuration(),
        "statistics": stats,
        "gossip": gossip,
        "now": cluster.simulator.now,
    }


class TestSeededDeterminism:
    @pytest.mark.parametrize("n,seed", [(4, 11), (8, 89)])
    def test_same_seed_identical_statistics(self, n, seed):
        first = _bootstrap_run(n, seed)
        second = _bootstrap_run(n, seed)
        assert first["converged"] and second["converged"]
        assert first["statistics"] == second["statistics"]
        assert first["config"] == second["config"]
        assert first["gossip"] == second["gossip"]
        assert first["now"] == second["now"]

    def test_different_seeds_diverge(self):
        # Sanity check that the comparison above is not vacuous.
        a = _bootstrap_run(4, seed=11)
        b = _bootstrap_run(4, seed=12)
        assert a["statistics"] != b["statistics"]

    def test_crash_recovery_deterministic(self):
        def run():
            cluster = quick_cluster(5, seed=23)
            assert cluster.run_until_converged(timeout=6_000)
            cluster.crash(4)
            cluster.run_until_converged(timeout=6_000)
            return cluster.statistics(), cluster.agreed_configuration()

        assert run() == run()


class TestEventOrderDeterminism:
    def test_schedule_and_schedule_many_interchangeable(self):
        """Bulk scheduling must assign the same tie-breaking order as loops."""
        fired_a, fired_b = [], []
        qa, qb = EventQueue(), EventQueue()
        for i in range(10):
            qa.schedule(1.0, fired_a.append, args=(i,))
        qb.schedule_many((1.0, fired_b.append, (i,), "") for i in range(10))
        while qa:
            qa.pop().fire()
        while qb:
            qb.pop().fire()
        assert fired_a == fired_b == list(range(10))

    def test_bulk_after_existing_events_keeps_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(2.0, fired.append, args=("late",))
        queue.schedule_many(
            [(1.0, fired.append, ("early",), ""), (2.0, fired.append, ("tie",), "")]
        )
        while queue:
            queue.pop().fire()
        # Same time (2.0): the earlier-scheduled event wins the tie.
        assert fired == ["early", "late", "tie"]
