"""Unit tests for repro.common (types, rng, errors) and repro.analysis."""

from __future__ import annotations

import copy
import pickle

import pytest

from repro.analysis.metrics import ExperimentResult, ResultTable, summarize
from repro.common import errors
from repro.common.rng import derive_seed, make_rng, seed_stream
from repro.common.types import (
    BOTTOM,
    DEFAULT_PROPOSAL,
    NOT_PARTICIPANT,
    Phase,
    Proposal,
    degree,
    is_majority,
    majority_size,
    make_config,
)


class TestSentinels:
    def test_sentinels_are_distinct(self):
        assert BOTTOM is not NOT_PARTICIPANT
        assert BOTTOM != NOT_PARTICIPANT

    def test_sentinel_repr(self):
        assert repr(BOTTOM) == "BOTTOM"
        assert repr(NOT_PARTICIPANT) == "NOT_PARTICIPANT"

    def test_sentinel_copy_preserves_identity(self):
        assert copy.copy(BOTTOM) is BOTTOM
        assert copy.deepcopy(NOT_PARTICIPANT) is NOT_PARTICIPANT

    def test_sentinel_pickle_preserves_identity(self):
        assert pickle.loads(pickle.dumps(BOTTOM)) is BOTTOM
        assert pickle.loads(pickle.dumps(NOT_PARTICIPANT)) is NOT_PARTICIPANT


class TestMajority:
    def test_majority_size(self):
        assert majority_size([1]) == 1
        assert majority_size([1, 2]) == 2
        assert majority_size([1, 2, 3]) == 2
        assert majority_size(range(10)) == 6

    def test_is_majority(self):
        config = make_config([1, 2, 3, 4, 5])
        assert is_majority([1, 2, 3], config)
        assert not is_majority([1, 2], config)
        assert not is_majority([6, 7, 8], config)

    def test_is_majority_ignores_outsiders(self):
        config = make_config([1, 2, 3])
        assert not is_majority([1, 8, 9], config)
        assert is_majority([1, 2, 9], config)


class TestPhase:
    def test_phase_next_transitions(self):
        assert Phase.IDLE.next() is Phase.IDLE
        assert Phase.SELECT.next() is Phase.REPLACE
        assert Phase.REPLACE.next() is Phase.IDLE

    def test_phase_values(self):
        assert int(Phase.IDLE) == 0
        assert int(Phase.SELECT) == 1
        assert int(Phase.REPLACE) == 2


class TestProposal:
    def test_default_proposal(self):
        assert DEFAULT_PROPOSAL.is_default
        assert DEFAULT_PROPOSAL.phase is Phase.IDLE
        assert DEFAULT_PROPOSAL.members is None

    def test_lexical_order_by_phase(self):
        a = Proposal(Phase.SELECT, make_config([1]))
        b = Proposal(Phase.REPLACE, make_config([1]))
        assert a < b
        assert b > a

    def test_lexical_order_by_members_within_phase(self):
        a = Proposal(Phase.SELECT, make_config([1, 2]))
        b = Proposal(Phase.SELECT, make_config([1, 3]))
        assert a < b

    def test_default_is_smallest(self):
        real = Proposal(Phase.SELECT, make_config([1]))
        assert DEFAULT_PROPOSAL < real

    def test_with_phase_keeps_members(self):
        a = Proposal(Phase.SELECT, make_config([1, 2]))
        b = a.with_phase(Phase.REPLACE)
        assert b.phase is Phase.REPLACE
        assert b.members == a.members

    def test_degree_macro(self):
        assert degree(DEFAULT_PROPOSAL, False) == 0
        assert degree(Proposal(Phase.SELECT, make_config([1])), False) == 2
        assert degree(Proposal(Phase.SELECT, make_config([1])), True) == 3
        assert degree(Proposal(Phase.REPLACE, make_config([1])), True) == 5

    def test_proposal_is_hashable_and_frozen(self):
        a = Proposal(Phase.SELECT, make_config([1]))
        assert hash(a) == hash(Proposal(Phase.SELECT, make_config([1])))
        with pytest.raises(Exception):
            a.phase = Phase.REPLACE  # type: ignore[misc]


class TestRng:
    def test_derive_seed_is_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
        assert derive_seed(1, "a", 2) != derive_seed(1, "a", 3)
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_make_rng_streams_are_independent(self):
        rng_a = make_rng(7, "x")
        rng_b = make_rng(7, "y")
        assert [rng_a.random() for _ in range(3)] != [rng_b.random() for _ in range(3)]

    def test_make_rng_is_reproducible(self):
        assert make_rng(7, "x").random() == make_rng(7, "x").random()

    def test_seed_stream_yields_distinct_values(self):
        stream = seed_stream(1, "lbl")
        values = [next(stream) for _ in range(5)]
        assert len(set(values)) == 5


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(errors.SimulationError, errors.ReproError)
        assert issubclass(errors.ChannelFullError, errors.SimulationError)
        assert issubclass(errors.ReconfigurationInProgress, errors.ReproError)
        assert issubclass(errors.QuorumUnavailable, errors.ReproError)

    def test_raise_and_catch_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.InvariantViolation("boom")


class TestAnalysis:
    def test_result_table_rows_and_render(self):
        table = ResultTable(title="demo", columns=["n", "time"])
        table.add({"n": 3}, {"time": 1.5})
        table.add({"n": 5}, {"time": 2.0})
        assert table.rows() == [[3, 1.5], [5, 2.0]]
        rendered = table.render()
        assert "demo" in rendered
        assert "1.50" in rendered

    def test_result_table_column(self):
        table = ResultTable(title="t", columns=["n", "x"])
        table.add({"n": 1}, {"x": 10})
        table.add({"n": 2}, {"x": 20})
        assert table.column("x") == [10, 20]

    def test_summarize(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["median"] == pytest.approx(2.0)
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["count"] == 3

    def test_summarize_empty(self):
        stats = summarize([])
        assert stats["count"] == 0

    def test_experiment_result_as_row_handles_missing(self):
        result = ExperimentResult(parameters={"a": 1}, metrics={"b": 2})
        assert result.as_row(["a", "b", "c"]) == [1, 2, ""]
