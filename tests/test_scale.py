"""Scale-push regression tests (PR 7).

Pins the behavior-preservation contract of the large-n fast paths:

* the delta/digest gossip wire forms are trace-equivalent to full-vector
  gossip on lossless channels;
* a digest mismatch (corrupted stored copy, broken chain) falls back to
  verified state and repairs within the full-resend window;
* the incremental convergence ledger always agrees with the retained
  full-scan oracle, including under arbitrary-state corruption;
* ``run_until`` poll throttling delays *detection* by at most one poll
  interval and never changes the trajectory;
* same-seed runs at large n are bit-identical (the determinism basis the
  sharded simulator relies on).
"""

from __future__ import annotations

import pytest

from tests.conftest import RecSAHarness, quick_cluster
from repro.sim.config import fast_sim
from repro.workloads.corruption import scramble_cluster


def _stats_at(n, seed, horizon, **overrides):
    cluster = quick_cluster(n, seed=seed, config=fast_sim(**overrides))
    cluster.run(until=horizon)
    return cluster.statistics()


class TestDeltaEquivalence:
    def test_delta_path_matches_full_path_statistics(self):
        """Deltas/digests change the wire form, never the trajectory."""
        with_deltas = _stats_at(12, seed=7, horizon=40.0, gossip_deltas=True)
        without = _stats_at(12, seed=7, horizon=40.0, gossip_deltas=False)
        assert with_deltas == without

    def test_compact_forms_dominate_steady_state(self):
        cluster = quick_cluster(8, seed=11, config=fast_sim(gossip_deltas=True))
        assert cluster.run_until_converged(timeout=300)
        cluster.run(until=cluster.simulator.now + 40.0)
        fulls = sum(node.recsa.fulls_sent for node in cluster.nodes.values())
        compact = sum(
            node.recsa.deltas_sent + node.recsa.digests_sent
            for node in cluster.nodes.values()
        )
        # Steady state is pure refresh: every FULL_RESEND_PERIOD-th send is
        # a full vector, the rest ride the compact forms.
        assert compact > fulls

    def test_delta_convergence_time_matches_full(self):
        for gossip_deltas in (True, False):
            cluster = quick_cluster(
                10, seed=3, config=fast_sim(gossip_deltas=gossip_deltas)
            )
            assert cluster.run_until_converged(timeout=300)
            if gossip_deltas:
                t_deltas = cluster.simulator.now
            else:
                assert cluster.simulator.now == t_deltas


class TestDigestFallback:
    def test_corrupt_stored_copy_detected_and_repaired(self):
        harness = RecSAHarness(pids=[1, 2, 3])
        assert harness.run_until(harness.converged)
        harness.round(count=8)  # settle into compact steady-state gossip
        victim, source = harness[2], harness[1]
        truth = victim.part[1]
        # Corrupt the stored copy *and* the chain metadata: compact receipts
        # must now verify against actual state, notice the mismatch, count a
        # fallback, and route the sender back to the full-vector path.
        victim.part[1] = frozenset({99})
        victim._gossip_chain.pop(1, None)
        before = victim.delta_fallbacks
        harness.round(count=12)
        assert victim.delta_fallbacks > before
        assert victim.part[1] == truth
        assert source.fulls_sent > 0

    def test_delta_with_unverifiable_base_is_dropped(self):
        """A delta whose base cannot be verified must not touch the core.

        Applying changed-fields over the wrong base (reordered burst, wiped
        copy) would fabricate a hybrid core no process ever held; the
        receiver keeps its stale-but-complete copy and counts a fallback.
        """
        from repro.core.recsa import RecSADelta

        harness = RecSAHarness(pids=[1, 2])
        harness.round(count=6)
        victim = harness[2]
        chain_version = victim._gossip_chain[1][0]
        flag = bool(victim.all_flags.get(1, False))
        before = victim.delta_fallbacks
        stale = RecSADelta(
            sender=1,
            version=chain_version + 5,
            base_version=chain_version + 4,
            base_digest=0xDEAD,
            changes=(("all_flag", not flag),),
            digest=0xBEEF,
            echo=None,
        )
        victim.on_delta(1, stale)
        assert bool(victim.all_flags.get(1, False)) == flag
        assert victim.delta_fallbacks == before + 1
        assert 1 not in victim._gossip_chain

        # Broken chain but a provably matching base: the delta applies and
        # re-seeds the chain (the from-scratch repair path).
        repair = RecSADelta(
            sender=1,
            version=chain_version + 1,
            base_version=chain_version,
            base_digest=victim._stored_core_digest(1),
            changes=(("all_flag", not flag),),
            digest=0xF00D,
            echo=None,
        )
        victim.on_delta(1, repair)
        assert bool(victim.all_flags.get(1, False)) == (not flag)
        assert victim._gossip_chain[1] == (chain_version + 1, 0xF00D)

    def test_message_without_chain_metadata_breaks_chain(self):
        from repro.common.types import BOTTOM, DEFAULT_PROPOSAL
        from repro.core.recsa import RecSAMessage

        harness = RecSAHarness(pids=[1, 2])
        harness.round(count=6)
        victim = harness[2]
        assert 1 in victim._gossip_chain
        stale = RecSAMessage(
            sender=1,
            fd=frozenset({1, 2}),
            part=frozenset({1, 2}),
            config=BOTTOM,
            prp=DEFAULT_PROPOSAL,
            all_flag=False,
            echo=None,
        )
        victim.on_message(1, stale)
        assert 1 not in victim._gossip_chain


class TestLedgerOracle:
    def test_ledger_agrees_with_oracle_through_bootstrap(self):
        cluster = quick_cluster(
            8, seed=19, config=fast_sim(convergence_oracle_checks=True)
        )
        # Every is_converged() below cross-checks ledger vs full scan and
        # raises on divergence.
        assert cluster.run_until_converged(timeout=300)
        assert cluster.is_converged() == cluster.is_converged_scan()

    def test_ledger_agrees_with_oracle_under_corruption(self):
        cluster = quick_cluster(
            8, seed=23, config=fast_sim(convergence_oracle_checks=True)
        )
        assert cluster.run_until_converged(timeout=300)
        scramble_cluster(cluster, seed=5, fraction=1.0)
        assert cluster.is_converged() == cluster.is_converged_scan()
        assert cluster.run_until_converged(timeout=2_000)
        assert cluster.is_converged() == cluster.is_converged_scan()

    def test_crash_keeps_ledger_and_oracle_in_step(self):
        cluster = quick_cluster(
            6, seed=29, config=fast_sim(convergence_oracle_checks=True)
        )
        assert cluster.run_until_converged(timeout=300)
        cluster.crash(5)
        cluster.run(until=cluster.simulator.now + 30.0)
        assert cluster.is_converged() == cluster.is_converged_scan()


class TestPollThrottling:
    def test_detection_within_one_poll_interval_of_exact(self):
        exact = quick_cluster(
            8, seed=31, config=fast_sim(convergence_poll_interval=0.0)
        )
        assert exact.run_until_converged(timeout=300)
        t_exact = exact.simulator.now

        throttled = quick_cluster(8, seed=31, config=fast_sim())
        poll = throttled.config.poll_interval()
        assert poll > 0.0
        assert throttled.run_until_converged(timeout=300)
        assert t_exact <= throttled.simulator.now <= t_exact + poll + 1e-9

    def test_throttled_run_checks_predicate_fewer_times(self):
        calls = {"exact": 0, "throttled": 0}

        def counting(cluster, key):
            inner = cluster.is_converged

            def probe():
                calls[key] += 1
                return inner()

            return probe

        for key, poll in (("exact", 0.0), ("throttled", None)):
            cluster = quick_cluster(
                8, seed=37, config=fast_sim(convergence_poll_interval=poll)
            )
            cluster.simulator.run_until(
                counting(cluster, key),
                timeout=40.0,
                poll_interval=(
                    cluster.config.poll_interval() if poll is None else 0.0
                ),
            )
        assert calls["throttled"] < calls["exact"]


class TestScaledFailureDetector:
    def test_default_slack_matches_detector_default(self):
        """``fd_gap_slack=None`` and an explicit 16 are the same trajectory.

        Guards the opt-in contract: adding the knob must not move any
        existing (small-n, default-slack) trajectory.
        """
        default = _stats_at(12, seed=7, horizon=40.0)
        explicit = _stats_at(12, seed=7, horizon=40.0, fd_gap_slack=16)
        assert default == explicit

    def test_auto_slack_resolves_to_max_16_2n(self):
        """``fd_gap_slack="auto"`` resolves to ``max(16, 2n)`` at resolve()."""
        assert fast_sim(fd_gap_slack="auto").resolve(4).fd_gap_slack == 16
        assert fast_sim(fd_gap_slack="auto").resolve(8).fd_gap_slack == 16
        assert fast_sim(fd_gap_slack="auto").resolve(12).fd_gap_slack == 24
        assert fast_sim(fd_gap_slack="auto").resolve(128).fd_gap_slack == 256
        # None stays None: the detector's own default remains in charge.
        assert fast_sim().resolve(128).fd_gap_slack is None

    def test_auto_slack_rejects_other_strings(self):
        from repro.common.errors import SimulationError

        with pytest.raises(SimulationError):
            fast_sim(fd_gap_slack="adaptive").resolve(8)

    def test_auto_slack_trajectory_matches_explicit_value(self):
        """``"auto"`` is sugar, not a new behavior: at n=12 it must produce
        the byte-identical trajectory of an explicit ``fd_gap_slack=24``."""
        auto = _stats_at(12, seed=7, horizon=40.0, fd_gap_slack="auto")
        explicit = _stats_at(12, seed=7, horizon=40.0, fd_gap_slack=24)
        assert auto == explicit

    def test_scaled_slack_unlocks_n128_bootstrap(self):
        """With slack ~ 2n an n=128 cold bootstrap converges in ~13 rounds.

        With the default slack it *never* converges (suspicion churn keeps
        the no-reconfiguration windows from ever aligning cluster-wide) —
        this is the scale-push headline and the benchmark's n=128 leg.
        """
        cluster = quick_cluster(128, seed=89, config=fast_sim(fd_gap_slack=256))
        assert cluster.run_until_converged(timeout=10.0)
        assert cluster.simulator.now < 6.0


class TestTransportRewireGuard:
    def test_bootstrap_n16_pin_survives_transport_split(self):
        """The PR 8 acceptance pin: routing every process through
        ``SimTransport`` must leave the benchmark headline trajectory
        byte-identical — bootstrap_n16 at seed 89 executes exactly 1794
        events and delivers exactly 1726 messages."""
        from repro.scenarios import ScenarioSpec, run_scenario

        spec = ScenarioSpec(
            name="bootstrap_n16", n=16, config="fast_sim",
            bootstrap_timeout=6_000.0,
        )
        result = run_scenario(spec, seed=89)
        stats = result["statistics"]
        assert result["bootstrapped"]
        assert stats["executed_events"] == 1794
        assert stats["delivered_messages"] == 1726
        assert stats["time"] == pytest.approx(4.857012582571038)


class TestScaleDeterminism:
    def test_same_seed_is_bit_identical_at_n128(self):
        """Two cold n=128 bootstraps, same seed, byte-identical statistics.

        The horizon is short — the point is determinism of the delta path
        at scale, not convergence (which gets its own curve in the audit
        tier and benchmarks).
        """
        first = _stats_at(128, seed=89, horizon=2.0, gossip_deltas=True)
        second = _stats_at(128, seed=89, horizon=2.0, gossip_deltas=True)
        assert first == second
        assert first["executed_events"] > 10_000

    def test_different_seeds_diverge_at_scale(self):
        first = _stats_at(64, seed=89, horizon=2.0)
        second = _stats_at(64, seed=90, horizon=2.0)
        assert first != second
