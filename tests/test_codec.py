"""Wire-codec round-trip and rejection tests.

Two obligations, matching the transport split:

* **Fidelity** — every registered wire dataclass survives
  ``unframe(frame(x)) == x``, including the identity-sensitive pieces
  (sentinel singletons, IntEnum members) and the container zoo
  (frozensets, nested tuples, mappingproxy snapshots).
* **Hostility** — malformed bytes and structurally hostile tagged JSON
  raise :class:`~repro.common.codec.CodecError` and nothing else; and a
  frame that *decodes* fine but carries out-of-bounds protocol values is
  the next layer's problem, which ``validate_rb_message`` demonstrably
  catches (the same split the Byzantine datalink uses).
"""

import json
import struct
import types

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.coherent_start import CoherentStartMessage
from repro.common import codec
from repro.common.codec import CodecError, decode, encode, frame, roundtrip, unframe
from repro.common.types import (
    BOTTOM,
    NOT_PARTICIPANT,
    DEFAULT_PROPOSAL,
    Phase,
    Proposal,
    make_config,
)
from repro.core.joining import JoinRequest, JoinResponse
from repro.core.recma import RecMAMessage
from repro.core.recsa import EchoTriple, RecSADelta, RecSADigest, RecSAMessage
from repro.counters.counter import Counter, CounterPair
from repro.counters.service import (
    CounterGossipMessage,
    MaxReadRequest,
    MaxReadResponse,
    MaxWriteRequest,
    MaxWriteResponse,
)
from repro.datalink.reliable_broadcast import (
    MAX_PATH_LEN,
    MAX_RB_SEQ,
    RBMessage,
    validate_rb_message,
)
from repro.datalink.token_exchange import DataLinkMessage
from repro.labels.label import EpochLabel, LabelPair
from repro.labels.labeling import LabelMessage
from repro.vs.view import View
from repro.vs.virtual_synchrony import VSState, VSStatus


_LABEL = EpochLabel(creator=2, sting=7, antistings=frozenset({1, 3}))
_PAIR = LabelPair(ml=_LABEL, cl=_LABEL)
_COUNTER = Counter(label=_LABEL, seqn=5, wid=2)
_CPAIR = CounterPair(mct=_COUNTER, cct=_COUNTER)
_ECHO = EchoTriple(
    part=make_config([0, 1, 2]),
    prp=Proposal(Phase.SELECT, make_config([0, 1])),
    all_flag=True,
)
_VIEW = View(view_id=_COUNTER, members=make_config([0, 1, 2]))

#: One realistic exemplar per registered wire type.  The completeness test
#: below fails if a new @wire_type lands without an exemplar here, so the
#: round-trip property can never silently skip a message class.
EXEMPLARS = {
    "DataLinkMessage": DataLinkMessage(
        kind="data", link_sender=1, seq=1, payload=("hb", 3)
    ),
    "RBMessage": RBMessage(kind="fwd", origin=2, seq=9, payload="cmd", path=(1, 3)),
    "EchoTriple": _ECHO,
    "RecSAMessage": RecSAMessage(
        sender=3,
        fd=make_config([0, 1, 2, 3]),
        part=make_config([0, 1, 2]),
        config=BOTTOM,
        prp=DEFAULT_PROPOSAL,
        all_flag=False,
        echo=_ECHO,
        version=4,
        digest=0xDEAD,
    ),
    "RecSADelta": RecSADelta(
        sender=1,
        version=7,
        base_version=6,
        base_digest=123,
        changes=(("config", make_config([0, 1])), ("all_flag", True)),
        digest=456,
        echo=None,
    ),
    "RecSADigest": RecSADigest(sender=2, version=7, digest=456, echo=_ECHO),
    "RecMAMessage": RecMAMessage(sender=0, no_maj=False, need_reconf=True),
    "JoinRequest": JoinRequest(sender=9),
    "JoinResponse": JoinResponse(
        sender=1, granted=True, state={"labels": (_PAIR,), "seqn": 3}
    ),
    "Proposal": Proposal(Phase.REPLACE, make_config([0, 2, 4])),
    "EpochLabel": _LABEL,
    "LabelPair": _PAIR,
    "LabelMessage": LabelMessage(sender=4, sent_max=_PAIR, last_sent=None),
    "Counter": _COUNTER,
    "CounterPair": _CPAIR,
    "CounterGossipMessage": CounterGossipMessage(
        sender=1, sent_max=_CPAIR, last_sent=None
    ),
    "MaxReadRequest": MaxReadRequest(sender=1, op_id=17),
    "MaxReadResponse": MaxReadResponse(
        sender=2, op_id=17, counter=_CPAIR, aborted=False
    ),
    "MaxWriteRequest": MaxWriteRequest(sender=1, op_id=18, counter=_COUNTER),
    "MaxWriteResponse": MaxWriteResponse(sender=2, op_id=18, acked=True),
    "View": _VIEW,
    "VSState": VSState(
        sender=0,
        view=_VIEW,
        status=VSStatus.MULTICAST,
        rnd=3,
        prop_view=None,
        no_crd=False,
        suspend=False,
        input=(0, 2, ("cmd", 11)),
        state_snapshot=types.MappingProxyType({"k": (1, "x")}),
        delivered=((3, ("cmd", 11)),),
        crd=0,
    ),
    "CoherentStartMessage": CoherentStartMessage(
        sender=5, sequence=2, config=make_config(range(4))
    ),
}


class TestRoundTrip:
    def test_every_registered_type_has_an_exemplar(self):
        registered = set(codec.registered_wire_types())
        assert registered == set(EXEMPLARS)

    @pytest.mark.parametrize("name", sorted(EXEMPLARS))
    def test_exemplar_roundtrips(self, name):
        value = EXEMPLARS[name]
        restored = roundtrip(value)
        if name == "VSState":
            # mappingproxy snapshots decode as plain dicts (equal content).
            assert restored.state_snapshot == dict(value.state_snapshot)
            assert restored == type(value)(
                **{
                    **{f: getattr(value, f) for f in value.__dataclass_fields__},
                    "state_snapshot": dict(value.state_snapshot),
                }
            )
        else:
            assert restored == value
            assert type(restored) is type(value)

    def test_sentinels_keep_identity(self):
        assert roundtrip(BOTTOM) is BOTTOM
        assert roundtrip(NOT_PARTICIPANT) is NOT_PARTICIPANT
        msg = EXEMPLARS["RecSAMessage"]
        assert roundtrip(msg).config is BOTTOM

    def test_intenum_members_keep_identity(self):
        # The regression the live runtime caught: Phase is an IntEnum, so a
        # scalar-first codec silently flattens it to int and the default
        # proposal stops being "default" (no_reco then flaps forever).
        restored = roundtrip(DEFAULT_PROPOSAL)
        assert restored.phase is Phase.IDLE
        assert restored.is_default
        assert roundtrip(VSStatus.MULTICAST) is VSStatus.MULTICAST

    def test_frozenset_encoding_is_canonical(self):
        a = frame(frozenset([3, 1, 2]))
        b = frame(frozenset([2, 3, 1]))
        assert a == b

    def test_framing_streams(self):
        data = frame("first") + frame(("second", 2))
        value, consumed = unframe(data)
        assert value == "first"
        rest, consumed2 = unframe(data[consumed:])
        assert rest == ("second", 2)
        assert consumed + consumed2 == len(data)

    @given(
        st.recursive(
            st.none()
            | st.booleans()
            | st.integers(-(2**40), 2**40)
            | st.text(max_size=12),
            lambda children: st.tuples(children, children)
            | st.lists(children, max_size=3)
            | st.dictionaries(st.text(max_size=4), children, max_size=3),
            max_leaves=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_plain_container_roundtrip(self, value):
        assert roundtrip(value) == value

    @given(st.frozensets(st.integers(-1000, 1000), max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_frozenset_roundtrip(self, value):
        assert roundtrip(value) == value


class TestRejection:
    def test_unregistered_class_is_rejected_on_encode(self):
        class NotWire:
            pass

        with pytest.raises(CodecError):
            encode(NotWire())

    def test_unknown_wire_type_rejected(self):
        with pytest.raises(CodecError):
            decode({"%": "dc", "t": "Simulator", "f": {}})

    def test_unknown_fields_rejected(self):
        body = encode(JoinRequest(sender=1))
        body["f"]["evil"] = 1
        with pytest.raises(CodecError):
            decode(body)

    def test_unknown_singleton_and_enum_rejected(self):
        with pytest.raises(CodecError):
            decode({"%": "one", "t": "TOP"})
        with pytest.raises(CodecError):
            decode({"%": "enum", "t": "Phase", "v": 99})
        with pytest.raises(CodecError):
            decode({"%": "enum", "t": "NoSuchEnum", "v": 0})

    def test_truncated_frames_rejected(self):
        data = frame(EXEMPLARS["RecSAMessage"])
        with pytest.raises(CodecError):
            unframe(data[:2])  # inside the length prefix
        with pytest.raises(CodecError):
            unframe(data[:-3])  # inside the body

    def test_oversized_length_prefix_rejected(self):
        with pytest.raises(CodecError):
            unframe(struct.pack(">I", codec.MAX_FRAME_BYTES + 1) + b"x")

    def test_non_json_body_rejected(self):
        with pytest.raises(CodecError):
            unframe(struct.pack(">I", 4) + b"\xff\xfe\x00\x01")

    def test_depth_bomb_rejected(self):
        bomb = {"%": "list", "v": []}
        for _ in range(codec.MAX_DEPTH + 2):
            bomb = {"%": "list", "v": [bomb]}
        with pytest.raises(CodecError):
            decode(bomb)

    def test_unhashable_frozenset_element_rejected(self):
        with pytest.raises(CodecError):
            decode({"%": "fset", "v": [{"%": "list", "v": []}]})

    @given(
        st.recursive(
            st.none() | st.booleans() | st.integers() | st.text(max_size=8),
            lambda children: st.dictionaries(
                st.sampled_from(["%", "t", "v", "f", "x"]),
                children,
                max_size=4,
            )
            | st.lists(children, max_size=3),
            max_leaves=10,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_hostile_tagged_json_never_crashes(self, value):
        # Anything json.loads could produce either decodes or raises
        # CodecError — never KeyError/TypeError/RecursionError.
        payload = json.loads(json.dumps(value))
        try:
            decode(payload)
        except CodecError:
            pass


class TestByzantineBoundsSplit:
    """Codec-valid but protocol-hostile values are the validator's job."""

    def test_out_of_bounds_rb_messages_decode_then_fail_validation(self):
        hostile = [
            RBMessage(kind="send", origin=1, seq=MAX_RB_SEQ + 5),
            RBMessage(kind="nonsense", origin=1, seq=1),
            RBMessage(kind="echo", origin=2, seq=-1),
            RBMessage(kind="fwd", origin=3, seq=1,
                      path=tuple(range(MAX_PATH_LEN + 1))),
        ]
        for message in hostile:
            restored = roundtrip(message)
            assert restored == message  # the codec is a faithful pipe...
            assert not validate_rb_message(restored)  # ...validation rejects

    def test_honest_rb_message_passes_both_layers(self):
        message = EXEMPLARS["RBMessage"]
        assert validate_rb_message(roundtrip(message))


class TestBinaryFastPath:
    """PR 9: the binary wire format is an exact twin of the tagged-JSON path.

    ``frame()`` now emits the binary format (discriminator ``B``);
    ``frame_json()`` keeps the JSON format (``J``) alive as the fallback and
    fuzz target.  Equivalence is the contract that lets both coexist on one
    socket: for every encodable value, decoding the binary bytes and
    decoding the JSON bytes must produce equal objects.
    """

    @pytest.mark.parametrize("name", sorted(EXEMPLARS))
    def test_binary_equals_json_on_every_registered_type(self, name):
        value = EXEMPLARS[name]
        via_binary = codec.decode_binary(codec.encode_binary(value))
        via_json = decode(json.loads(json.dumps(encode(value))))
        assert via_binary == via_json
        assert type(via_binary) is type(via_json)

    @pytest.mark.parametrize("name", sorted(EXEMPLARS))
    def test_both_frame_formats_interoperate(self, name):
        value = EXEMPLARS[name]
        binary_frame = frame(value)
        json_frame = codec.frame_json(value)
        assert binary_frame[4] == codec.FORMAT_BINARY
        assert json_frame[4] == codec.FORMAT_JSON
        assert unframe(binary_frame)[0] == unframe(json_frame)[0]

    def test_binary_preserves_identity_semantics(self):
        restored = codec.decode_binary(codec.encode_binary(DEFAULT_PROPOSAL))
        assert restored.phase is Phase.IDLE
        assert restored.is_default
        message = codec.decode_binary(codec.encode_binary(EXEMPLARS["RecSAMessage"]))
        assert message.config is BOTTOM
        assert codec.decode_binary(codec.encode_binary(BOTTOM)) is BOTTOM
        assert (
            codec.decode_binary(codec.encode_binary(VSStatus.MULTICAST))
            is VSStatus.MULTICAST
        )

    def test_binary_frozenset_encoding_is_canonical(self):
        assert codec.encode_binary(frozenset([3, 1, 2])) == codec.encode_binary(
            frozenset([2, 3, 1])
        )

    def test_struct_fast_path_keeps_exotic_values_exact(self):
        # The DCQ struct path is annotation-gated AND value-guarded: a field
        # that is annotated int but holds a bool / big int / float at runtime
        # must fall back to the flat layout, not be flattened through '>q'.
        probe = MaxReadRequest(sender=1, op_id=2)
        fast = codec.encode_binary(probe)
        huge = MaxReadRequest(sender=1, op_id=1 << 70)
        assert codec.decode_binary(codec.encode_binary(huge)) == huge
        boolish = MaxReadRequest(sender=True, op_id=2)
        restored = codec.decode_binary(codec.encode_binary(boolish))
        assert restored.sender is True
        assert fast != codec.encode_binary(huge)

    @given(
        st.recursive(
            st.none()
            | st.booleans()
            | st.integers(-(2**70), 2**70)
            | st.floats(allow_nan=False)
            | st.text(max_size=12)
            | st.sampled_from(
                [BOTTOM, NOT_PARTICIPANT, Phase.SELECT, VSStatus.MULTICAST,
                 EXEMPLARS["Counter"], EXEMPLARS["EpochLabel"]]
            ),
            lambda children: st.tuples(children, children)
            | st.lists(children, max_size=3)
            | st.dictionaries(st.text(max_size=4), children, max_size=3)
            | st.frozensets(st.integers(-100, 100), max_size=4),
            max_leaves=12,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_binary_equals_json_on_value_trees(self, value):
        via_binary = codec.decode_binary(codec.encode_binary(value))
        via_json = decode(json.loads(json.dumps(encode(value))))
        assert via_binary == via_json


class TestBinaryRejection:
    """Hostile binary bytes raise CodecError, never crash, never hang."""

    def test_unknown_discriminator_rejected(self):
        with pytest.raises(CodecError):
            unframe(struct.pack(">I", 4) + b"\xff\xfe\x00\x01")

    def test_empty_body_rejected(self):
        with pytest.raises(CodecError):
            unframe(struct.pack(">I", 0))

    @pytest.mark.parametrize("name", sorted(EXEMPLARS))
    def test_truncated_binary_frames_rejected(self, name):
        data = frame(EXEMPLARS[name])
        for cut in range(5, len(data) - 1, max(1, len(data) // 7)):
            with pytest.raises(CodecError):
                unframe(data[:cut])

    def test_trailing_binary_bytes_rejected(self):
        body = codec.encode_binary(42) + b"\x00"
        with pytest.raises(CodecError):
            codec.decode_binary(body)

    def test_hostile_container_count_rejected_without_allocation(self):
        # Claims 2**28 elements in a 3-byte body: must raise, not allocate.
        hostile = bytes([0x07]) + b"\x80\x80\x80\x80\x01"
        with pytest.raises(CodecError):
            codec.decode_binary(hostile)

    def test_unknown_ids_rejected(self):
        with pytest.raises(CodecError):
            codec.decode_binary(bytes([0x0B, 0xFA, 0x01]))  # wire type id
        with pytest.raises(CodecError):
            codec.decode_binary(bytes([0x0D, 0xFA, 0x01, 0x03, 0x02]))  # enum
        with pytest.raises(CodecError):
            codec.decode_binary(bytes([0x0E, 0xFA, 0x01]))  # singleton

    def test_binary_depth_bomb_rejected(self):
        bomb = bytes([0x06, 0x01]) * (codec.MAX_DEPTH + 2) + bytes([0x00])
        with pytest.raises(CodecError):
            codec.decode_binary(bomb)

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_random_binary_bodies_never_crash(self, body):
        try:
            codec.decode_binary(body)
        except CodecError:
            pass

    @given(st.binary(min_size=0, max_size=48), st.sampled_from(sorted(EXEMPLARS)))
    @settings(max_examples=100, deadline=None)
    def test_bitflipped_frames_never_crash(self, noise, name):
        data = bytearray(frame(EXEMPLARS[name]))
        for index, byte in enumerate(noise):
            data[4 + index % (len(data) - 4)] ^= byte or 1
        try:
            unframe(bytes(data))
        except CodecError:
            pass
