"""Transport conformance: one battery, two backends.

Every test here runs the *same scenario* against both
:class:`repro.transport.sim.SimTransport` (discrete-event simulator) and
:class:`repro.runtime.transport.AsyncioTransport` (UDP/localhost event
loop), asserting the behavioural contract of
:class:`repro.transport.base.Transport` that the protocol stack relies on:

* delivery — a sent payload arrives at the destination, intact (in the
  asyncio backend that means a full codec round trip over a real socket);
* timer ordering — timers fire in delay order, the base-class periodic
  loop keeps ticking;
* cancel semantics — cancelled timers never fire; cancel is idempotent
  and tolerates already-fired handles;
* crash isolation — a crashed node takes no further steps and absorbs
  no further deliveries;
* RNG derivation — a node's local random stream is a function of
  ``(seed, pid)`` only, not of the hosting backend.

Scenarios are expressed in *simulated time units*; the asyncio driver
rescales them with a small ``tick_seconds`` so the whole battery costs a
couple of wall seconds.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, List, Sequence, Tuple

import pytest

from repro.common.types import Phase, Proposal, make_config
from repro.runtime.transport import AsyncioTransport
from repro.sim.network import ChannelConfig
from repro.sim.process import Process
from repro.sim.simulator import Simulator

SEED = 5
#: Wall seconds per sim-time unit for the asyncio driver.  10 ms keeps the
#: whole battery fast while leaving a comfortable margin between distinct
#: timer deadlines (they are >= 1 unit = 10 ms apart in every scenario).
TICK_SECONDS = 0.01

#: A schedule is a list of ``(sim_time, action)`` pairs; the driver runs the
#: system to each instant in order, applies the action, and finally runs to
#: the horizon.  Actions receive the transport so they can crash nodes etc.
Schedule = Sequence[Tuple[float, Callable[[Any], None]]]


class Probe(Process):
    """A process that records everything the transport does to it."""

    def __init__(self, pid: int) -> None:
        super().__init__(pid, step_interval=1.0, jitter=0.0)
        self.inbox: List[Tuple[int, Any]] = []
        self.fired: List[str] = []
        self.on_start_hook: Callable[["Probe"], None] = lambda probe: None

    def on_start(self) -> None:
        self.on_start_hook(self)

    def on_receive(self, sender: int, payload: Any) -> None:
        self.inbox.append((sender, payload))

    def mark(self, label: str) -> Callable[[], None]:
        return lambda: self.fired.append(label)


def _drive_sim(probes: Sequence[Probe], schedule: Schedule, horizon: float) -> Any:
    simulator = Simulator(seed=SEED)
    for probe in probes:
        simulator.add_process(probe)
    for at, action in schedule:
        simulator.run(until=at)
        action(simulator.transport)
    simulator.run(until=horizon)
    return simulator.transport


def _drive_asyncio(probes: Sequence[Probe], schedule: Schedule, horizon: float) -> Any:
    async def main() -> Any:
        async with AsyncioTransport(seed=SEED, tick_seconds=TICK_SECONDS) as transport:
            for probe in probes:
                await transport.start_node(probe)
            elapsed = 0.0
            for at, action in schedule:
                await asyncio.sleep(max(0.0, at - elapsed) * TICK_SECONDS)
                elapsed = max(elapsed, at)
                action(transport)
            await asyncio.sleep(max(0.0, horizon - elapsed) * TICK_SECONDS)
            return transport

    return asyncio.run(main())


def _drive_sim_fifo(probes: Sequence[Probe], schedule: Schedule, horizon: float) -> Any:
    """Sim driver over a variance-free channel.

    The default sim channel draws per-packet delays from ``[0.5, 1.5]`` —
    reordering is an intentional adversarial feature there, so FIFO is not
    a contract of the general sim network.  With a degenerate delay
    interval the simulator *must* deliver in send order (equal-time events
    run in insertion order), which is the sim-side counterpart of the
    asyncio backend's coalesced-datagram ordering guarantee.
    """
    simulator = Simulator(
        seed=SEED,
        # capacity above any burst size here: a full channel drops packets
        # (paper semantics), which would test capacity rather than ordering.
        channel_config=ChannelConfig(capacity=64, min_delay=1.0, max_delay=1.0),
    )
    for probe in probes:
        simulator.add_process(probe)
    for at, action in schedule:
        simulator.run(until=at)
        action(simulator.transport)
    simulator.run(until=horizon)
    return simulator.transport


DRIVERS = {"sim": _drive_sim, "asyncio": _drive_asyncio}
FIFO_DRIVERS = {"sim": _drive_sim_fifo, "asyncio": _drive_asyncio}


def crash(transport: Any, pid: int) -> None:
    """Backend-appropriate stop-fail of node *pid*."""
    if hasattr(transport, "crash_node"):
        transport.crash_node(pid)
    else:
        transport.simulator.crash_process(pid)


@pytest.fixture(params=sorted(DRIVERS))
def drive(request):
    return DRIVERS[request.param]


@pytest.fixture(params=sorted(FIFO_DRIVERS))
def drive_fifo(request):
    return FIFO_DRIVERS[request.param]


class TestConformance:
    def test_delivery(self, drive):
        # Sends are armed one unit after start: the transport gives no
        # delivery guarantee for packets racing node bring-up (lost packets
        # are legal; the real stack retransmits), so the conformance claim
        # is about sends once every endpoint is live.
        a, b = Probe(0), Probe(1)
        a.on_start_hook = lambda probe: probe.context.set_timer(
            1.0, lambda: probe.context.send(1, ("hello", 42)), label="send"
        )
        drive([a, b], [], horizon=20.0)
        assert (0, ("hello", 42)) in b.inbox

    def test_payload_fidelity_through_wire_types(self, drive):
        # A registered dataclass with an IntEnum inside must arrive intact —
        # on the asyncio backend this exercises the full frame/unframe path.
        sent = Proposal(Phase.SELECT, make_config([0, 1, 2]))
        a, b = Probe(0), Probe(1)
        a.on_start_hook = lambda probe: probe.context.set_timer(
            1.0, lambda: probe.context.send(1, sent), label="send"
        )
        drive([a, b], [], horizon=20.0)
        payloads = [payload for _, payload in b.inbox]
        assert sent in payloads
        received = payloads[payloads.index(sent)]
        assert received.phase is Phase.SELECT

    def test_send_many_counts_accepted_packets(self, drive):
        a, b, c = Probe(0), Probe(1), Probe(2)
        counts: List[int] = []
        a.on_start_hook = lambda probe: probe.context.set_timer(
            1.0,
            lambda: counts.append(
                probe.context.send_many([(1, "x"), (2, "y"), (1, "z")])
            ),
            label="send",
        )
        drive([a, b, c], [], horizon=20.0)
        assert counts == [3]
        assert (0, "x") in b.inbox and (0, "z") in b.inbox
        assert (0, "y") in c.inbox

    def test_timers_fire_in_delay_order(self, drive):
        probe = Probe(0)

        def arm(p: Probe) -> None:
            p.context.set_timer(6.0, p.mark("late"), label="late")
            p.context.set_timer(2.0, p.mark("early"), label="early")
            p.context.set_timer(4.0, p.mark("mid"), label="mid")

        probe.on_start_hook = arm
        drive([probe], [], horizon=20.0)
        assert probe.fired == ["early", "mid", "late"]

    def test_periodic_loop_keeps_ticking(self, drive):
        probe = Probe(0)
        drive([probe], [], horizon=10.0)
        # step_interval=1.0, jitter=0 → about one step per unit; allow slack
        # for the asyncio backend's wall-clock scheduling.
        assert probe.step_count >= 5

    def test_cancelled_timer_never_fires(self, drive):
        probe = Probe(0)

        def arm(p: Probe) -> None:
            doomed = p.context.set_timer(3.0, p.mark("doomed"), label="doomed")
            p.context.set_timer(5.0, p.mark("kept"), label="kept")
            p.context.cancel_timer(doomed)
            p.context.cancel_timer(doomed)  # idempotent

        probe.on_start_hook = arm
        drive([probe], [], horizon=20.0)
        assert probe.fired == ["kept"]

    def test_cancel_after_fire_is_harmless(self, drive):
        probe = Probe(0)
        handles: List[Any] = []

        def arm(p: Probe) -> None:
            handles.append(p.context.set_timer(2.0, p.mark("fired"), label="t"))

        probe.on_start_hook = arm
        drive(
            [probe],
            [(10.0, lambda transport: probe.context.cancel_timer(handles[0]))],
            horizon=20.0,
        )
        assert probe.fired == ["fired"]

    def test_crash_isolation(self, drive):
        a, b = Probe(0), Probe(1)
        snapshot: List[Tuple[int, int]] = []

        def record_and_poke(transport: Any) -> None:
            snapshot.append((b.step_count, len(b.inbox)))
            a.context.send(1, "after-crash")

        drive(
            [a, b],
            [(10.0, lambda transport: crash(transport, 1)), (15.0, record_and_poke)],
            horizon=30.0,
        )
        steps_at_crash, inbox_at_crash = snapshot[0]
        assert b.crashed
        # No further do-forever iterations and no further deliveries.
        assert b.step_count == steps_at_crash
        assert len(b.inbox) == inbox_at_crash
        assert (0, "after-crash") not in b.inbox

    def test_coalesced_burst_preserves_per_destination_fifo(self, drive_fifo):
        # PR 9: the asyncio backend coalesces frames queued to the same
        # destination within one event-loop turn into one datagram.  The
        # conformance contract: a burst sent in one atomic step arrives at
        # each destination complete and in send order on both backends
        # (sim runs a variance-free channel here; see ``_drive_sim_fifo``) —
        # coalescing changes datagram framing, never ordering or content.
        a, b, c = Probe(0), Probe(1), Probe(2)
        burst = [(1, ("seq", k)) for k in range(12)] + [(2, ("other", 0))]
        a.on_start_hook = lambda probe: probe.context.set_timer(
            1.0, lambda: probe.context.send_many(burst), label="burst"
        )
        drive_fifo([a, b, c], [], horizon=20.0)
        assert [p for _, p in b.inbox if p[0] == "seq"] == [
            ("seq", k) for k in range(12)
        ]
        assert (0, ("other", 0)) in c.inbox

    def test_interleaved_sends_preserve_per_destination_fifo(self, drive_fifo):
        # Same contract through the single-send path: alternating send()
        # calls to two destinations within one step coalesce per destination
        # without reordering either stream.
        a, b, c = Probe(0), Probe(1), Probe(2)

        def blast(probe: Probe) -> None:
            for k in range(8):
                probe.context.send(1, ("b", k))
                probe.context.send(2, ("c", k))

        a.on_start_hook = lambda probe: probe.context.set_timer(
            1.0, lambda: blast(probe), label="blast"
        )
        drive_fifo([a, b, c], [], horizon=20.0)
        assert [p for _, p in b.inbox] == [("b", k) for k in range(8)]
        assert [p for _, p in c.inbox] == [("c", k) for k in range(8)]

    def test_now_is_monotonic(self, drive):
        probe = Probe(0)
        stamps: List[float] = []

        def arm(p: Probe) -> None:
            for delay in (1.0, 2.0, 3.0):
                p.context.set_timer(
                    delay, lambda: stamps.append(p.context.now()), label="stamp"
                )

        probe.on_start_hook = arm
        drive([probe], [], horizon=10.0)
        assert len(stamps) == 3
        assert stamps == sorted(stamps)
        assert stamps[0] >= 0.0


def test_process_rng_streams_are_backend_independent():
    """``make_process_rng`` derives from ``(seed, pid)`` only."""
    simulator = Simulator(seed=SEED)
    sim_draws = {
        pid: [simulator.transport.make_process_rng(pid).random() for _ in range(5)]
        for pid in (0, 3, 7)
    }

    async def runtime_draws() -> dict:
        async with AsyncioTransport(seed=SEED) as transport:
            return {
                pid: [transport.make_process_rng(pid).random() for _ in range(5)]
                for pid in (0, 3, 7)
            }

    assert asyncio.run(runtime_draws()) == sim_draws
    # Distinct pids draw distinct streams.
    assert sim_draws[0] != sim_draws[3]
