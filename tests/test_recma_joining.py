"""Tests for the recMA layer (Algorithm 3.2) and the joining mechanism (3.3)."""

from __future__ import annotations

import pytest

from repro.common.types import make_config
from repro.core.prediction import (
    AlwaysReconfigure,
    CallbackPolicy,
    FractionCrashedPolicy,
    MembershipDriftPolicy,
    NeverReconfigure,
)
from repro.core.quorum import MajorityQuorumSystem
from repro.core.recma import RecMAMessage
from repro.workloads.corruption import corrupt_recma_flags, stuff_stale_recma_packets

from tests.conftest import quick_cluster


class TestPredictionPolicies:
    def test_never_and_always(self):
        config = make_config([1, 2, 3])
        trusted = frozenset([1, 2, 3])
        assert not NeverReconfigure()(config, trusted)
        assert AlwaysReconfigure()(config, trusted)

    def test_fraction_crashed_policy(self):
        policy = FractionCrashedPolicy(fraction=0.25)
        config = make_config(range(8))
        assert not policy(config, frozenset(range(8)))
        assert not policy(config, frozenset(range(1, 8)))  # 1/8 missing < 1/4
        assert policy(config, frozenset(range(2, 8)))  # 2/8 missing >= 1/4

    def test_fraction_policy_validates_fraction(self):
        with pytest.raises(ValueError):
            FractionCrashedPolicy(fraction=0.0)

    def test_membership_drift_policy(self):
        policy = MembershipDriftPolicy(overlap=0.5)
        config = make_config([1, 2])
        assert not policy(config, frozenset([1, 2, 3]))
        assert policy(config, frozenset([1, 2, 3, 4, 5]))

    def test_callback_policy(self):
        policy = CallbackPolicy(lambda config, trusted: len(trusted) > len(config))
        assert policy(make_config([1]), frozenset([1, 2]))
        assert not policy(make_config([1, 2]), frozenset([1]))


class TestQuorumSystem:
    def test_majority_quorum_size_and_membership(self):
        quorum = MajorityQuorumSystem([1, 2, 3, 4, 5])
        assert quorum.quorum_size() == 3
        assert quorum.is_quorum([1, 2, 3])
        assert not quorum.is_quorum([1, 2])
        assert not quorum.is_quorum([7, 8, 9])

    def test_quorums_pairwise_intersect(self):
        assert MajorityQuorumSystem([1, 2, 3, 4]).intersects()
        assert MajorityQuorumSystem([1, 2, 3, 4, 5]).intersects()


class TestRecMA:
    def test_no_trigger_in_steady_state(self):
        cluster = quick_cluster(4, seed=31)
        assert cluster.run_until_converged(timeout=800)
        cluster.run(until=cluster.simulator.now + 150)
        assert sum(node.recma.trigger_count for node in cluster.nodes.values()) == 0

    def test_majority_collapse_triggers_reconfiguration(self):
        cluster = quick_cluster(5, seed=32)
        assert cluster.run_until_converged(timeout=800)
        old_config = cluster.agreed_configuration()
        for pid in (0, 1, 2):
            cluster.crash(pid)
        assert cluster.run_until(
            lambda: cluster.is_converged()
            and cluster.agreed_configuration() is not None
            and cluster.agreed_configuration() != old_config,
            timeout=4000,
        )
        new_config = cluster.agreed_configuration()
        assert new_config <= make_config([3, 4])
        assert sum(node.recma.majority_triggers for node in cluster.nodes.values()) >= 1

    def test_minority_crash_does_not_trigger(self):
        cluster = quick_cluster(5, seed=33)
        assert cluster.run_until_converged(timeout=800)
        config = cluster.agreed_configuration()
        cluster.crash(0)
        cluster.run(until=cluster.simulator.now + 200)
        assert cluster.agreed_configuration() == config
        assert sum(node.recma.majority_triggers for node in cluster.nodes.values()) == 0

    def test_prediction_majority_triggers_reconfiguration(self):
        # A drift policy plus two joiners: once a majority of members see the
        # drift, the configuration is replaced with the wider participant set.
        cluster = quick_cluster(3, seed=34, prediction_policy=MembershipDriftPolicy(overlap=0.8))
        assert cluster.run_until_converged(timeout=800)
        old_config = cluster.agreed_configuration()
        joiners = [cluster.add_joiner(100), cluster.add_joiner(101)]
        assert cluster.run_until(
            lambda: all(j.scheme.is_participant() for j in joiners), timeout=3000
        )
        assert cluster.run_until(
            lambda: cluster.is_converged()
            and cluster.agreed_configuration() is not None
            and cluster.agreed_configuration() > old_config,
            timeout=4000,
        )
        assert 100 in cluster.agreed_configuration()

    def test_single_prediction_vote_does_not_trigger(self):
        # Only one node's policy votes for reconfiguration: no majority, no
        # trigger (the paper's protection against unilateral requests).
        votes = {0}
        cluster = quick_cluster(4, seed=35)
        for pid, node in cluster.nodes.items():
            node.recma.policy = CallbackPolicy(
                lambda config, trusted, pid=pid: pid in votes
            )
        assert cluster.run_until_converged(timeout=800)
        cluster.run(until=cluster.simulator.now + 200)
        assert sum(node.recma.prediction_triggers for node in cluster.nodes.values()) == 0

    def test_corrupt_flags_cause_bounded_triggers(self):
        """Lemma 3.18: stale flags cause at most a bounded number of triggers."""
        cluster = quick_cluster(4, seed=36)
        assert cluster.run_until_converged(timeout=800)
        universe = list(range(4))
        for node in cluster.nodes.values():
            corrupt_recma_flags(node, universe, seed=5)
        stuff_stale_recma_packets(cluster, target=0, count=10, seed=6)
        cluster.run(until=cluster.simulator.now + 400)
        triggers = sum(node.recma.trigger_count for node in cluster.nodes.values())
        capacity = cluster.channel_capacity
        n = len(cluster.nodes)
        assert triggers <= n * n * capacity
        # And the system is stable again afterwards.
        assert cluster.run_until_converged(timeout=2000)

    def test_flags_reset_each_iteration(self):
        cluster = quick_cluster(3, seed=37)
        assert cluster.run_until_converged(timeout=800)
        node = cluster.nodes[0]
        node.recma.no_maj[0] = True
        node.recma.need_reconf[0] = True
        cluster.run(until=cluster.simulator.now + 10)
        assert not node.recma.no_maj[0]
        assert not node.recma.need_reconf[0]

    def test_non_participant_ignores_recma_messages(self):
        cluster = quick_cluster(3, seed=38)
        joiner = cluster.add_joiner(50)
        joiner.recma.on_message(1, RecMAMessage(sender=1, no_maj=True, need_reconf=True))
        assert not joiner.recma.no_maj.get(1, False)


class TestJoining:
    def test_joiner_becomes_participant(self):
        cluster = quick_cluster(4, seed=41)
        assert cluster.run_until_converged(timeout=800)
        joiner = cluster.add_joiner(99)
        assert cluster.run_until(lambda: joiner.scheme.is_participant(), timeout=2500)
        assert joiner.current_config() == cluster.agreed_configuration()
        assert cluster.is_converged() or cluster.run_until_converged(timeout=1000)

    def test_joiner_not_member_until_reconfiguration(self):
        cluster = quick_cluster(3, seed=42)
        assert cluster.run_until_converged(timeout=800)
        joiner = cluster.add_joiner(77)
        assert cluster.run_until(lambda: joiner.scheme.is_participant(), timeout=2500)
        # A participant, but not a member of the (unchanged) configuration.
        assert not joiner.scheme.is_member()
        assert 77 not in cluster.agreed_configuration()

    def test_admission_policy_denies_join(self):
        cluster = quick_cluster(3, seed=43, admission_policy=lambda joiner: False)
        assert cluster.run_until_converged(timeout=800)
        joiner = cluster.add_joiner(88)
        cluster.run(until=cluster.simulator.now + 250)
        assert not joiner.scheme.is_participant()
        assert joiner.joining.join_requests_sent > 0

    def test_state_transfer_to_joiner(self):
        cluster = quick_cluster(3, seed=44)
        # Members expose an application state through the joining interface.
        for pid, node in cluster.nodes.items():
            node.joining.state_provider = lambda pid=pid: {"snapshot-from": pid}
        assert cluster.run_until_converged(timeout=800)
        joiner = cluster.add_joiner(66)
        received = {}
        joiner.joining.state_initializer = received.update
        assert cluster.run_until(lambda: joiner.scheme.is_participant(), timeout=2500)
        assert received
        assert all(value["snapshot-from"] in cluster.nodes for value in received.values())

    def test_multiple_joiners(self):
        cluster = quick_cluster(3, seed=45)
        assert cluster.run_until_converged(timeout=800)
        joiners = [cluster.add_joiner(pid) for pid in (200, 201, 202)]
        assert cluster.run_until(
            lambda: all(j.scheme.is_participant() for j in joiners), timeout=4000
        )
        assert cluster.run_until_converged(timeout=1000)

    def test_responses_withheld_during_reconfiguration(self):
        cluster = quick_cluster(4, seed=46)
        assert cluster.run_until_converged(timeout=800)
        member = cluster.nodes[0]
        # Force a replacement to be in progress, then ask for a pass.
        assert member.scheme.request_reconfiguration(make_config([0, 1, 2]))
        from repro.core.joining import JoinRequest

        sent = []
        member.joining.send = lambda dest, msg: sent.append((dest, msg))
        member.joining.on_join_request(JoinRequest(sender=99))
        assert sent, "a response must still be sent"
        assert all(not msg.granted for _, msg in sent)
