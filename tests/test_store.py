"""Persistent sweep cache: fingerprints, pickle round-trips, store semantics.

The load-bearing guarantees of the PR 10 cache are pinned here:

* a :class:`~repro.sim.snapshot.SimSnapshot` serialized with ``to_bytes``
  and rebuilt with ``from_bytes`` (what the disk-backed snapshot table does)
  resumes **byte-identical** to a cold, uninterrupted run — for every stack
  profile and three seeds;
* the content-addressed fingerprint is canonical (dict ordering cannot move
  it) and rotates with the source-tree salt, so *any* change under
  ``src/repro`` structurally invalidates every cached row;
* ``certify`` with a store is incremental (hits skip dispatch, refresh
  recomputes) and its deterministic report byte-compares equal across
  cold/warm/refreshed/parallel invocations;
* ddmin shrinking resumes disk-warm prefixes.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass

import pytest

from repro.audit.harness import (
    AuditCase,
    build_cases,
    certify,
    prefix_key,
    prefix_snapshot,
    shrink_case,
)
from repro.audit.store import (
    SweepStore,
    _cached_tree_hash,
    canonical_json,
    deterministic_report,
    fingerprint_cell,
    fingerprint_prefix,
    report_bytes,
    scrub_volatile,
    source_tree_salt,
)
from repro.analysis import probes
from repro.scenarios import (
    ArbitraryStateWorkload,
    ScenarioSpec,
    drive,
    finalize,
    prepare,
    run_scenario,
)
from repro.sim.snapshot import SimSnapshot
from repro.sim.stacks import available_stacks


def _strip_wall(result):
    result = dict(scrub_volatile(result))
    if "window" in result:
        result["window"] = {
            k: v for k, v in result["window"].items() if k != "wall_seconds"
        }
    return result


def _spec(stack: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"storedet:{stack}",
        n=5,
        stack=stack,
        workloads=(ArbitraryStateWorkload(at=20.0, seed=5),),
        horizon=40.0,
        probes=(probes.converged(4_000.0),),
        track_convergence=True,
    )


# ---------------------------------------------------------------------------
# The pinned disk contract: to_bytes -> from_bytes -> resume == cold run
# ---------------------------------------------------------------------------
class TestPickleRoundTrip:
    @pytest.mark.parametrize("stack", sorted(available_stacks()))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_deserialized_continuation_is_byte_identical(self, stack, seed):
        """The snapshot table's exact path: pickle, rebuild, resume —
        the continuation must match a cold run byte-for-byte."""
        spec = _spec(stack)
        cold = run_scenario(spec, seed=seed)

        run = prepare(spec, seed=seed)
        assert not drive(run, stop_before=20.0)
        blob = SimSnapshot.capture(run).to_bytes()
        assert isinstance(blob, bytes) and len(blob) > 0

        restored = SimSnapshot.from_bytes(blob).restore()
        drive(restored)
        warm = finalize(restored)

        assert _strip_wall(warm) == _strip_wall(cold)
        assert canonical_json(_strip_wall(warm)) == canonical_json(_strip_wall(cold))

    def test_round_trip_survives_a_second_generation(self):
        """bytes -> snapshot -> bytes again (a cache copied between
        machines): the continuation still matches the cold run."""
        spec = _spec("bare")
        cold = run_scenario(spec, seed=1)
        run = prepare(spec, seed=1)
        drive(run, stop_before=20.0)
        first = SimSnapshot.capture(run).to_bytes()
        second = SimSnapshot.from_bytes(first).to_bytes()
        restored = SimSnapshot.from_bytes(second).restore()
        drive(restored)
        assert _strip_wall(finalize(restored)) == _strip_wall(cold)


# ---------------------------------------------------------------------------
# Canonical fingerprints
# ---------------------------------------------------------------------------
class _Color(enum.Enum):
    RED = 1
    BLUE = 2


@dataclass(frozen=True)
class _Nested:
    tag: str
    options: tuple


class TestCanonicalFingerprint:
    def test_dict_ordering_cannot_move_the_fingerprint(self):
        a = {"x": 1, "y": {"b": 2, "a": [3, 4]}}
        b = {"y": {"a": [3, 4], "b": 2}, "x": 1}
        assert canonical_json(a) == canonical_json(b)

    def test_distinct_values_distinct_json(self):
        assert canonical_json({"x": 1}) != canonical_json({"x": 2})
        assert canonical_json((1, 2)) == canonical_json([1, 2])
        assert canonical_json({1, 2}) == canonical_json({2, 1})

    def test_dataclasses_and_enums_are_stable(self):
        a = _Nested(tag="t", options=(_Color.RED, _Color.BLUE))
        b = _Nested(tag="t", options=(_Color.RED, _Color.BLUE))
        assert canonical_json(a) == canonical_json(b)
        assert canonical_json(a) != canonical_json(
            _Nested(tag="t", options=(_Color.BLUE, _Color.RED))
        )

    def test_cell_fingerprint_covers_case_seed_and_salt(self):
        case = build_cases(schedulers=["uniform"], corruption_seeds=[0])[0]
        other = build_cases(schedulers=["uniform"], corruption_seeds=[1])[0]
        fp = fingerprint_cell(case, 0, "salt-a")
        assert fp == fingerprint_cell(case, 0, "salt-a")
        assert fp != fingerprint_cell(case, 1, "salt-a")
        assert fp != fingerprint_cell(other, 0, "salt-a")
        assert fp != fingerprint_cell(case, 0, "salt-b")

    def test_prefix_fingerprint_rotates_with_salt(self):
        case = build_cases(schedulers=["uniform"], corruption_seeds=[0])[0]
        key = prefix_key(case)
        assert fingerprint_prefix(key, "salt-a") != fingerprint_prefix(key, "salt-b")


class TestSourceTreeSalt:
    def test_salt_rotates_on_any_source_change(self, tmp_path):
        tree = tmp_path / "src"
        tree.mkdir()
        (tree / "a.py").write_text("A = 1\n")
        (tree / "sub").mkdir()
        (tree / "sub" / "b.py").write_text("B = 2\n")
        before = source_tree_salt(tree)
        assert before == source_tree_salt(tree)  # memoized and stable

        (tree / "sub" / "b.py").write_text("B = 3\n")
        _cached_tree_hash.cache_clear()
        after = source_tree_salt(tree)
        assert after != before

        # Adding a brand-new module rotates it too.
        (tree / "c.py").write_text("C = 1\n")
        _cached_tree_hash.cache_clear()
        assert source_tree_salt(tree) not in (before, after)

    def test_salt_ignores_non_python_files(self, tmp_path):
        tree = tmp_path / "src"
        tree.mkdir()
        (tree / "a.py").write_text("A = 1\n")
        before = source_tree_salt(tree)
        (tree / "notes.txt").write_text("irrelevant\n")
        _cached_tree_hash.cache_clear()
        assert source_tree_salt(tree) == before

    def test_repo_salt_is_nonempty_hex(self):
        salt = source_tree_salt()
        assert len(salt) == 16
        int(salt, 16)


# ---------------------------------------------------------------------------
# The store itself
# ---------------------------------------------------------------------------
class TestSweepStore:
    def test_result_round_trip_scrubs_volatile_keys(self, tmp_path):
        entry = {
            "scenario": "case-a",
            "seed": 3,
            "ok": True,
            "wall_seconds": 1.23,
            "worker_pid": 4242,
            "statistics": {"executed_events": 10, "wall_seconds": 0.5},
        }
        with SweepStore(tmp_path / "cache") as store:
            store.put_result("fp-1", "case-a", 3, entry, "salt-a")
            got = store.get_result("fp-1")
        assert got is not None
        assert "wall_seconds" not in got and "worker_pid" not in got
        assert "wall_seconds" not in got["statistics"]
        assert got["statistics"]["executed_events"] == 10
        assert got["ok"] is True

    def test_rows_persist_across_reopen(self, tmp_path):
        directory = tmp_path / "cache"
        with SweepStore(directory) as store:
            store.put_result("fp-1", "case-a", 0, {"scenario": "case-a", "seed": 0}, "s")
        with SweepStore(directory) as store:
            assert store.get_result("fp-1") is not None
            assert store.get_result("fp-missing") is None

    def test_snapshot_round_trip_through_sqlite(self, tmp_path):
        spec = _spec("bare")
        cold = run_scenario(spec, seed=0)
        run = prepare(spec, seed=0)
        drive(run, stop_before=20.0)
        snapshot = SimSnapshot.capture(run)
        with SweepStore(tmp_path / "cache") as store:
            store.put_snapshot("prefix-1", 0, snapshot, "salt-a")
            assert store.get_snapshot("prefix-1", 1) is None
            loaded = store.get_snapshot("prefix-1", 0)
        restored = loaded.restore()
        drive(restored)
        assert _strip_wall(finalize(restored)) == _strip_wall(cold)

    def test_stats_and_prune_track_stale_salts(self, tmp_path):
        with SweepStore(tmp_path / "cache") as store:
            store.put_result("fp-old", "a", 0, {"scenario": "a", "seed": 0}, "old-salt")
            store.put_result("fp-new", "a", 1, {"scenario": "a", "seed": 1}, "new-salt")
            stats = store.stats("new-salt")
            assert stats["results"] == 2
            assert stats["stale_results"] == 1
            assert sorted(stats["salts"]) == ["new-salt", "old-salt"]
            removed = store.prune("new-salt")
            assert removed["results"] == 1
            after = store.stats("new-salt")
            assert after["results"] == 1 and after["stale_results"] == 0
            assert store.get_result("fp-old") is None
            assert store.get_result("fp-new") is not None


# ---------------------------------------------------------------------------
# certify() against the store
# ---------------------------------------------------------------------------
def _cases():
    return build_cases(schedulers=["uniform"], corruption_seeds=[0, 1])


class TestCertifyWithStore:
    def test_warm_rerun_is_fully_cached_and_byte_identical(self, tmp_path):
        with SweepStore(tmp_path / "cache") as store:
            cold = certify(_cases(), seeds=[0, 1], store=store)
            warm = certify(_cases(), seeds=[0, 1], store=store)
        assert cold["meta"]["cache"]["hits"] == 0
        assert cold["meta"]["cache"]["misses"] == 4
        assert warm["meta"]["cache"]["hits"] == 4
        assert warm["meta"]["cache"]["misses"] == 0
        assert warm["meta"]["cache"]["hit_rate"] == 1.0
        assert warm["meta"]["sweep"].get("fully_cached") is True
        assert report_bytes(warm) == report_bytes(cold)

    def test_cached_report_matches_storeless_run(self, tmp_path):
        with SweepStore(tmp_path / "cache") as store:
            certify(_cases(), seeds=[0], store=store)
            warm = certify(_cases(), seeds=[0], store=store)
        plain = certify(_cases(), seeds=[0])
        assert plain["meta"]["cache"] == {"enabled": False}
        assert report_bytes(warm) == report_bytes(plain)

    def test_refresh_recomputes_but_matches(self, tmp_path):
        with SweepStore(tmp_path / "cache") as store:
            cold = certify(_cases(), seeds=[0, 1], store=store)
            refreshed = certify(_cases(), seeds=[0, 1], store=store, refresh=True)
        assert refreshed["meta"]["cache"]["refreshed"] is True
        assert refreshed["meta"]["cache"]["hits"] == 0
        assert refreshed["meta"]["cache"]["misses"] == 4
        assert report_bytes(refreshed) == report_bytes(cold)

    def test_partial_miss_dispatches_only_new_cells(self, tmp_path):
        with SweepStore(tmp_path / "cache") as store:
            certify(_cases(), seeds=[0], store=store)
            grown = certify(_cases(), seeds=[0, 1], store=store)
        cache = grown["meta"]["cache"]
        assert cache["hits"] == 2 and cache["misses"] == 2
        assert grown["meta"]["runs"] == 4
        # Every cell is present exactly once despite the mixed origin.
        cells = [(v["case"], v["seed"]) for v in grown["verdicts"]]
        assert len(cells) == len(set(cells)) == 4

    def test_disk_warm_prefix_is_resumed_for_new_cells(self, tmp_path):
        # Corruption seeds share a pre-corruption prefix; certifying c0
        # persists the prefix snapshot, so certifying c2/c3 later must
        # resume it from disk instead of re-bootstrapping.
        with SweepStore(tmp_path / "cache") as store:
            first = certify(
                build_cases(schedulers=["uniform"], corruption_seeds=[0, 1]),
                seeds=[0],
                store=store,
            )
            assert first["meta"]["cache"]["snapshots_written"] == 1
            second = certify(
                build_cases(schedulers=["uniform"], corruption_seeds=[2, 3]),
                seeds=[0],
                store=store,
            )
        cache = second["meta"]["cache"]
        assert cache["misses"] == 2
        assert cache["snapshot_hits"] == 1
        assert cache["snapshots_written"] == 0
        assert second["certified"]

    def test_salt_rotation_invalidates_every_cell(self, tmp_path, monkeypatch):
        import repro.audit.harness as harness_mod

        with SweepStore(tmp_path / "cache") as store:
            certify(_cases(), seeds=[0], store=store)
            monkeypatch.setattr(
                harness_mod, "source_tree_salt", lambda: "0123456789abcdef"
            )
            rotated = certify(_cases(), seeds=[0], store=store)
            cache = rotated["meta"]["cache"]
            assert cache["salt"] == "0123456789abcdef"
            assert cache["hits"] == 0 and cache["misses"] == 2
            # The old rows are still on disk, reported as stale.
            assert cache["stale_results"] == 2
            assert store.stats("0123456789abcdef")["stale_snapshots"] == 1

    def test_error_entries_are_never_cached(self, tmp_path):
        with SweepStore(tmp_path / "cache") as store:
            entry = {"scenario": "x", "seed": 0, "error": "worker died"}
            fingerprint = "fp-err"
            # certify() skips error write-backs; pin the store-level contract
            # the skip relies on: nothing else writes the row.
            assert store.get_result(fingerprint) is None
            store.put_result(fingerprint, "x", 0, entry, "s")  # direct write OK
            assert store.get_result(fingerprint)["error"] == "worker died"


# ---------------------------------------------------------------------------
# Deterministic report surface (satellite: sweeps byte-compare equal)
# ---------------------------------------------------------------------------
class TestDeterministicReport:
    def test_two_cold_runs_byte_compare_equal(self):
        cases = _cases()
        serial = certify(cases, seeds=[0, 1], workers=1)
        parallel = certify(cases, seeds=[0, 1], workers=2)
        assert report_bytes(serial) == report_bytes(parallel)

    def test_projection_drops_scheduling_meta_only(self):
        report = certify(_cases(), seeds=[0])
        det = deterministic_report(report)
        assert "wall_seconds" not in json.dumps(det)
        assert "worker_pid" not in json.dumps(det)
        for key in ("sweep", "workers", "cache", "prefix_reuse"):
            assert key not in det["meta"]
        assert det["certified"] == report["certified"]
        assert len(det["verdicts"]) == len(report["verdicts"])
        assert det["meta"]["runs"] == report["meta"]["runs"]


# ---------------------------------------------------------------------------
# Shrinking against the store
# ---------------------------------------------------------------------------
class TestShrinkWithStore:
    def _failing_case(self):
        return AuditCase(
            scheduler="uniform",
            corruption_seed=0,
            invariants=(probes.no_reset_invariant(),),
        )

    def test_shrink_resumes_disk_warm_prefix(self, tmp_path):
        case = self._failing_case()
        cold = shrink_case(case, seed=0)
        with SweepStore(tmp_path / "cache") as store:
            first = shrink_case(case, seed=0, store=store)
            # The first call wrote the prefix snapshot; the second resumes it.
            assert (
                store.get_snapshot(fingerprint_prefix(prefix_key(case)), 0)
                is not None
            )
            second = shrink_case(case, seed=0, store=store)
        for warm in (first, second):
            assert warm["still_fails"] == cold["still_fails"]
            assert warm["minimal_size"] == cold["minimal_size"]
            assert warm["atoms"] == cold["atoms"]
            assert warm["trials"] == cold["trials"]
