"""Tests for the Reconfiguration Stability Assurance layer (Algorithm 3.1).

Unit tests drive :class:`RecSA` instances over the synchronous
:class:`~tests.conftest.LocalBus`; integration tests use the full simulated
cluster (unreliable channels, failure detectors, the works).
"""

from __future__ import annotations

import pytest

from repro.common.types import (
    BOTTOM,
    DEFAULT_PROPOSAL,
    NOT_PARTICIPANT,
    Phase,
    Proposal,
    make_config,
)
from repro.core.stale import StaleInfoType, classify_stale_information
from repro.workloads.corruption import corrupt_recsa_state, scramble_cluster

from tests.conftest import RecSAHarness, quick_cluster


class TestStaleClassification:
    def _classify(self, harness: RecSAHarness, pid=1):
        inst = harness[pid]
        trusted = inst.trusted()
        return classify_stale_information(
            own=pid,
            configs=inst.config,
            proposals=inst.prp,
            fd_views=inst.fd,
            own_view=trusted,
            trusted=trusted,
            participants=inst.participants(trusted),
        )

    def test_clean_state_has_no_stale_info(self):
        harness = RecSAHarness([1, 2, 3], initial_config=make_config([1, 2, 3]))
        harness.round(3)
        assert self._classify(harness) == []

    def test_type1_detected(self):
        harness = RecSAHarness([1, 2, 3], initial_config=make_config([1, 2, 3]))
        harness.round(3)
        harness[1].prp[2] = Proposal(Phase.IDLE, make_config([1]))
        assert StaleInfoType.TYPE_1 in self._classify(harness)

    def test_config_conflict_is_not_type2_but_is_detected_separately(self):
        from repro.core.stale import has_config_conflict

        harness = RecSAHarness([1, 2, 3], initial_config=make_config([1, 2, 3]))
        harness.round(3)
        harness[1].config[2] = make_config([1, 2])
        # Conflicts are handled by the no-notification branch, not the
        # always-on classification (see stale.has_type2 docstring).
        assert StaleInfoType.TYPE_2 not in self._classify(harness)
        assert has_config_conflict(harness[1].config, harness[1].trusted())

    def test_type2_bottom_detected(self):
        harness = RecSAHarness([1, 2, 3], initial_config=make_config([1, 2, 3]))
        harness.round(3)
        harness[1].config[3] = BOTTOM
        assert StaleInfoType.TYPE_2 in self._classify(harness)

    def test_type3_phase2_disagreement_detected(self):
        harness = RecSAHarness([1, 2, 3], initial_config=make_config([1, 2, 3]))
        harness.round(3)
        harness[1].prp[2] = Proposal(Phase.REPLACE, make_config([1, 2]))
        harness[1].prp[3] = Proposal(Phase.REPLACE, make_config([2, 3]))
        assert StaleInfoType.TYPE_3 in self._classify(harness)

    def test_type4_no_active_member_detected(self):
        # A configuration containing no active participant is type-4 stale
        # information: the instances detect it and start a reset.
        harness = RecSAHarness([1, 2, 3], initial_config=make_config([7, 8, 9]))
        harness.round(2)
        assert any(
            harness[p].stale_detections[StaleInfoType.TYPE_4] > 0 for p in harness.pids
        )

    def test_type4_recovers_to_participant_based_configuration(self):
        harness = RecSAHarness([1, 2, 3], initial_config=make_config([7, 8, 9]))
        assert harness.run_until(
            lambda: harness.converged()
            and set(harness.configs().values()) == {make_config([1, 2, 3])}
        )


class TestRecSAUnit:
    def test_bootstrap_from_bottom_converges_to_fd_set(self, recsa_harness):
        assert recsa_harness.run_until(recsa_harness.converged)
        configs = set(recsa_harness.configs().values())
        assert configs == {make_config([1, 2, 3])}

    def test_coherent_start_is_stable(self):
        harness = RecSAHarness([1, 2, 3], initial_config=make_config([1, 2, 3]))
        harness.round(5)
        assert harness.converged()
        assert all(harness[p].reset_count == 0 for p in harness.pids)

    def test_conflicting_configs_trigger_reset_and_reconverge(self):
        harness = RecSAHarness([1, 2, 3], initial_config=make_config([1, 2, 3]))
        harness.round(3)
        harness[1].config[1] = make_config([1])
        assert harness.run_until(harness.converged)
        assert any(harness[p].reset_count > 0 for p in harness.pids)
        assert set(harness.configs().values()) == {make_config([1, 2, 3])}

    def test_estab_rejected_when_not_stable(self):
        harness = RecSAHarness([1, 2, 3])
        # Before convergence a reset is in progress, so estab must refuse.
        assert not harness[1].estab([1, 2])
        assert harness[1].estab_rejected == 1

    def test_estab_rejected_for_current_config_or_empty(self):
        harness = RecSAHarness([1, 2, 3], initial_config=make_config([1, 2, 3]))
        harness.round(5)
        assert not harness[1].estab([])
        assert not harness[1].estab([1, 2, 3])

    def test_estab_installs_proposed_configuration(self):
        harness = RecSAHarness([1, 2, 3], initial_config=make_config([1, 2, 3]))
        harness.round(5)
        assert harness[1].estab([1, 2])
        assert harness.run_until(
            lambda: set(harness.configs().values()) == {make_config([1, 2])}
            and harness.converged()
        )
        assert all(harness[p].install_count >= 1 for p in harness.pids)

    def test_concurrent_estabs_select_single_configuration(self):
        harness = RecSAHarness([1, 2, 3], initial_config=make_config([1, 2, 3]))
        harness.round(5)
        assert harness[1].estab([1, 2])
        assert harness[2].estab([2, 3])  # has not yet seen 1's proposal
        assert harness.run_until(harness.converged)
        configs = set(harness.configs().values())
        assert len(configs) == 1
        # The lexically larger proposal wins the selection.
        assert configs == {make_config([2, 3])}

    def test_no_reco_false_during_replacement(self):
        harness = RecSAHarness([1, 2, 3], initial_config=make_config([1, 2, 3]))
        harness.round(5)
        harness[1].estab([1, 2])
        harness.round(1)
        assert not harness[1].no_reco()

    def test_estab_rejected_while_replacement_in_progress(self):
        harness = RecSAHarness([1, 2, 3], initial_config=make_config([1, 2, 3]))
        harness.round(5)
        assert harness[1].estab([1, 2])
        harness.round(2)
        assert not harness[2].estab([2, 3])

    def test_participate_on_complete_collapse_starts_reset(self):
        # A joiner facing a complete collapse (no participant holds a real
        # configuration) adopts ⊥, which starts the brute-force recovery.
        harness = RecSAHarness([1, 2, 3], initial_config=None)
        joiner = harness[1]
        assert joiner.participate()
        assert joiner.config[1] is BOTTOM
        assert not joiner.no_reco()

    def test_participate_refused_during_replacement(self):
        harness = RecSAHarness([1, 2, 3], initial_config=make_config([1, 2, 3]))
        harness.round(5)
        harness[2].estab([1, 2])
        harness.round(1)
        joiner = harness[3]
        joiner.config[3] = NOT_PARTICIPANT
        assert not joiner.participate()

    def test_non_participant_does_not_broadcast(self):
        harness = RecSAHarness([1, 2], initial_config=make_config([1, 2]))
        harness.round(3)
        bus_before = dict(harness.bus.queues)
        harness[1].config[1] = NOT_PARTICIPANT
        harness[1].step()
        sent = sum(len(v) for v in harness.bus.queues.values()) - sum(
            len(v) for v in bus_before.values()
        )
        assert sent == 0

    def test_crash_of_member_keeps_config_stable(self):
        harness = RecSAHarness([1, 2, 3, 4, 5], initial_config=make_config([1, 2, 3, 4, 5]))
        harness.round(5)
        harness.crash(5)
        assert harness.run_until(harness.converged)
        # The configuration itself is untouched by a minority crash.
        assert set(harness.configs().values()) == {make_config([1, 2, 3, 4, 5])}

    def test_get_config_returns_bottom_during_reset(self):
        harness = RecSAHarness([1, 2, 3])
        harness[1].step()
        assert harness[1].get_config() in (BOTTOM, make_config([1, 2, 3]))

    def test_chs_config_returns_bottom_when_no_values(self):
        harness = RecSAHarness([1, 2], initial_config=None)
        assert harness[1].chs_config() is BOTTOM

    def test_arbitrary_corruption_recovers(self):
        harness = RecSAHarness([1, 2, 3, 4], initial_config=make_config([1, 2, 3, 4]))
        harness.round(5)
        # Arbitrary garbage in every array of processor 1 and 3.
        harness[1].config[1] = frozenset()
        harness[1].prp[2] = Proposal(Phase.REPLACE, make_config([9]))
        harness[3].prp[3] = Proposal(Phase.SELECT, make_config([1, 9]))
        harness[3].all_flags[3] = True
        assert harness.run_until(harness.converged, max_rounds=300)
        values = set(harness.configs().values())
        assert len(values) == 1


class TestRecSACluster:
    def test_self_bootstrap_converges(self):
        cluster = quick_cluster(5, seed=21)
        assert cluster.run_until_converged(timeout=800)
        config = cluster.agreed_configuration()
        assert config == make_config(range(5))
        assert cluster.all_nodes_participating()

    def test_coherent_start_converges_without_resets(self):
        cluster = quick_cluster(4, seed=22, coherent_start=True)
        assert cluster.run_until_converged(timeout=800)
        assert sum(node.recsa.reset_count for node in cluster.nodes.values()) == 0

    def test_convergence_from_scrambled_state(self):
        cluster = quick_cluster(5, seed=23)
        assert cluster.run_until_converged(timeout=800)
        report = scramble_cluster(cluster, seed=99)
        assert report["recsa_fields"] > 0
        assert cluster.run_until_converged(timeout=4000)
        config = cluster.agreed_configuration()
        assert config is not None and len(config) >= 1

    def test_single_node_corruption_recovers(self):
        cluster = quick_cluster(4, seed=24)
        assert cluster.run_until_converged(timeout=800)
        corrupt_recsa_state(cluster.nodes[0], universe=list(range(4)), seed=7)
        assert cluster.run_until_converged(timeout=4000)

    def test_explicit_estab_through_scheme(self):
        cluster = quick_cluster(4, seed=25)
        assert cluster.run_until_converged(timeout=800)
        node = cluster.nodes[0]
        target = make_config([0, 1, 2])
        assert node.scheme.request_reconfiguration(target)
        assert cluster.run_until(
            lambda: cluster.agreed_configuration() == target and cluster.is_converged(),
            timeout=2500,
        )

    def test_closure_no_spurious_reconfigurations(self):
        """After convergence and with no faults, the configuration never changes."""
        cluster = quick_cluster(4, seed=26)
        assert cluster.run_until_converged(timeout=800)
        config = cluster.agreed_configuration()
        installs_before = sum(node.recsa.install_count for node in cluster.nodes.values())
        resets_before = sum(node.recsa.reset_count for node in cluster.nodes.values())
        cluster.run(until=cluster.simulator.now + 200)
        assert cluster.agreed_configuration() == config
        assert sum(node.recsa.install_count for node in cluster.nodes.values()) == installs_before
        assert sum(node.recsa.reset_count for node in cluster.nodes.values()) == resets_before


class TestChangeDetectedGossip:
    """The line-29 broadcast fast path: skip peers that echoed the current
    state, refresh unconditionally every K rounds (self-stabilization guard)."""

    def test_steady_state_broadcasts_are_skipped(self):
        harness = RecSAHarness([1, 2, 3], initial_config=make_config([1, 2, 3]))
        harness.round(5)  # reach echo-confirmed steady state
        sent_before = {p: harness[p].broadcasts_sent for p in harness.pids}
        harness.round(3)  # K=5 default: three quiet rounds inside the window
        skipped = sum(harness[p].broadcasts_skipped for p in harness.pids)
        assert skipped > 0
        # At least one node skipped every peer for at least one whole round.
        assert any(
            harness[p].broadcasts_sent - sent_before[p] < 3 * 2 for p in harness.pids
        )

    def test_periodic_refresh_always_resends(self):
        harness = RecSAHarness([1, 2, 3], initial_config=make_config([1, 2, 3]))
        refresh = harness[1].gossip_refresh_interval
        harness.round(refresh * 4)
        sent_in_window = {p: harness[p].broadcasts_sent for p in harness.pids}
        harness.round(refresh)
        # Within any full refresh window every node re-sends to every peer at
        # least once, no matter how quiet the state is.
        for p in harness.pids:
            assert harness[p].broadcasts_sent - sent_in_window[p] >= 2

    def test_state_change_triggers_immediate_rebroadcast(self):
        harness = RecSAHarness([1, 2, 3], initial_config=make_config([1, 2, 3]))
        harness.round(6)
        sent_before = harness[1].broadcasts_sent
        assert harness[1].estab([1, 2])
        harness[1].step()  # estab changed prp: the next broadcast must flow
        assert harness[1].broadcasts_sent >= sent_before + 2

    def test_refresh_interval_one_disables_skipping(self):
        bus_pids = [1, 2, 3]
        from tests.conftest import LocalBus
        from repro.core.recsa import RecSA

        bus = LocalBus()
        instances = {}
        for pid in bus_pids:
            inst = RecSA(
                pid=pid,
                fd_provider=lambda: frozenset(bus_pids),
                send=bus.sender_for(pid),
                initial_config=make_config(bus_pids),
                gossip_refresh_interval=1,
            )
            instances[pid] = inst
            bus.register(pid, inst.dispatch)
        for _ in range(8):
            for pid in bus_pids:
                instances[pid].step()
            bus.deliver_all()
        assert all(inst.broadcasts_skipped == 0 for inst in instances.values())
        assert all(inst.broadcasts_sent == 8 * 2 for inst in instances.values())

    def test_corrupted_peer_repaired_within_refresh_window(self):
        """A peer whose received state is corrupted mid-quiet-period recovers
        even though its neighbours were skipping broadcasts to it."""
        harness = RecSAHarness([1, 2, 3], initial_config=make_config([1, 2, 3]))
        harness.round(6)
        assert harness.converged()
        # Corrupt node 1's copy of node 2's state while the system is quiet.
        harness[1].config[2] = BOTTOM
        refresh = harness[1].gossip_refresh_interval
        assert harness.run_until(
            lambda: harness.converged()
            and set(harness.configs().values()) == {make_config([1, 2, 3])},
            max_rounds=refresh * 6,
        )

    def test_convergence_unaffected_by_gossip_skipping(self):
        """Bootstrap from BOTTOM must converge to the same configuration with
        and without change detection (the skip guard never hides progress)."""
        configs = {}
        for refresh in (1, 5):
            cluster = quick_cluster(4, seed=42, gossip_refresh_interval=refresh)
            assert cluster.run_until_converged(timeout=800)
            configs[refresh] = cluster.agreed_configuration()
        assert configs[1] == configs[5]

    def test_skipping_reduces_cluster_traffic(self):
        delivered = {}
        for refresh in (1, 5):
            cluster = quick_cluster(6, seed=43, gossip_refresh_interval=refresh)
            assert cluster.run_until_converged(timeout=800)
            cluster.run(until=cluster.simulator.now + 100)
            delivered[refresh] = cluster.statistics()["delivered_messages"]
        assert delivered[5] < delivered[1]
