"""Tests for the adversarial audit engine and this PR's bugfixes.

Covers the timeout-budget semantics of ``Cluster.run_until`` (regression:
probes issued after ``now > 2000`` used to time out instantly), the
interval-based violation recording of :class:`InvariantMonitor`, the
``run_matrix`` worker-collection hardening, the arbitrary-state generator's
determinism and closure, the adversarial schedulers, and the certification
harness with reproducer shrinking.
"""

from __future__ import annotations

import pytest

from repro.analysis import probes
from repro.analysis.probes import wait_for
from repro.audit.arbitrary_state import (
    CorruptionProfile,
    apply_plan,
    generate_plan,
    plan_summary,
)
from repro.audit.harness import AuditCase, build_cases, certify, run_case, shrink_case
from repro.audit.schedulers import available_schedulers, get_scheduler
from repro.scenarios import ArbitraryStateWorkload, ScenarioSpec, run_scenario
from repro.scenarios.runner import _unfinished_jobs, prepare
from repro.sim.cluster import build_cluster
from repro.sim.faults import CorruptionAtom, FaultInjector
from repro.sim.monitors import InvariantMonitor
from repro.sim.network import ChannelConfig
from repro.sim.simulator import Simulator

from tests.conftest import quick_cluster


# ---------------------------------------------------------------------------
# Bugfix: cluster-level timeouts are budgets, not absolute deadlines
# ---------------------------------------------------------------------------
class TestTimeoutBudget:
    def test_run_until_gets_full_budget_past_2000(self):
        cluster = quick_cluster(3)
        assert cluster.run_until_converged(timeout=800)
        # Drive the clock well past the old default deadline of 2000.
        cluster.run(until=2_500)
        assert cluster.simulator.now >= 2_500
        target = cluster.simulator.now + 3.0
        # Before the fix this timed out instantly (2000 < now).
        assert cluster.run_until(
            lambda: cluster.simulator.now >= target, timeout=2_000
        )

    def test_run_until_converged_after_late_disturbance(self):
        cluster = quick_cluster(4, seed=3)
        assert cluster.run_until_converged(timeout=800)
        cluster.run(until=2_200)
        plan = generate_plan(cluster, seed=7)
        apply_plan(cluster, plan)
        # Re-convergence issued at now > 2000 must still get its full budget.
        assert cluster.run_until_converged()  # default timeout=2000 budget
        assert cluster.is_converged()

    def test_probe_budget_is_relative_to_now(self):
        cluster = quick_cluster(3, seed=5)
        assert cluster.run_until_converged(timeout=800)
        cluster.run(until=2_100)
        outcome = wait_for(cluster, probes.converged(500))
        assert outcome.satisfied
        # An unsatisfiable probe consumes (roughly) its budget, not zero.
        start = cluster.simulator.now
        outcome = wait_for(cluster, probes.Probe("never", lambda c: False, 50.0))
        assert not outcome.satisfied
        assert outcome.time >= start

    def test_simulator_run_until_stays_absolute(self):
        sim = Simulator(seed=1)
        sim.now = 10.0
        # Deadline already in the past: returns the predicate's value now.
        assert not sim.run_until(lambda: False, timeout=5.0)


# ---------------------------------------------------------------------------
# Bugfix: interval-based violation recording
# ---------------------------------------------------------------------------
class _Ticker:
    """Schedules itself every time unit so post-step hooks keep firing."""

    def __init__(self, simulator: Simulator, until: float) -> None:
        self.simulator = simulator
        self.until = until
        self._tick()

    def _tick(self) -> None:
        if self.simulator.now < self.until:
            self.simulator.call_later(1.0, self._tick, label="tick")


class TestViolationIntervals:
    def test_single_interval_for_contiguous_violation(self):
        sim = Simulator(seed=1)
        _Ticker(sim, until=50.0)
        monitor = InvariantMonitor(sim)
        monitor.add_invariant("window", lambda: not (10.0 <= sim.now <= 20.0))
        sim.run(until=50.0)
        assert not monitor.ok()
        intervals = monitor.violated("window")
        assert len(intervals) == 1
        interval = intervals[0]
        assert interval.time >= 10.0
        assert interval.last_time <= 20.0
        assert interval.count > 1  # many steps, one record

    def test_memory_is_per_interval_not_per_step(self):
        sim = Simulator(seed=1)
        _Ticker(sim, until=500.0)
        monitor = InvariantMonitor(sim)
        monitor.add_invariant("always-false", lambda: False)
        sim.run(until=500.0)
        assert len(monitor.violations) == 1
        assert monitor.violations[0].count >= 500

    def test_flapping_predicate_records_one_interval_per_flap(self):
        sim = Simulator(seed=1)
        _Ticker(sim, until=40.0)
        monitor = InvariantMonitor(sim)
        # False during [5, 10] and [25, 30]: two intervals.
        monitor.add_invariant(
            "two-windows",
            lambda: not (5.0 <= sim.now <= 10.0 or 25.0 <= sim.now <= 30.0),
        )
        sim.run(until=40.0)
        assert len(monitor.violated("two-windows")) == 2

    def test_violated_filters_and_ok(self):
        sim = Simulator(seed=1)
        _Ticker(sim, until=10.0)
        monitor = InvariantMonitor(sim)
        monitor.add_invariant("good", lambda: True)
        monitor.add_invariant("bad", lambda: False)
        sim.run(until=10.0)
        assert not monitor.ok()
        assert monitor.violated("good") == []
        assert len(monitor.violated("bad")) == 1
        assert monitor.summary()["intervals"][0]["name"] == "bad"

    def test_strict_mode_still_raises(self):
        from repro.common.errors import InvariantViolation

        sim = Simulator(seed=1)
        _Ticker(sim, until=10.0)
        monitor = InvariantMonitor(sim, strict=True)
        monitor.add_invariant("never", lambda: False)
        with pytest.raises(InvariantViolation):
            sim.run(until=10.0)


# ---------------------------------------------------------------------------
# Bugfix: run_matrix worker collection
# ---------------------------------------------------------------------------
class TestMatrixCollection:
    def test_unfinished_jobs_names_missing_pairs(self):
        jobs = [("a", 0), ("a", 1), ("b", 0)]
        results = [{"scenario": "a", "seed": 0}, {"scenario": "b", "seed": 0}]
        assert _unfinished_jobs(jobs, results) == [("a", 1)]

    def test_unfinished_jobs_empty_when_all_collected(self):
        jobs = [("a", 0)]
        assert _unfinished_jobs(jobs, [{"scenario": "a", "seed": 0}]) == []


# ---------------------------------------------------------------------------
# Arbitrary-state generator
# ---------------------------------------------------------------------------
class TestArbitraryState:
    def _converged_cluster(self, seed: int = 2):
        cluster = quick_cluster(4, seed=seed, stack="counters")
        assert cluster.run_until_converged(timeout=800)
        return cluster

    def test_plan_is_deterministic(self):
        plan_a = generate_plan(self._converged_cluster(), seed=11)
        plan_b = generate_plan(self._converged_cluster(), seed=11)
        assert plan_a == plan_b
        assert generate_plan(self._converged_cluster(), seed=12) != plan_a

    def test_plan_covers_every_layer(self):
        plan = generate_plan(
            self._converged_cluster(),
            seed=3,
            profile=CorruptionProfile(field_probability=0.9, channel_fraction=0.9),
        )
        paths = {atom.path for atom in plan if atom.kind != "channel"}
        assert ("recsa", "config") in paths
        assert ("recsa", "prp") in paths
        assert ("recma", "no_maj") in paths
        assert ("failure_detector", "counts") in paths
        assert any(p and p[0].startswith("service:") for p in paths)
        summary = plan_summary(plan)
        assert summary.get("channel", 0) > 0

    def test_anchor_keeps_one_participant(self):
        # Even at maximal intensity, the lowest selected pid's own config
        # entry is never corrupted to NOT_PARTICIPANT (the joining
        # mechanism needs at least one configuration member alive).
        from repro.common.types import NOT_PARTICIPANT

        for seed in range(10):
            cluster = self._converged_cluster()
            plan = generate_plan(
                cluster, seed=seed, profile=CorruptionProfile(field_probability=1.0)
            )
            own_entries = {
                atom.key: atom.value
                for atom in plan
                if atom.kind == "entry"
                and atom.path == ("recsa", "config")
                and atom.key == atom.pid
            }
            anchor = min(own_entries)
            assert own_entries[anchor] is not NOT_PARTICIPANT

    def test_closure_after_full_corruption(self):
        # The paper's headline claim: convergence from the arbitrary state.
        cluster = self._converged_cluster(seed=9)
        plan = generate_plan(cluster, seed=4)
        report = apply_plan(cluster, plan)
        assert report["applied"] > 0
        assert cluster.run_until_converged(timeout=6_000)

    def test_atoms_recorded_by_injector(self):
        cluster = self._converged_cluster()
        injector = FaultInjector(cluster.simulator)
        plan = generate_plan(cluster, seed=5)
        apply_plan(cluster, plan, injector=injector)
        assert len(injector.records) > 0

    def test_channel_stuffing_bounded_by_capacity(self):
        cluster = self._converged_cluster()
        plan = [
            CorruptionAtom(kind="channel", pid=0, key=1, value=f"stale-{i}")
            for i in range(50)
        ]
        report = apply_plan(cluster, plan)
        capacity = cluster.config.channel.capacity
        assert report["applied"] <= capacity
        assert report["skipped"] >= 50 - capacity

    def test_atom_on_missing_service_is_skipped(self):
        cluster = quick_cluster(3)  # bare stack: no "vs" service
        atom = CorruptionAtom(
            kind="attr", pid=0, path=("service:vs",), key="rnd", value=7
        )
        report = apply_plan(cluster, [atom])
        assert report == {"applied": 0, "skipped": 1}


# ---------------------------------------------------------------------------
# Adversarial schedulers
# ---------------------------------------------------------------------------
class TestSchedulers:
    def test_registry_contains_all_five(self):
        assert set(available_schedulers()) >= {
            "uniform",
            "delay_skew",
            "reorder_heavy",
            "burst_delivery",
            "slow_node",
        }
        with pytest.raises(KeyError, match="unknown scheduler"):
            get_scheduler("quantum_foam")

    def test_delay_skew_installs_per_pair_overrides(self):
        cluster = quick_cluster(3, seed=8)
        get_scheduler("delay_skew").install(cluster)
        network = cluster.simulator.network
        configs = {
            (s, d): network.channel(s, d).config
            for s in range(3)
            for d in range(3)
            if s != d
        }
        delays = {cfg.max_delay for cfg in configs.values()}
        assert len(delays) > 1  # heterogeneous per-link delays

    def test_burst_delivery_aligns_arrival_instants(self):
        # Packets sent at *different* times must land on quantum boundaries,
        # so a window's traffic arrives together as one burst.
        config = ChannelConfig(min_delay=0.2, max_delay=0.9, delay_quantum=2.0)
        sim = Simulator(seed=1, channel_config=config)

        class _Sink:
            def __init__(self):
                self.arrivals = []

        from repro.sim.process import Process

        class _Node(Process):
            def __init__(self, pid, sink):
                super().__init__(pid=pid, step_interval=1000.0)
                self.sink = sink

            def on_receive(self, sender, payload):
                self.sink.arrivals.append(self.context.simulator.now)

        sink = _Sink()
        sim.add_process(_Node(0, sink))
        sim.add_process(_Node(1, sink))
        for send_at in (0.1, 0.7, 1.3, 2.9, 3.4):
            sim.call_at(send_at, lambda: sim.send(0, 1, "burst"), label="send")
        sim.run(until=10.0)
        assert len(sink.arrivals) == 5
        for time in sink.arrivals:
            assert abs(time / 2.0 - round(time / 2.0)) < 1e-9
        # The first window's sends (0.1, 0.7, 1.3) collapse into one burst.
        assert sink.arrivals.count(2.0) == 3

    def test_scheduler_install_is_seeded(self):
        a = quick_cluster(4, seed=13)
        b = quick_cluster(4, seed=13)
        for cluster in (a, b):
            get_scheduler("slow_node").install(cluster)
        net_a, net_b = a.simulator.network, b.simulator.network
        for s in range(4):
            for d in range(4):
                if s != d:
                    assert (
                        net_a.channel(s, d).config.max_delay
                        == net_b.channel(s, d).config.max_delay
                    )

    def test_spec_scheduler_field_applies(self):
        spec = ScenarioSpec(
            name="sched_field", n=3, scheduler="reorder_heavy", require_bootstrap=False
        )
        run = prepare(spec, seed=0)
        chan = run.cluster.simulator.network.channel(0, 1)
        base = run.cluster.config.channel
        assert chan.config.max_delay == pytest.approx(base.max_delay * 8.0)
        with pytest.raises(KeyError, match="unknown scheduler"):
            prepare(spec.with_overrides(scheduler="nope"), seed=0)


# ---------------------------------------------------------------------------
# Certification harness + shrinking
# ---------------------------------------------------------------------------
class TestAuditHarness:
    def test_case_runs_and_certifies(self):
        case = AuditCase(scheduler="uniform", corruption_seed=0)
        result = run_case(case, seed=0)
        assert result["ok"]
        assert result["convergence"]["converged"]
        reports = result["workload_reports"]
        assert reports[0]["workload"] == "arbitrary_state"
        assert reports[0]["atoms_total"] > 0

    def test_same_seed_identical_corruption_and_verdict(self):
        case = AuditCase(scheduler="delay_skew", corruption_seed=1)
        first = run_case(case, seed=3)
        second = run_case(case, seed=3)
        assert first["workload_reports"] == second["workload_reports"]
        assert first["statistics"] == second["statistics"]
        assert first["convergence"] == second["convergence"]
        assert first["probes"] == second["probes"]

    def test_certify_sweep_all_schedulers(self):
        cases = build_cases(corruption_seeds=[0])
        report = certify(cases, seeds=[0], shrink_failures=False)
        assert report["certified"], report["failed"]
        assert report["meta"]["runs"] == len(available_schedulers())
        # Every verdict carries the corruption report and convergence summary,
        # and at n=5 bootstrap always finishes before corrupt_at=30 — the
        # corruption demonstrably hit an already-converged system.
        for verdict in report["verdicts"]:
            assert verdict["corruption"][0]["atoms_total"] > 0
            assert verdict["convergence"]["converged"]
            assert verdict["corrupted_converged_state"] is True
        assert report["meta"]["corrupted_mid_bootstrap"] == 0

    def test_case_names_encode_topology_and_stack(self):
        a = AuditCase(scheduler="uniform", corruption_seed=0, n=5, stack="bare")
        b = AuditCase(scheduler="uniform", corruption_seed=0, n=8, stack="counters")
        assert a.name != b.name  # no cross-sweep registry aliasing

    def test_invariants_arm_after_corruption(self):
        case = AuditCase(
            scheduler="uniform",
            corruption_seed=0,
            invariants=(probes.no_reset_invariant(),),
        )
        # An empty corruption plan must certify: bootstrap resets happen
        # before the invariant arms, so a violation is attributable to the
        # injected state only.
        empty = run_case(case, seed=0, include=())
        assert empty["ok"]
        assert empty["invariants"]["ok"]

    def test_shrink_broken_invariant_to_minimal_reproducer(self):
        case = AuditCase(
            scheduler="uniform",
            corruption_seed=0,
            invariants=(probes.no_reset_invariant(),),
        )
        full = run_case(case, seed=0)
        assert not full["ok"]  # the deliberately broken invariant fires
        reproducer = shrink_case(case, seed=0)
        assert reproducer["still_fails"]
        assert 1 <= reproducer["minimal_size"] < reproducer["atoms_total"]
        assert len(reproducer["atoms"]) == reproducer["minimal_size"]

    def test_shrink_is_deterministic(self):
        case = AuditCase(
            scheduler="uniform",
            corruption_seed=0,
            invariants=(probes.no_reset_invariant(),),
        )
        a = shrink_case(case, seed=0)
        b = shrink_case(case, seed=0)
        assert a == b

    def test_workload_include_subsets_plan(self):
        spec = ScenarioSpec(
            name="subset",
            n=3,
            workloads=(ArbitraryStateWorkload(at=20.0, seed=0, include=(0, 1, 2)),),
            horizon=25.0,
            probes=(probes.converged(4_000),),
        )
        result = run_scenario(spec, seed=0)
        report = result["workload_reports"][0]
        assert report["atoms_selected"] == 3
        assert report["atoms_total"] > 3


# ---------------------------------------------------------------------------
# Environment-program sweep surface: stacks, profiles, smoke, gate
# ---------------------------------------------------------------------------
class TestAuditStacksAndProfiles:
    def test_dynamic_schedulers_registered(self):
        from repro.audit.schedulers import dynamic_schedulers, static_schedulers

        assert dynamic_schedulers() == [
            "crash_recovery",
            "partition_leak",
            "target_coordinator",
        ]
        assert set(static_schedulers()) == {
            "uniform",
            "delay_skew",
            "reorder_heavy",
            "burst_delivery",
            "slow_node",
        }

    def test_build_cases_stacks_arm_smr_agreement(self):
        cases = build_cases(
            schedulers=["uniform"], corruption_seeds=[0], stacks=["bare", "vs_smr"]
        )
        by_stack = {case.stack: case for case in cases}
        assert by_stack["bare"].invariants == ()
        assert [inv.name for inv in by_stack["vs_smr"].invariants] == ["smr_agreement"]

    def test_profile_names_disambiguate_registered_specs(self):
        light = AuditCase(scheduler="uniform", corruption_seed=0, profile="light")
        heavy = AuditCase(scheduler="uniform", corruption_seed=0, profile="heavy")
        default = AuditCase(scheduler="uniform", corruption_seed=0)
        assert len({light.name, heavy.name, default.name}) == 3
        assert default.profile_name == "default"

    def test_unknown_profile_fails_fast(self):
        case = AuditCase(scheduler="uniform", corruption_seed=0, profile="nope")
        with pytest.raises(KeyError, match="unknown corruption profile"):
            case.to_spec()

    def test_dynamic_case_params_anchor_at_corruption(self):
        case = AuditCase(scheduler="crash_recovery", corruption_seed=0, corrupt_at=30.0)
        params = dict(case.to_spec().scheduler_params)
        assert params["start"] == pytest.approx(32.0)
        # Explicit params override the audit-tuned defaults.
        custom = AuditCase(
            scheduler="crash_recovery",
            corruption_seed=0,
            scheduler_params=(("start", 99.0),),
        )
        assert dict(custom.to_spec().scheduler_params)["start"] == pytest.approx(99.0)

    def test_smr_agreement_holds_on_vs_smr_audit_case(self):
        case = build_cases(
            schedulers=["uniform"], corruption_seeds=[0], stacks=["vs_smr"]
        )[0]
        result = run_case(case, seed=0)
        assert result["ok"]
        assert result["invariants"]["ok"]

    def test_smr_audit_invariant_is_not_vacuous(self):
        # The SMR-stack audit cases multicast commands around the corruption,
        # so the armed smr_agreement invariant compares real (non-empty)
        # delivery histories.
        from repro.scenarios.runner import execute, prepare

        case = build_cases(
            schedulers=["uniform"], corruption_seeds=[0], stacks=["vs_smr"]
        )[0]
        run = prepare(case.to_spec(), seed=0)
        result = execute(run)
        assert result["ok"]
        histories = [
            node.service_map["vs"].delivery_history()
            for node in run.cluster.alive_nodes()
        ]
        assert any(history for history in histories)

    def test_case_names_do_not_alias_across_params_or_profiles(self):
        plain = AuditCase(scheduler="partition_leak", corruption_seed=0)
        tuned = AuditCase(
            scheduler="partition_leak",
            corruption_seed=0,
            scheduler_params=(("leak", 0.5),),
        )
        ad_hoc_a = AuditCase(
            scheduler="uniform", corruption_seed=0,
            profile=CorruptionProfile(field_probability=0.31),
        )
        ad_hoc_b = AuditCase(
            scheduler="uniform", corruption_seed=0,
            profile=CorruptionProfile(field_probability=0.32),
        )
        names = {plain.name, tuned.name, ad_hoc_a.name, ad_hoc_b.name}
        assert len(names) == 4

    def test_smoke_cases_cover_dynamic_and_smr(self):
        from repro.audit.__main__ import smoke_cases

        cases = smoke_cases()
        schedulers = {case.scheduler for case in cases}
        assert {"crash_recovery", "partition_leak", "target_coordinator"} <= schedulers
        stacks = {case.stack for case in cases}
        assert {"bare", "vs_smr", "shared_register"} <= stacks
        armed = [
            case for case in cases if any(i.name == "smr_agreement" for i in case.invariants)
        ]
        assert armed and all(case.stack != "bare" for case in armed)

    def test_stabilization_distribution_shape(self):
        from repro.audit.harness import stabilization_distribution

        verdicts = [
            {"case": "a", "seed": 0, "convergence": {"stabilization_time": 10.0}},
            {"case": "a", "seed": 1, "convergence": {"stabilization_time": 30.0}},
            {"case": "b", "seed": 0, "convergence": {"stabilization_time": 20.0}},
            {"case": "b", "seed": 1, "convergence": {"stabilization_time": None}},
        ]
        dist = stabilization_distribution(verdicts)
        assert dist["runs"] == 3
        assert dist["worst"] == 30.0
        assert dist["by_case"] == {"a": 30.0, "b": 20.0}
        assert dist["unconverged"] == ["b@1"]


class TestConvergenceGate:
    def test_gate_passes_within_tolerance(self):
        from repro.audit.gate import compare

        outcome = compare(
            {"worst": 110.0, "unconverged": [], "by_case": {"a": 110.0}},
            {"worst": 100.0, "by_case": {"a": 100.0}},
            tolerance=0.25,
        )
        assert outcome["ok"] and not outcome["failures"]

    def test_gate_fails_beyond_tolerance(self):
        from repro.audit.gate import compare

        outcome = compare(
            {"worst": 130.0, "unconverged": [], "by_case": {}},
            {"worst": 100.0, "by_case": {}},
            tolerance=0.25,
        )
        assert not outcome["ok"]
        assert "regressed" in outcome["failures"][0]

    def test_gate_fails_on_unconverged_runs(self):
        from repro.audit.gate import compare

        outcome = compare(
            {"worst": 50.0, "unconverged": ["x@0"], "by_case": {}},
            {"worst": 100.0, "by_case": {}},
        )
        assert not outcome["ok"]

    def test_gate_warns_on_per_case_regression(self):
        from repro.audit.gate import compare

        outcome = compare(
            {"worst": 100.0, "unconverged": [], "by_case": {"a": 100.0, "b": 90.0}},
            {"worst": 100.0, "by_case": {"a": 100.0, "b": 50.0}},
            tolerance=0.25,
        )
        assert outcome["ok"]  # overall worst unchanged
        assert outcome["warnings"] and "b" in outcome["warnings"][0]

    def test_checked_in_baseline_matches_current_smoke_schema(self):
        import json
        from pathlib import Path

        baseline = json.loads(
            (Path(__file__).parent.parent / "benchmarks" / "audit_baseline.json").read_text()
        )
        assert baseline["worst"] > 0
        assert baseline["runs"] >= 48
        assert baseline["by_case"]
