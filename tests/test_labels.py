"""Tests for the bounded labeling scheme (labels, store, service)."""

from __future__ import annotations

import pytest

from repro.common.types import make_config
from repro.labels.label import (
    EpochLabel,
    LabelPair,
    label_less_than,
    labels_incomparable,
    max_label,
    next_label,
)
from repro.labels.store import BoundedLabelQueue, LabelStore

from tests.conftest import quick_cluster


def _label(creator=1, sting=0, antistings=()):
    return EpochLabel(creator=creator, sting=sting, antistings=frozenset(antistings))


class TestLabelOrdering:
    def test_creator_order_dominates(self):
        assert label_less_than(_label(creator=1), _label(creator=2))
        assert not label_less_than(_label(creator=2), _label(creator=1))

    def test_same_creator_sting_antisting_rule(self):
        a = _label(creator=1, sting=1, antistings=[5])
        b = _label(creator=1, sting=2, antistings=[1])
        assert label_less_than(a, b)
        assert not label_less_than(b, a)

    def test_same_creator_incomparable(self):
        a = _label(creator=1, sting=1, antistings=[3])
        b = _label(creator=1, sting=2, antistings=[4])
        assert labels_incomparable(a, b)

    def test_equal_labels_not_less(self):
        a = _label(creator=1, sting=1, antistings=[2])
        assert not label_less_than(a, a)

    def test_max_label_prefers_dominant(self):
        a = _label(creator=1, sting=1, antistings=[5])
        b = _label(creator=1, sting=2, antistings=[1])
        assert max_label([a, b]) == b

    def test_max_label_empty(self):
        assert max_label([]) is None

    def test_next_label_dominates_known(self):
        known = [
            _label(creator=3, sting=1, antistings=[7]),
            _label(creator=3, sting=4, antistings=[1, 2]),
        ]
        fresh = next_label(creator=3, known=known)
        assert all(label_less_than(lbl, fresh) for lbl in known)

    def test_next_label_domain_exhaustion(self):
        known = [_label(creator=1, sting=s, antistings=[(s + 1) % 3]) for s in range(3)]
        with pytest.raises(ValueError):
            next_label(creator=1, known=known, domain_size=3, antisting_capacity=3)


class TestBoundedLabelQueue:
    def test_eviction_of_least_recently_used(self):
        queue = BoundedLabelQueue(capacity=2)
        pairs = [LabelPair(ml=_label(sting=s)) for s in range(3)]
        for pair in pairs:
            queue.add(pair)
        assert len(queue) == 2
        assert queue.get(pairs[0].ml) is None

    def test_canceled_copy_wins(self):
        queue = BoundedLabelQueue(capacity=4)
        label = _label(sting=1)
        queue.add(LabelPair(ml=label))
        queue.add(LabelPair(ml=label, cl=label))
        stored = queue.get(label)
        assert stored is not None and not stored.legit

    def test_replace_overwrites(self):
        queue = BoundedLabelQueue(capacity=4)
        label = _label(sting=1)
        queue.add(LabelPair(ml=label, cl=label))
        queue.replace(LabelPair(ml=label))
        assert queue.get(label).legit


class TestLabelStore:
    def test_owner_creates_label_when_none_known(self):
        store = LabelStore(owner=1, members=[1, 2, 3])
        result = store.receipt_action(None, None, sender=1)
        assert result is not None and result.legit
        assert store.labels_created == 1

    def test_adopts_globally_maximal_label(self):
        store = LabelStore(owner=1, members=[1, 2, 3])
        store.receipt_action(None, None, sender=1)
        remote = LabelPair(ml=_label(creator=3, sting=5))
        result = store.receipt_action(remote, None, sender=3)
        assert result.ml.creator == 3

    def test_cancellation_adopted_from_peer(self):
        store = LabelStore(owner=1, members=[1, 2])
        own = store.receipt_action(None, None, sender=1)
        canceled = LabelPair(ml=own.ml, cl=_label(creator=2, sting=9))
        result = store.receipt_action(None, canceled, sender=2)
        # The owner learns its maximal label was canceled and elects another.
        assert result.ml != own.ml or result.legit

    def test_non_member_labels_cleaned(self):
        store = LabelStore(owner=1, members=[1, 2])
        foreign = LabelPair(ml=_label(creator=99, sting=1))
        assert store.clean_pair(foreign) is None

    def test_incomparable_same_creator_labels_cancel(self):
        store = LabelStore(owner=1, members=[1, 2])
        a = LabelPair(ml=_label(creator=2, sting=1, antistings=[5]))
        b = LabelPair(ml=_label(creator=2, sting=2, antistings=[6]))
        store.receipt_action(a, None, sender=2)
        store.receipt_action(b, None, sender=2)
        queue = store.stored[2]
        legits = [pair for pair in queue if pair.legit]
        assert len(legits) <= 1

    def test_storage_is_bounded(self):
        store = LabelStore(owner=1, members=[1, 2, 3], in_transit_bound=4)
        for sting in range(200):
            pair = LabelPair(ml=_label(creator=2, sting=sting, antistings=[sting + 1]))
            store.receipt_action(pair, None, sender=2)
        v = len(store.members)
        member_bound = v + store.in_transit_bound
        owner_bound = v * (v * v + store.in_transit_bound) + v
        assert len(store.stored[2]) <= member_bound
        assert len(store.stored[1]) <= owner_bound

    def test_rebuild_drops_departed_members(self):
        store = LabelStore(owner=1, members=[1, 2, 3])
        store.receipt_action(LabelPair(ml=_label(creator=3, sting=2)), None, sender=3)
        store.rebuild([1, 2])
        store.clean_non_member_labels()
        assert 3 not in store.stored
        assert all(
            pair is None or pair.ml.creator != 3 for pair in store.max_pairs.values()
        )

    def test_stale_misfiled_label_flushes_queues(self):
        store = LabelStore(owner=1, members=[1, 2])
        store.receipt_action(LabelPair(ml=_label(creator=2, sting=1)), None, sender=2)
        # Misfile a label under the wrong creator's queue (transient fault).
        store.stored[1].add(LabelPair(ml=_label(creator=2, sting=7)))
        flushes_before = store.queue_flushes
        store.receipt_action(None, None, sender=1)
        assert store.queue_flushes == flushes_before + 1


class TestLabelingServiceCluster:
    def _with_labels(self, n, seed):
        cluster = quick_cluster(n, seed=seed, stack="labels")
        services = cluster.services("labels")
        return cluster, services

    def test_members_converge_to_single_maximal_label(self):
        cluster, services = self._with_labels(4, seed=51)
        assert cluster.run_until_converged(timeout=800)
        assert cluster.run_until(
            lambda: len(
                {
                    svc.max_label()
                    for svc in services.values()
                    if svc.max_label() is not None
                }
            )
            == 1
            and all(svc.max_label() is not None for svc in services.values()),
            timeout=2000,
        )

    def test_labels_rebuilt_after_reconfiguration(self):
        cluster, services = self._with_labels(4, seed=52)
        assert cluster.run_until_converged(timeout=800)
        cluster.run(until=cluster.simulator.now + 50)
        target = make_config([0, 1, 2])
        assert cluster.nodes[0].scheme.request_reconfiguration(target)
        assert cluster.run_until(
            lambda: cluster.agreed_configuration() == target and cluster.is_converged(),
            timeout=2500,
        )
        assert cluster.run_until(
            lambda: all(
                services[pid].rebuild_count >= 2 for pid in target
            ),
            timeout=2000,
        )
        # Departed member 3 no longer participates in labeling.
        cluster.run(until=cluster.simulator.now + 60)
        labels = {services[pid].max_label() for pid in target}
        assert len(labels) == 1

    def test_corrupted_label_state_recovers(self):
        cluster, services = self._with_labels(3, seed=53)
        assert cluster.run_until_converged(timeout=800)
        cluster.run(until=cluster.simulator.now + 40)
        svc = services[0]
        assert svc.store is not None
        # Fabricate a canceled garbage maximum (transient fault).
        garbage = _label(creator=0, sting=13, antistings=[1, 2, 3])
        svc.store.max_pairs[0] = LabelPair(ml=garbage, cl=garbage)
        assert cluster.run_until(
            lambda: all(
                s.max_label() is not None for s in services.values()
            )
            and len({s.max_label() for s in services.values()}) == 1,
            timeout=2000,
        )
