"""Replay the persistent reproducer corpus (tests/corpus/*.json).

Each corpus entry is a shrunk minimal reproducer mined by the audit engine:
a corruption-plan subset pinned to violate a named invariant under a named
environment program.  Replaying them keeps historical reproducers alive as
regression tests — if a protocol change makes one stop reproducing (or
changes whether the system recovers afterwards), the corresponding test
fails and the corpus entry must be consciously re-mined or retired.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.probes import invariant_by_name
from repro.audit.byzantine import ByzantineSpec
from repro.audit.harness import AuditCase, run_case

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_ENTRIES = sorted(CORPUS_DIR.glob("*.json"))


def _load(path: Path) -> dict:
    return json.loads(path.read_text())


def _build_case(entry: dict) -> AuditCase:
    case_data = dict(entry["case"])
    invariants = tuple(
        invariant_by_name(name) for name in case_data.pop("invariants", [])
    )
    byzantine = case_data.pop("byzantine", None)
    if byzantine is not None:
        byzantine = ByzantineSpec(
            **{**byzantine, "behaviors": tuple(byzantine["behaviors"])}
        )
    return AuditCase(invariants=invariants, byzantine=byzantine, **case_data)


def test_corpus_is_seeded():
    assert CORPUS_ENTRIES, "tests/corpus/ must contain at least one reproducer"


@pytest.mark.parametrize("path", CORPUS_ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_still_reproduces(path):
    entry = _load(path)
    case = _build_case(entry)
    include = tuple(entry["include"])
    result = run_case(case, seed=entry["seed"], include=include, record_atoms=True)

    # The pinned subset must have been applied exactly — to the traitor
    # plan for Byzantine reproducers, to the corruption plan otherwise.
    plan_kind = "byzantine" if case.byzantine is not None else "arbitrary_state"
    reports = [
        report
        for report in result.get("workload_reports", ())
        if report.get("workload") == plan_kind
    ]
    assert reports and reports[0]["atoms_selected"] == len(include)

    # The reproducer must still fail overall and violate the pinned invariants.
    assert not result["ok"], f"{path.stem}: reproducer no longer fails"
    violated = {
        interval["name"] for interval in result["invariants"]["intervals"]
    }
    for name in entry["expect"]["violates"]:
        assert name in violated, f"{path.stem}: {name} no longer violated"

    # Recovery behaviour is pinned too: a reproducer that used to converge
    # after the violation must keep converging (and vice versa).
    expected_convergence = entry["expect"].get("converges")
    if expected_convergence is not None:
        assert result["probes"]["converged"]["satisfied"] is expected_convergence


@pytest.mark.parametrize("path", CORPUS_ENTRIES, ids=lambda p: p.stem)
def test_corpus_entry_is_minimal(path):
    """Dropping any atom from a pinned reproducer makes the failure vanish.

    1-minimality is what `shrink_case` certified when the entry was mined;
    replaying it guards against plans drifting under the pinned indices
    (e.g. a generator change that renumbers atoms would surface here).
    """
    entry = _load(path)
    include = tuple(entry["include"])
    if len(include) != 1:
        pytest.skip("minimality replay only pinned for single-atom reproducers")
    case = _build_case(entry)
    result = run_case(case, seed=entry["seed"], include=())
    assert result["ok"], f"{path.stem}: failure persists without the pinned atom"
