"""Tests for the data-link layer and the (N, Theta)-failure detector."""

from __future__ import annotations

import pytest

from repro.datalink.heartbeat import HeartbeatService
from repro.datalink.token_exchange import DataLinkMessage, LinkEndpoint, LinkState, TokenExchangeLink
from repro.failure_detector.ntheta import NThetaFailureDetector


def _wire(a: LinkEndpoint, b: LinkEndpoint, rounds: int = 50):
    """Run *rounds* of synchronous exchange between two endpoints."""
    delivered_a, delivered_b = [], []
    for _ in range(rounds):
        for msg in a.on_timer():
            replies, delivered, _ = b.on_packet(msg)
            delivered_b.extend(delivered)
            for reply in replies:
                _, delivered2, _ = a.on_packet(reply)
                delivered_a.extend(delivered2)
        for msg in b.on_timer():
            replies, delivered, _ = a.on_packet(msg)
            delivered_a.extend(delivered)
            for reply in replies:
                _, delivered2, _ = b.on_packet(reply)
                delivered_b.extend(delivered2)
    return delivered_a, delivered_b


class TestTokenExchangeLink:
    def test_round_trip_requires_capacity_plus_one_acks(self):
        link = TokenExchangeLink(local=1, remote=2, capacity=3)
        msg = link.current_message()
        for _ in range(3):
            assert not link.on_ack(msg.seq)
        assert link.on_ack(msg.seq)
        assert link.completed_round_trips == 1

    def test_stale_ack_ignored(self):
        link = TokenExchangeLink(local=1, remote=2, capacity=1)
        assert not link.on_ack(999)
        assert link.ack_count == 0

    def test_fifo_message_progression(self):
        link = TokenExchangeLink(local=1, remote=2, capacity=0)
        link.enqueue("first")
        link.enqueue("second")
        assert link.current_message().payload == "first"
        assert link.on_ack(link.seq)
        assert link.current_message().payload == "second"


class TestLinkEndpoint:
    def test_cleaning_completes_then_delivers(self):
        a = LinkEndpoint(1, 2, capacity=2, require_cleaning=True)
        b = LinkEndpoint(2, 1, capacity=2, require_cleaning=True)
        a.send("hello")
        delivered_a, delivered_b = _wire(a, b, rounds=30)
        assert a.is_established()
        assert b.is_established()
        assert "hello" in delivered_b

    def test_no_cleaning_mode_delivers_immediately(self):
        a = LinkEndpoint(1, 2, capacity=1, require_cleaning=False)
        b = LinkEndpoint(2, 1, capacity=1, require_cleaning=False)
        a.send("x")
        _, delivered_b = _wire(a, b, rounds=10)
        assert delivered_b == ["x"]

    def test_duplicate_data_not_redelivered(self):
        a = LinkEndpoint(1, 2, capacity=0, require_cleaning=False)
        b = LinkEndpoint(2, 1, capacity=0, require_cleaning=False)
        a.send("once")
        msg = a.on_timer()[0]
        _, d1, _ = b.on_packet(msg)
        _, d2, _ = b.on_packet(msg)
        assert d1 == ["once"]
        assert d2 == []

    def test_packets_during_cleaning_not_delivered(self):
        b = LinkEndpoint(2, 1, capacity=2, require_cleaning=True)
        data = DataLinkMessage(kind="data", link_sender=1, seq=0, payload="stale")
        replies, delivered, heartbeat = b.on_packet(data)
        assert delivered == []
        assert heartbeat
        assert b.state is LinkState.CLEANING

    def test_fifo_order_preserved(self):
        a = LinkEndpoint(1, 2, capacity=1, require_cleaning=False)
        b = LinkEndpoint(2, 1, capacity=1, require_cleaning=False)
        for value in ["m1", "m2", "m3"]:
            a.send(value)
        _, delivered_b = _wire(a, b, rounds=40)
        assert delivered_b == ["m1", "m2", "m3"]


class TestHeartbeatService:
    def _pair(self, require_cleaning=False):
        wires = {}

        def send_a(dest, payload):
            wires.setdefault(dest, []).append((1, payload))

        def send_b(dest, payload):
            wires.setdefault(dest, []).append((2, payload))

        svc_a = HeartbeatService(1, send_a, channel_capacity=2, require_cleaning=require_cleaning)
        svc_b = HeartbeatService(2, send_b, channel_capacity=2, require_cleaning=require_cleaning)
        svc_a.add_peer(2)
        svc_b.add_peer(1)
        return svc_a, svc_b, wires

    def _pump(self, svc_a, svc_b, wires, rounds=20):
        for _ in range(rounds):
            svc_a.on_timer()
            svc_b.on_timer()
            for dest, queued in list(wires.items()):
                wires[dest] = []
                for sender, payload in queued:
                    target = svc_a if dest == 1 else svc_b
                    target.on_packet(sender, payload)

    def test_heartbeats_reach_listener(self):
        svc_a, svc_b, wires = self._pair()
        beats = []
        svc_a.add_heartbeat_listener(beats.append)
        self._pump(svc_a, svc_b, wires)
        assert beats.count(2) > 0

    def test_reliable_payload_delivery(self):
        svc_a, svc_b, wires = self._pair()
        got = []
        svc_b.add_payload_handler(lambda sender, payload: got.append((sender, payload)))
        svc_a.send_reliable(2, "data")
        self._pump(svc_a, svc_b, wires, rounds=30)
        assert (1, "data") in got

    def test_cleaning_eventually_establishes(self):
        svc_a, svc_b, wires = self._pair(require_cleaning=True)
        self._pump(svc_a, svc_b, wires, rounds=30)
        assert 2 in svc_a.established_peers()
        assert 1 in svc_b.established_peers()

    def test_rejects_self_peer(self):
        svc_a, _, _ = self._pair()
        with pytest.raises(ValueError):
            svc_a.add_peer(1)

    def test_mislabelled_packet_ignored(self):
        svc_a, _, _ = self._pair()
        beats = []
        svc_a.add_heartbeat_listener(beats.append)
        bogus = DataLinkMessage(kind="data", link_sender=77, seq=0, payload="x")
        svc_a.on_packet(2, bogus)
        assert beats == []


class TestNThetaFailureDetector:
    def test_initially_trusts_only_self(self):
        fd = NThetaFailureDetector(pid=1, upper_bound_n=10)
        assert fd.trusted() == frozenset({1})

    def test_trusts_heartbeating_peers(self):
        fd = NThetaFailureDetector(pid=1, upper_bound_n=10)
        for _ in range(5):
            for peer in (2, 3, 4):
                fd.heartbeat(peer)
        assert fd.trusted() == frozenset({1, 2, 3, 4})
        assert fd.suspects() == frozenset()

    def test_crashed_peer_eventually_suspected(self):
        fd = NThetaFailureDetector(pid=1, upper_bound_n=10, gap_factor=2.0, gap_slack=4)
        for _ in range(5):
            for peer in (2, 3, 4):
                fd.heartbeat(peer)
        # Peer 4 stops heartbeating; 2 and 3 continue.
        for _ in range(200):
            fd.heartbeat(2)
            fd.heartbeat(3)
        assert 4 in fd.suspects()
        assert fd.trusted() == frozenset({1, 2, 3})

    def test_own_heartbeat_ignored(self):
        fd = NThetaFailureDetector(pid=1, upper_bound_n=10)
        fd.heartbeat(1)
        assert fd.heartbeats_received == 0

    def test_counts_update_rule(self):
        fd = NThetaFailureDetector(pid=1, upper_bound_n=10)
        fd.heartbeat(2)
        fd.heartbeat(3)
        counts = fd.snapshot_counts()
        assert counts[3] == 0
        assert counts[2] == 1

    def test_estimate_active_caps_at_upper_bound(self):
        fd = NThetaFailureDetector(pid=1, upper_bound_n=3)
        for _ in range(3):
            for peer in (2, 3, 4, 5, 6):
                fd.heartbeat(peer)
        assert fd.estimate_active() <= 3

    def test_forget_removes_peer(self):
        fd = NThetaFailureDetector(pid=1, upper_bound_n=10)
        fd.heartbeat(2)
        fd.forget(2)
        assert 2 not in fd.known()

    def test_view_is_immutable_snapshot(self):
        fd = NThetaFailureDetector(pid=1, upper_bound_n=10)
        fd.heartbeat(2)
        view = fd.view()
        assert view.owner == 1
        assert 2 in view
        assert len(view) == 2
        assert list(view) == [1, 2]
