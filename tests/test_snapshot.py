"""Snapshot/restore determinism, warm prefix sharing, pool + resolve cache.

The load-bearing guarantee of PR 5's sweep-throughput engine is pinned here:
a restored :class:`~repro.sim.snapshot.SimSnapshot` resumed to completion is
**byte-identical** to a cold, uninterrupted run of the same seed — for every
stack profile, with active leaky partitions and overlays in the captured
state, and through the audit harness's warm prefix path (certify and ddmin
shrinking).  The work-stealing sweep meta and the environment's memoized
link resolution are covered alongside, since the same engine relies on both.
"""

from __future__ import annotations

import copy

import pytest

from repro.analysis import probes
from repro.audit.harness import (
    AuditCase,
    build_cases,
    certify,
    prefix_key,
    prefix_snapshot,
    run_case,
    shrink_case,
)
from repro.scenarios import (
    ArbitraryStateWorkload,
    ScenarioSpec,
    drive,
    finalize,
    prepare,
    run_matrix,
    run_scenario,
)
from repro.sim.cluster import build_cluster
from repro.sim.events import Action
from repro.sim.network import ChannelConfig
from repro.sim.snapshot import SimSnapshot
from repro.sim.stacks import available_stacks


def _strip_wall(result):
    """Drop the wall-clock keys that are deliberately nondeterministic."""
    result = copy.deepcopy(result)
    result.pop("wall_seconds", None)
    result.pop("worker_pid", None)
    if "window" in result:
        result["window"].pop("wall_seconds", None)
    return result


def _strip_report(report):
    """Audit report minus timing/scheduling meta (not part of determinism)."""
    report = copy.deepcopy(report)
    report["meta"].pop("wall_seconds", None)
    report["meta"].pop("sweep", None)
    report["meta"].pop("prefix_reuse", None)
    return report


def _snapshot_spec(stack: str) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"snapdet:{stack}",
        n=5,
        stack=stack,
        workloads=(ArbitraryStateWorkload(at=20.0, seed=5),),
        horizon=40.0,
        probes=(probes.converged(4_000.0),),
        track_convergence=True,
    )


# ---------------------------------------------------------------------------
# Core determinism guarantee: restore + run == cold run, per stack profile
# ---------------------------------------------------------------------------
class TestSnapshotDeterminism:
    @pytest.mark.parametrize("stack", sorted(available_stacks()))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_restored_run_is_byte_identical_per_stack(self, stack, seed):
        spec = _snapshot_spec(stack)
        cold = run_scenario(spec, seed=seed)

        run = prepare(spec, seed=seed)
        paused = not drive(run, stop_before=20.0)
        assert paused, "the pending corruption event must pause the prefix"
        snapshot = SimSnapshot.capture(run)
        restored = snapshot.restore()
        drive(restored)
        warm = finalize(restored)

        assert _strip_wall(warm) == _strip_wall(cold)
        # The satellite contract, spelled out: identical executed events,
        # deliveries and convergence behaviour.
        assert warm["statistics"]["executed_events"] == cold["statistics"]["executed_events"]
        assert warm["statistics"]["delivered_messages"] == cold["statistics"]["delivered_messages"]
        assert warm["convergence"] == cold["convergence"]

    def test_snapshot_with_active_leaky_partition_and_overlay(self):
        """Capture mid-run with a leaky partition standing and an overlay
        pushed; the restored run must still replay byte-identically."""
        spec = ScenarioSpec(
            name="snapdet:leaky",
            n=6,
            stack="counters",
            scheduler="partition_leak",  # forward leaky split stands at t=70
            horizon=200.0,
            probes=(probes.converged(6_000.0),),
            track_convergence=True,
        )
        slow = ChannelConfig(min_delay=2.0, max_delay=6.0)
        overlay = {(0, 1): slow, (1, 0): slow}

        def run_with_boundary(capture: bool):
            run = prepare(spec, seed=7)
            assert not drive(run, stop_before=70.0)
            environment = run.cluster.environment
            assert environment.active_partitions() == ["partition_leak:forward"]
            environment.apply_overlay("test-overlay", overlay)
            if capture:
                snapshot = SimSnapshot.capture(run)
                run = snapshot.restore()
                assert run.cluster.environment.active_partitions() == [
                    "partition_leak:forward"
                ]
                assert "test-overlay" in run.cluster.environment._overlays
            drive(run)
            return finalize(run)

        cold = run_with_boundary(capture=False)
        warm = run_with_boundary(capture=True)
        assert _strip_wall(warm) == _strip_wall(cold)

    def test_snapshot_mid_bootstrap(self):
        """A prefix boundary that lands before convergence resumes correctly
        (the bootstrap phase deadline survives the snapshot)."""
        case = AuditCase(scheduler="uniform", corruption_seed=0, corrupt_at=2.0)
        cold = run_case(case, seed=1)
        snapshot = prefix_snapshot(case, seed=1)
        assert snapshot is not None and snapshot.now < 2.0
        warm = run_case(case, seed=1, snapshot=snapshot)
        assert warm == cold

    def test_restores_are_isolated(self):
        """Restoring and running copies never perturbs the original, and
        sibling restores never perturb each other."""
        spec = _snapshot_spec("bare")
        cold = run_scenario(spec, seed=3)
        run = prepare(spec, seed=3)
        drive(run, stop_before=20.0)
        before_events = run.cluster.simulator.executed_events
        snapshot = SimSnapshot.capture(run)

        first = snapshot.restore()
        drive(first)
        first_result = finalize(first)
        # Driving the first copy moved neither the original nor the snapshot.
        assert run.cluster.simulator.executed_events == before_events
        second = snapshot.restore()
        drive(second)
        assert _strip_wall(finalize(second)) == _strip_wall(first_result)
        assert snapshot.restores == 2

        # The paused original still completes to the cold result.
        drive(run)
        assert _strip_wall(finalize(run)) == _strip_wall(cold)

    def test_in_flight_ledgers_are_rekeyed(self):
        """Packets in flight across the boundary are delivered on the copy:
        the identity-keyed channel ledgers must be rebuilt after the copy,
        or completions would miss and capacity accounting would corrupt."""
        spec = _snapshot_spec("bare")
        run = prepare(spec, seed=0)
        # Pause inside the bootstrap storm, where the boundary is guaranteed
        # to cut live traffic (steady state throttles itself to near-silence).
        drive(run, stop_before=2.0)
        network = run.cluster.simulator.network
        assert network.total_in_flight() > 0
        restored = SimSnapshot.capture(run).restore()
        chan_net = restored.cluster.simulator.network
        for channel in chan_net.channels():
            for key, packet in channel._in_flight.items():
                assert key == id(packet)
        drive(restored)
        # Every in-flight packet either completed or was legitimately
        # dropped; the incremental aggregate stayed consistent.
        assert chan_net.total_in_flight() == sum(
            channel.occupancy() for channel in chan_net.channels()
        )


# ---------------------------------------------------------------------------
# Warm prefix sharing through the audit harness
# ---------------------------------------------------------------------------
class TestWarmPrefixSharing:
    def test_prefix_key_groups_corruption_axes_only(self):
        base = AuditCase(scheduler="uniform", corruption_seed=0)
        assert prefix_key(base) == prefix_key(
            AuditCase(scheduler="uniform", corruption_seed=7, profile="heavy")
        )
        assert prefix_key(base) != prefix_key(AuditCase(scheduler="delay_skew", corruption_seed=0))
        assert prefix_key(base) != prefix_key(
            AuditCase(scheduler="uniform", corruption_seed=0, n=8)
        )
        assert prefix_key(base) != prefix_key(
            AuditCase(scheduler="uniform", corruption_seed=0, stack="vs_smr")
        )

    def test_warm_certify_matches_cold_certify(self):
        cases = build_cases(
            schedulers=["uniform", "delay_skew"], corruption_seeds=[0, 1, 2]
        )
        seeds = [0, 1]
        cold = certify(cases, seeds=seeds, shrink_failures=False, reuse_prefix=False)
        warm = certify(cases, seeds=seeds, shrink_failures=False, reuse_prefix=True)
        assert _strip_report(warm) == _strip_report(cold)
        reuse = warm["meta"]["prefix_reuse"]
        assert reuse["enabled"] and reuse["distinct_prefixes"] == 2
        # 2 prefixes x 2 seeds snapshots, every one of the 12 runs warm.
        assert reuse["snapshots"] == 4
        assert reuse["warm_runs"] == 12

    def test_warm_certify_matches_cold_for_dynamic_adversary_and_smr_stack(self):
        cases = build_cases(
            schedulers=["target_coordinator"],
            corruption_seeds=[0, 1],
            stacks=["vs_smr"],
        )
        cold = certify(cases, seeds=[0], shrink_failures=False, reuse_prefix=False)
        warm = certify(cases, seeds=[0], shrink_failures=False, reuse_prefix=True)
        assert _strip_report(warm) == _strip_report(cold)

    def test_single_run_prefixes_stay_cold(self):
        cases = build_cases(schedulers=["uniform", "slow_node"], corruption_seeds=[0])
        report = certify(cases, seeds=[0], shrink_failures=False, reuse_prefix=True)
        assert report["certified"]
        assert report["meta"]["prefix_reuse"]["snapshots"] == 0

    def test_warm_shrink_matches_cold_shrink(self):
        case = AuditCase(
            scheduler="uniform",
            corruption_seed=0,
            invariants=(probes.no_reset_invariant(),),
        )
        cold = shrink_case(case, seed=0, reuse_prefix=False)
        warm = shrink_case(case, seed=0, reuse_prefix=True)
        assert warm == cold
        assert warm["still_fails"] and warm["minimal_size"] >= 1


# ---------------------------------------------------------------------------
# Work-stealing sweep accounting
# ---------------------------------------------------------------------------
class TestSweepAccounting:
    def test_serial_sweep_reports_utilization(self):
        sweep = run_matrix(["bootstrap"], seeds=[0, 1], workers=1)
        summary = sweep["meta"]["sweep"]
        assert summary["wall_seconds"] > 0
        assert summary["busy_seconds"] > 0
        assert 0 < summary["utilization"] <= 1.0 + 1e-9
        (worker,) = summary["by_worker"].values()
        assert worker["jobs"] == 2
        for entry in sweep["results"]:
            assert entry["wall_seconds"] > 0 and entry["worker_pid"]

    def test_parallel_sweep_accounts_every_job(self):
        sweep = run_matrix(["bootstrap"], seeds=[0, 1, 2, 3], workers=2)
        summary = sweep["meta"]["sweep"]
        assert sum(w["jobs"] for w in summary["by_worker"].values()) == 4
        assert summary["max_job_seconds"] <= summary["busy_seconds"] + 1e-9
        # Work stealing still returns sorted, complete results.
        assert [entry["seed"] for entry in sweep["results"]] == [0, 1, 2, 3]


# ---------------------------------------------------------------------------
# Memoized link resolution
# ---------------------------------------------------------------------------
class TestResolveCache:
    def test_hits_and_misses_accumulate(self):
        cluster = build_cluster(n=3, seed=0)
        environment = cluster.environment
        first = environment.resolve(0, 1)
        again = environment.resolve(0, 1)
        assert first is again
        assert environment.resolve_misses >= 1
        assert environment.resolve_hits >= 1
        stats = environment.summary()["resolve_cache"]
        assert stats["hits"] == environment.resolve_hits
        assert stats["hit_rate"] is not None

    def test_override_and_overlay_invalidate(self):
        cluster = build_cluster(n=3, seed=0)
        environment = cluster.environment
        base = environment.resolve(0, 1)
        version = environment.version
        shaped = ChannelConfig(min_delay=3.0, max_delay=9.0)
        environment.set_link_config(0, 1, shaped)
        assert environment.version > version
        assert environment.resolve(0, 1) is shaped
        environment.apply_overlay("t", {(0, 1): base})
        assert environment.resolve(0, 1) is base
        environment.remove_overlay("t")
        assert environment.resolve(0, 1) is shaped
        environment.clear_link_config(0, 1)
        assert environment.resolve(0, 1) == base

    def test_policy_registration_invalidates(self):
        cluster = build_cluster(n=3, seed=0)
        environment = cluster.environment
        default = environment.resolve(0, 2)
        shaped = ChannelConfig(min_delay=5.0, max_delay=10.0)
        environment.add_link_policy("shape", lambda s, d: shaped)
        assert environment.resolve(0, 2) is shaped
        assert default is not shaped

    def test_partition_bumps_version_without_clearing_cache(self):
        cluster = build_cluster(n=3, seed=0)
        environment = cluster.environment
        environment.resolve(0, 1)
        entries = len(environment._resolve_cache)
        version = environment.version
        name = environment.partition([0], [1], leak=0.5)
        assert environment.version > version
        assert len(environment._resolve_cache) == entries
        environment.heal(name)
        assert environment.version > version + 1

    def test_default_config_rebind_invalidates(self):
        cluster = build_cluster(n=3, seed=0)
        network = cluster.simulator.network
        environment = cluster.environment
        environment.resolve(0, 1)
        replacement = ChannelConfig(capacity=3)
        network.default_config = replacement
        assert environment.resolve(0, 1) is replacement


# ---------------------------------------------------------------------------
# Action: the deep-copy-safe scheduled callable
# ---------------------------------------------------------------------------
class TestAction:
    def test_action_remaps_targets_under_deepcopy(self):
        class Box:
            def __init__(self):
                self.value = 0

            def bump(self, amount):
                self.value += amount

        box = Box()
        action = Action(Box.bump, box, 3)
        clone = copy.deepcopy(action)
        clone()
        assert box.value == 0  # the original graph is untouched
        assert clone.args[0].value == 3
        action()
        assert box.value == 3

    def test_action_with_bound_method(self):
        class Box:
            def __init__(self):
                self.value = 0

            def bump(self):
                self.value += 1

        box = Box()
        action = Action(box.bump)
        clone = copy.deepcopy(action)
        clone()
        assert box.value == 0
        assert clone.fn.__self__.value == 1
