"""Unit and edge-case tests for the reliable-broadcast datalink layer.

Pins the protocol-level guarantees of :mod:`repro.datalink.reliable_broadcast`
that the audit matrix exercises only statistically: duplicate/replayed echo
suppression, echo-before-SEND progress, the exact ``f = ⌊(n-1)/3⌋`` resilience
boundary at ``n = 4``, inbound validation (malformed packets are quarantined,
never raised), Dolev path hygiene, the naive baseline's first-writer-wins
behaviour, and byte-identical snapshot/restore mid-broadcast.
"""

from __future__ import annotations

import copy

import pytest

from repro.analysis import probes
from repro.datalink.reliable_broadcast import (
    MAX_PATH_LEN,
    MAX_RB_SEQ,
    MAX_TRACKED_MESSAGES,
    BrachaBroadcastService,
    DolevBroadcastService,
    NaiveBroadcastService,
    RBMessage,
    make_rb_service,
    validate_rb_message,
)
from repro.scenarios import ScenarioSpec, drive, finalize, prepare, run_scenario
from repro.scenarios.workloads import RBBroadcastWorkload
from repro.sim.snapshot import SimSnapshot


class SyncNet:
    """Synchronous in-memory fan-out for unit-testing RB services.

    Messages queue globally; :meth:`run` delivers them in rounds until
    quiescence.  ``silent`` pids model crashed-or-silent traitors: all their
    inbound and outbound traffic is dropped.
    """

    def __init__(self, variant: str, n: int, silent=()):
        self.queue = []
        self.silent = set(silent)
        pids = tuple(range(n))
        self.services = {
            pid: make_rb_service(
                variant,
                pid,
                tuple(p for p in pids if p != pid),
                self._sender(pid),
            )
            for pid in pids
        }

    def _sender(self, pid):
        def _send(destination, message):
            self.queue.append((pid, destination, message))

        return _send

    def run(self, rounds: int = 60) -> None:
        for _ in range(rounds):
            if not self.queue:
                return
            pending, self.queue = self.queue, []
            for src, dst, message in pending:
                if src in self.silent or dst in self.silent:
                    continue
                self.services[dst].on_message(src, message)

    def honest(self):
        return [s for pid, s in self.services.items() if pid not in self.silent]


# ---------------------------------------------------------------------------
# Inbound validation: malformed packets are counted, never raised
# ---------------------------------------------------------------------------
class TestValidation:
    @pytest.mark.parametrize(
        "message",
        [
            "not a message",
            ("send", 0, 0, "tuple-not-RBMessage"),
            RBMessage("bogus", 0, 0, "x"),
            RBMessage("send", True, 0, "bool-origin"),
            RBMessage("send", 0, -1, "negative-seq"),
            RBMessage("send", 0, MAX_RB_SEQ, "seq-at-bound"),
            RBMessage("send", 0, 0, ["unhashable"]),
            RBMessage("fwd", 0, 0, "x", path=tuple(range(MAX_PATH_LEN + 1))),
            RBMessage("fwd", 0, 0, "x", path=("one", 2)),
        ],
    )
    def test_malformed_rejected(self, message):
        assert not validate_rb_message(message)

    def test_wellformed_accepted(self):
        assert validate_rb_message(RBMessage("send", 3, 7, ("p", 1)))
        assert validate_rb_message(RBMessage("fwd", 0, 0, None, path=(1, 2)))

    @pytest.mark.parametrize("variant", ["bracha", "dolev", "naive"])
    def test_services_quarantine_instead_of_crashing(self, variant):
        service = make_rb_service(variant, 0, (1, 2, 3), lambda d, m: None)
        junk = [
            RBMessage("bogus", 1, 0, "x"),
            RBMessage("send", 1, MAX_RB_SEQ + 5, "x"),
            RBMessage("send", 1, 0, ["unhashable"]),
        ]
        for message in junk:
            assert service.on_message(1, message)  # consumed, not crashed
        assert service.quarantined == len(junk)
        assert not service.delivered
        # Non-RB traffic is explicitly not ours: falls through to other hooks.
        assert not service.on_message(1, {"kind": "gossip"})


# ---------------------------------------------------------------------------
# Bracha: duplicates, replays, echo-before-SEND, equivocation accounting
# ---------------------------------------------------------------------------
class TestBrachaEdgeCases:
    def test_duplicate_and_replayed_echoes_count_once(self):
        service = BrachaBroadcastService(0, (1, 2, 3, 4), lambda d, m: None)
        echo = RBMessage("echo", 2, 0, "v")
        assert service.on_message(1, echo)
        before = service.duplicates
        # Replay the identical echo from the same sender three more times.
        for _ in range(3):
            assert service.on_message(1, echo)
        assert service.duplicates == before + 3
        assert service.echoes[(2, 0)]["v"] == {1}

    def test_replayed_send_does_not_reecho(self):
        sent = []
        service = BrachaBroadcastService(0, (1, 2, 3, 4), lambda d, m: sent.append(m))
        send = RBMessage("send", 1, 0, "v")
        service.on_message(1, send)
        echoes = [m for m in sent if m.kind == "echo"]
        service.on_message(1, send)  # replay
        assert [m for m in sent if m.kind == "echo"] == echoes
        assert service.duplicates == 1

    def test_echo_before_send_still_delivers(self):
        # n=5, f=1: echo threshold 4, deliver threshold 3.  The SEND itself
        # is lost to this node; echoes/readies from the others must carry it
        # to delivery anyway (amplification), with no local echo ever sent.
        service = BrachaBroadcastService(0, (1, 2, 3, 4), lambda d, m: None)
        for peer in (1, 2, 3):
            service.on_message(peer, RBMessage("ready", 4, 0, "late"))
        assert service.delivered == {(4, 0): "late"}

    def test_echo_threshold_readies_without_send(self):
        out = []
        service = BrachaBroadcastService(0, (1, 2, 3, 4), lambda d, m: out.append(m))
        for peer in (1, 2, 3, 4):
            service.on_message(peer, RBMessage("echo", 4, 0, "v"))
        assert any(m.kind == "ready" for m in out)
        assert (4, 0) in service.readied

    def test_forged_send_on_wrong_link_quarantined(self):
        service = BrachaBroadcastService(0, (1, 2, 3, 4), lambda d, m: None)
        service.on_message(2, RBMessage("send", 1, 0, "forged"))
        assert service.quarantined == 1
        assert (1, 0) not in service.echoed

    def test_equivocating_send_echoed_once(self):
        service = BrachaBroadcastService(0, (1, 2, 3, 4), lambda d, m: None)
        service.on_message(1, RBMessage("send", 1, 0, "a"))
        service.on_message(1, RBMessage("send", 1, 0, "b"))
        assert service.echoed[(1, 0)] == "a"
        assert service.equivocations_observed == 1

    def test_tracking_table_is_bounded(self):
        service = BrachaBroadcastService(0, (1, 2, 3, 4), lambda d, m: None)
        for seq in range(MAX_TRACKED_MESSAGES + 40):
            service.on_message(1, RBMessage("send", 1, seq, ("spam", seq)))
        assert len(service.echoed) == MAX_TRACKED_MESSAGES
        assert service.quarantined == 40


# ---------------------------------------------------------------------------
# The f = ⌊(n-1)/3⌋ boundary at n = 4
# ---------------------------------------------------------------------------
class TestResilienceBoundary:
    def test_n4_tolerates_exactly_one_silent_traitor(self):
        net = SyncNet("bracha", 4, silent={3})
        net.services[0].broadcast("edge")
        net.run()
        for service in net.honest():
            assert service.delivered == {(0, 0): "edge"}

    def test_n4_two_silent_traitors_block_delivery(self):
        # f = 1 at n = 4; two silent peers leave only 2 honest participants,
        # below both the echo threshold (3) and the ready threshold (3).
        net = SyncNet("bracha", 4, silent={2, 3})
        net.services[0].broadcast("edge")
        net.run()
        for service in net.honest():
            if service.pid != 0:
                assert service.delivered == {}

    def test_n5_full_honest_delivery_all_variants(self):
        for variant in ("bracha", "dolev", "naive"):
            net = SyncNet(variant, 5)
            net.services[2].broadcast(("v", variant))
            net.run()
            for service in net.services.values():
                assert service.delivered == {(2, 0): ("v", variant)}, variant


# ---------------------------------------------------------------------------
# Dolev path flooding
# ---------------------------------------------------------------------------
class TestDolevPaths:
    def test_relayed_copy_includes_sender_in_effective_path(self):
        # A non-origin sender with an empty claimed path is itself the relay:
        # the effective path is {sender}, so two such copies via different
        # relays are disjoint and deliver (f = 1 needs 2 disjoint paths).
        service = DolevBroadcastService(0, (1, 2, 3, 4), lambda d, m: None)
        service.on_message(2, RBMessage("fwd", 1, 0, "v", path=()))
        assert not service.delivered
        service.on_message(3, RBMessage("fwd", 1, 0, "v", path=()))
        assert service.delivered == {(1, 0): "v"}

    def test_origin_claiming_nonempty_path_quarantined(self):
        service = DolevBroadcastService(0, (1, 2, 3, 4), lambda d, m: None)
        service.on_message(1, RBMessage("fwd", 1, 0, "v", path=(2,)))
        assert service.quarantined == 1
        assert not service.delivered

    def test_path_containing_receiver_or_sender_quarantined(self):
        service = DolevBroadcastService(0, (1, 2, 3, 4), lambda d, m: None)
        service.on_message(2, RBMessage("fwd", 1, 0, "v", path=(0,)))
        service.on_message(2, RBMessage("fwd", 1, 0, "v", path=(2,)))
        service.on_message(2, RBMessage("fwd", 1, 0, "v", path=(3, 3)))
        assert service.quarantined == 3

    def test_delivery_needs_disjoint_paths(self):
        # f = 1 for n = 5: delivery needs 2 node-disjoint paths.
        service = DolevBroadcastService(0, (1, 2, 3, 4), lambda d, m: None)
        service.on_message(2, RBMessage("fwd", 1, 0, "v", path=(3,)))
        service.on_message(4, RBMessage("fwd", 1, 0, "v", path=(3,)))
        assert not service.delivered  # {3,2} and {3,4} share relay 3
        service.on_message(1, RBMessage("fwd", 1, 0, "v", path=()))
        assert service.delivered == {(1, 0): "v"}  # direct edge is disjoint

    def test_distinct_copies_relayed_once(self):
        out = []
        service = DolevBroadcastService(0, (1, 2, 3, 4), lambda d, m: out.append((d, m)))
        copy_msg = RBMessage("fwd", 1, 0, "v", path=(3,))
        service.on_message(2, copy_msg)
        first = len(out)
        assert first > 0
        service.on_message(2, copy_msg)  # replay of the same path copy
        assert len(out) == first
        assert service.duplicates == 1


# ---------------------------------------------------------------------------
# Naive baseline: first-writer-wins (the motivating weakness)
# ---------------------------------------------------------------------------
class TestNaiveBaseline:
    def test_first_writer_wins_and_counts_equivocation(self):
        service = NaiveBroadcastService(0, (1, 2, 3, 4), lambda d, m: None)
        service.on_message(1, RBMessage("send", 1, 0, "first"))
        service.on_message(1, RBMessage("send", 1, 0, "second"))
        assert service.delivered == {(1, 0): "first"}
        assert service.equivocations_observed == 1

    def test_still_rejects_third_party_forgeries(self):
        service = NaiveBroadcastService(0, (1, 2, 3, 4), lambda d, m: None)
        service.on_message(2, RBMessage("send", 1, 0, "forged"))
        assert service.quarantined == 1
        assert not service.delivered


# ---------------------------------------------------------------------------
# Snapshot/restore byte-identity with a broadcast mid-flight
# ---------------------------------------------------------------------------
class TestSnapshotMidBroadcast:
    @pytest.mark.parametrize("stack", ["rb_bracha", "rb_dolev"])
    def test_restore_mid_broadcast_is_byte_identical(self, stack):
        spec = ScenarioSpec(
            name=f"rbsnap:{stack}",
            n=5,
            stack=stack,
            workloads=(
                RBBroadcastWorkload(at=20.0, origin=1, payload=("snap", 1)),
                RBBroadcastWorkload(at=21.0, origin=3, payload=("snap", 2)),
            ),
            horizon=45.0,
            probes=(probes.rb_delivered(4_000.0), probes.converged(4_000.0)),
            invariants=(
                probes.rb_agreement_invariant(),
                probes.rb_validity_invariant(),
            ),
            track_convergence=True,
        )
        cold = run_scenario(spec, seed=2)
        assert cold["ok"], cold

        run = prepare(spec, seed=2)
        # Pause between the two broadcasts: the first is mid-flight (echo /
        # fwd rounds in the channels), the second still pending.
        paused = not drive(run, stop_before=20.5)
        assert paused
        warm_run = SimSnapshot.capture(run).restore()
        drive(warm_run)
        warm = finalize(warm_run)

        strip = lambda r: {
            k: v for k, v in copy.deepcopy(r).items() if k != "wall_seconds"
        }
        assert strip(warm) == strip(cold)
