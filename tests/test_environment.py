"""Tests for the time-varying NetworkEnvironment layer.

Covers the directed/leaky/named partition model (per-partition heal, one-way
blocks, leak draws), the link-state layer stack (overlays over overrides
over policies over the default), the late-joiner shaping regression the
refactor fixes (a node joining under ``slow_node``/``delay_skew`` gets
shaped channels in both directions), the dynamic environment programs
selectable through :class:`~repro.scenarios.spec.ScenarioSpec`, and the
``smr_agreement`` invariant's prefix semantics.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis import probes
from repro.audit.schedulers import current_coordinator, get_scheduler
from repro.scenarios import ScenarioSpec, run_scenario
from repro.scenarios.runner import prepare
from repro.sim.network import ChannelConfig
from repro.sim.process import Process
from repro.sim.simulator import Simulator

from tests.conftest import quick_cluster


class _Sink(Process):
    def __init__(self, pid):
        super().__init__(pid=pid, step_interval=1000.0)
        self.received = []

    def on_receive(self, sender, payload):
        self.received.append((sender, payload))


def _two_nodes(seed: int = 1, **channel_kwargs) -> Simulator:
    config = ChannelConfig(min_delay=0.1, max_delay=0.2, **channel_kwargs)
    sim = Simulator(seed=seed, channel_config=config)
    sim.add_process(_Sink(1))
    sim.add_process(_Sink(2))
    return sim


# ---------------------------------------------------------------------------
# Directed, leaky, named partitions
# ---------------------------------------------------------------------------
class TestDirectedPartitions:
    def test_one_way_partition_blocks_single_direction(self):
        sim = _two_nodes()
        sim.environment.partition([1], [2], symmetric=False)
        for _ in range(5):
            sim.send(1, 2, "forward")
            sim.send(2, 1, "reverse")
        sim.run(until=10.0)
        forward = sim.get_process(2).received
        reverse = sim.get_process(1).received
        assert forward == []
        assert len(reverse) == 5

    def test_per_partition_heal(self):
        sim = _two_nodes()
        sim.add_process(_Sink(3))
        env = sim.environment
        first = env.partition([1], [2], name="a")
        env.partition([1], [3], name="b")
        assert env.active_partitions() == ["a", "b"]
        freed = env.heal(first)
        assert freed == 2  # both directions of the 1<->2 split
        assert env.active_partitions() == ["b"]
        sim.send(1, 2, "healed")
        sim.send(1, 3, "still blocked")
        sim.run(until=10.0)
        assert sim.get_process(2).received == [(1, "healed")]
        assert sim.get_process(3).received == []

    def test_heal_unknown_partition_is_noop(self):
        sim = _two_nodes()
        assert sim.environment.heal("nope") == 0

    def test_leaky_partition_passes_some_packets(self):
        sim = _two_nodes(seed=3)
        sim.environment.partition([1], [2], leak=0.3)
        # Spread the sends out so channel capacity never throttles them.
        for i in range(200):
            sim.call_at(float(i), lambda: sim.send(1, 2, "leak?"), label="send")
        sim.run(until=300.0)
        leaked = len(sim.get_process(2).received)
        # A 30% leak over 200 sends: comfortably between "none" and "all".
        assert 20 < leaked < 120

    def test_leak_is_deterministic_per_seed(self):
        def run(seed):
            sim = _two_nodes(seed=seed)
            sim.environment.partition([1], [2], leak=0.2)
            for i in range(100):
                sim.call_at(float(i), lambda i=i: sim.send(1, 2, i), label="send")
            sim.run(until=200.0)
            return [payload for _, payload in sim.get_process(2).received]

        first = run(7)
        assert first == run(7)
        assert 0 < len(first) < 100  # the leak actually filtered

    def test_leak_free_overlapping_partition_wins(self):
        # A packet must leak through EVERY blocking partition; one leak-free
        # blocker therefore drops everything.
        sim = _two_nodes(seed=2)
        sim.environment.partition([1], [2], name="leaky", leak=0.9)
        sim.environment.partition([1], [2], name="wall", leak=0.0)
        for _ in range(50):
            sim.send(1, 2, "x")
        sim.run(until=20.0)
        assert sim.get_process(2).received == []

    def test_invalid_leak_rejected(self):
        sim = _two_nodes()
        from repro.common.errors import SimulationError

        with pytest.raises(SimulationError, match="leak probability"):
            sim.environment.partition([1], [2], leak=1.0)

    def test_fault_injector_directed_partition_and_named_heal(self):
        from repro.sim.faults import FaultInjector

        sim = _two_nodes()
        injector = FaultInjector(sim, seed=2)
        name = injector.partition([1], [2], symmetric=False, leak=0.0)
        assert sim.environment.is_blocked(1, 2)
        assert not sim.environment.is_blocked(2, 1)
        injector.heal(name)
        assert not sim.environment.is_blocked(1, 2)
        kinds = [record.kind for record in injector.records]
        assert kinds == ["partition", "heal"]
        assert injector.records[0].details["name"] == name

    def test_legacy_wrapper_blocks_both_directions_and_heals_all(self):
        sim = _two_nodes()
        network = sim.network
        network.partition([1], [2])
        assert network.is_partitioned(1, 2) and network.is_partitioned(2, 1)
        network.heal_partitions()
        assert not network.is_partitioned(1, 2)
        assert sim.environment.active_partitions() == []

    def test_legacy_heal_does_not_erase_program_partitions(self):
        # A workload's historical heal-all must only heal wrapper-created
        # partitions, never named ones owned by an environment program.
        sim = _two_nodes()
        network = sim.network
        sim.environment.partition([1], [2], name="program:forward", symmetric=False)
        network.partition([1], [2])
        network.heal_partitions()
        assert sim.environment.active_partitions() == ["program:forward"]
        assert sim.environment.is_blocked(1, 2)
        assert not sim.environment.is_blocked(2, 1)


# ---------------------------------------------------------------------------
# Link-state layers: overlays > overrides > policies > default
# ---------------------------------------------------------------------------
class TestLinkStateLayers:
    def test_overlay_wins_and_pop_restores_override(self):
        # Channel configs are *pulled* through the memoized resolve on every
        # ``network.channel()`` access (PR 5), so the current shaping of a
        # pair is read by re-fetching the channel, and a mutation is O(1)
        # instead of a walk over touched channels.
        sim = _two_nodes()
        env = sim.environment
        override = ChannelConfig(min_delay=1.0, max_delay=2.0)
        env.set_link_config(1, 2, override)
        assert sim.network.channel(1, 2).config is override
        overlay = ChannelConfig(min_delay=5.0, max_delay=6.0)
        env.apply_overlay("slow", {(1, 2): overlay})
        assert sim.network.channel(1, 2).config is overlay
        assert env.remove_overlay("slow")
        assert sim.network.channel(1, 2).config is override
        assert not env.remove_overlay("slow")  # idempotent

    def test_policy_shapes_channels_created_later(self):
        sim = _two_nodes()
        shaped = ChannelConfig(min_delay=3.0, max_delay=4.0)
        sim.environment.add_link_policy(
            "test", lambda s, d: shaped if d == 2 else None
        )
        assert sim.network.channel(1, 2).config is shaped
        assert sim.network.channel(2, 1).config is sim.network.default_config

    def test_policy_reshapes_existing_unoverridden_channels(self):
        sim = _two_nodes()
        assert sim.network.channel(1, 2).config is sim.network.default_config
        shaped = ChannelConfig(min_delay=3.0, max_delay=4.0)
        sim.environment.add_link_policy("test", lambda s, d: shaped)
        assert sim.network.channel(1, 2).config is shaped

    def test_transitions_are_recorded_with_time(self):
        sim = _two_nodes()
        env = sim.environment
        sim.call_at(5.0, lambda: env.partition([1], [2], name="p"))
        sim.call_at(9.0, lambda: env.heal("p"))
        sim.run(until=20.0)
        summary = env.summary()
        assert summary["by_kind"] == {"partition": 1, "heal": 1}
        times = {entry["kind"]: entry["time"] for entry in summary["events"]}
        assert times == {"partition": 5.0, "heal": 9.0}


# ---------------------------------------------------------------------------
# Regression: late joiners inherit the active shaping (ISSUE satellite)
# ---------------------------------------------------------------------------
class TestLateJoinerShaping:
    def test_joiner_under_slow_node_gets_shaped_channels_both_directions(self):
        cluster = quick_cluster(4, seed=13)
        get_scheduler("slow_node").install(cluster)
        network = cluster.simulator.network
        base = cluster.config.channel
        victim = next(
            p
            for p in range(4)
            if all(
                network.channel(p, q).config.max_delay > base.max_delay
                for q in range(4)
                if q != p
            )
        )
        joiner = cluster.add_joiner(99)
        for a, b in ((victim, joiner.pid), (joiner.pid, victim)):
            config = network.channel(a, b).config
            assert config.max_delay == pytest.approx(base.max_delay * 10.0)
            assert config.min_delay == pytest.approx(base.min_delay * 10.0)
        # Joiner links not involving the victim stay at the base shape.
        bystander = next(p for p in range(4) if p != victim)
        assert network.channel(joiner.pid, bystander).config.max_delay == pytest.approx(
            base.max_delay
        )

    def test_joiner_under_delay_skew_gets_skewed_channels_both_directions(self):
        cluster = quick_cluster(3, seed=8)
        get_scheduler("delay_skew").install(cluster)
        network = cluster.simulator.network
        base = cluster.config.channel
        cluster.add_joiner(50)
        configs = [network.channel(50, 0).config, network.channel(0, 50).config]
        for config in configs:
            # Skewed: scaled from the base by a per-pair factor (min and max
            # move together), and essentially never exactly the base shape.
            ratio = config.max_delay / base.max_delay
            assert ratio == pytest.approx(config.min_delay / base.min_delay)
            assert 0.5 <= ratio < 8.0
        # Directions draw independent factors.
        assert configs[0].max_delay != configs[1].max_delay

    def test_joiner_shaping_is_deterministic(self):
        shapes = []
        for _ in range(2):
            cluster = quick_cluster(3, seed=21)
            get_scheduler("delay_skew").install(cluster)
            cluster.add_joiner(50)
            network = cluster.simulator.network
            shapes.append(
                (
                    network.channel(50, 1).config.max_delay,
                    network.channel(1, 50).config.max_delay,
                )
            )
        assert shapes[0] == shapes[1]


# ---------------------------------------------------------------------------
# Dynamic environment programs through the scenario engine
# ---------------------------------------------------------------------------
class TestDynamicSchedulers:
    def test_selectable_via_spec_with_params(self):
        spec = ScenarioSpec(
            name="env_partition_leak",
            n=4,
            scheduler="partition_leak",
            scheduler_params=(
                ("at", 10.0), ("flip_at", 20.0), ("heal_at", 30.0), ("leak", 0.2),
            ),
            horizon=40.0,
            probes=(probes.converged(4_000),),
            require_bootstrap=True,
        )
        result = run_scenario(spec, seed=0)
        assert result["ok"]
        env = result["environment"]
        assert env["by_kind"]["partition"] == 2
        assert env["by_kind"]["heal"] == 2
        assert env["active_partitions"] == []

    def test_unknown_scheduler_param_fails_fast(self):
        spec = ScenarioSpec(
            name="env_bad_param",
            n=3,
            scheduler="crash_recovery",
            scheduler_params=(("outage_typo", 1.0),),
            require_bootstrap=False,
        )
        with pytest.raises(TypeError, match="rejected parameters"):
            prepare(spec, seed=0)

    def test_crash_recovery_blackout_blocks_then_heals(self):
        spec = ScenarioSpec(
            name="env_crash_recovery",
            n=4,
            scheduler="crash_recovery",
            scheduler_params=(("start", 10.0), ("period", 15.0), ("outage", 5.0), ("epochs", 2)),
            horizon=50.0,
            probes=(probes.converged(4_000),),
        )
        result = run_scenario(spec, seed=1)
        assert result["ok"]
        env = result["environment"]
        assert env["by_kind"]["partition"] == 2
        assert env["by_kind"]["heal"] == 2

    def test_target_coordinator_targets_the_coordinator(self):
        cluster = quick_cluster(4, seed=5)
        get_scheduler("target_coordinator").install(
            cluster, start=5.0, period=10.0, epochs=2, slow_factor=4.0
        )
        assert cluster.run_until_converged(timeout=4_000)
        cluster.run(until=cluster.simulator.now + 10.0)
        targets = [
            entry["victim"]
            for entry in cluster.environment.summary()["events"]
            if entry["kind"] == "target"
        ]
        assert targets, "the adaptive program never picked a victim"
        # The victim read off the environment log is a plausible coordinator:
        # with the bare stack the proxy is the max alive configuration member.
        assert set(targets) <= set(cluster.nodes)

    def test_current_coordinator_prefers_vs_leader(self):
        spec = ScenarioSpec(
            name="env_vs_leader",
            n=3,
            stack="vs_smr",
            probes=(probes.view_installed(6_000),),
        )
        run = prepare(spec, seed=2)
        from repro.scenarios.runner import execute

        result = execute(run)
        assert result["ok"]
        leader = current_coordinator(run.cluster)
        vs = run.cluster.nodes[leader].service_map["vs"]
        assert vs.is_coordinator()


# ---------------------------------------------------------------------------
# smr_agreement invariant semantics
# ---------------------------------------------------------------------------
class TestSMRAgreementInvariant:
    def _converged_vs_cluster(self):
        spec = ScenarioSpec(
            name="env_smr_inv",
            n=3,
            stack="vs_smr",
            probes=(probes.view_installed(6_000),),
        )
        run = prepare(spec, seed=4)
        from repro.scenarios.runner import execute

        result = execute(run)
        assert result["ok"]
        return run.cluster

    def test_holds_with_follower_lag(self):
        cluster = self._converged_vs_cluster()
        services = [
            node.service_map["vs"]
            for node in cluster.alive_nodes()
            if node.service_map["vs"].view is not None
        ]
        assert probes.smr_histories_agree(cluster)
        # A replica that lags (strict prefix) does not violate agreement.
        services[0]._delivered_history.append((99, "extra"))
        assert probes.smr_histories_agree(cluster)

    def test_divergence_same_view_is_violation(self):
        cluster = self._converged_vs_cluster()
        services = [
            node.service_map["vs"]
            for node in cluster.alive_nodes()
            if node.service_map["vs"].view is not None
        ]
        services[0]._delivered_history.append((99, "fork-a"))
        services[1]._delivered_history.append((99, "fork-b"))
        assert not probes.smr_histories_agree(cluster)

    def test_vacuous_on_stacks_without_vs(self):
        cluster = quick_cluster(3, seed=1)
        assert probes.smr_histories_agree(cluster)

    def test_invariant_by_name_registry(self):
        invariant = probes.invariant_by_name("smr_agreement")
        assert invariant.name == "smr_agreement"
        with pytest.raises(KeyError, match="unknown invariant"):
            probes.invariant_by_name("definitely_not_registered")
