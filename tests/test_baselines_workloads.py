"""Tests for the baselines, workload generators and an end-to-end scenario."""

from __future__ import annotations

import pytest

from repro.baselines.coherent_start import CoherentStartMessage, CoherentStartNode
from repro.baselines.static_replication import StaticMajorityReplication
from repro.common.types import make_config
from repro.sim.simulator import Simulator
from repro.workloads.churn import generate_churn_trace
from repro.workloads.corruption import scramble_cluster, stuff_stale_recma_packets

from tests.conftest import quick_cluster


class TestCoherentStartBaseline:
    def _baseline(self, n=4, seed=5):
        sim = Simulator(seed=seed)
        nodes = {}
        for pid in range(n):
            node = CoherentStartNode(pid, peers=range(n), initial_config=range(n))
            sim.add_process(node)
            nodes[pid] = node
        return sim, nodes

    def test_normal_reconfiguration_propagates(self):
        sim, nodes = self._baseline()
        nodes[0].propose_reconfiguration([0, 1, 2])
        sim.run(until=60.0)
        assert all(node.config == make_config([0, 1, 2]) for node in nodes.values())

    def test_transient_fault_never_recovers(self):
        """The non-self-stabilizing baseline stays split forever (E9)."""
        sim, nodes = self._baseline()
        sim.run(until=20.0)
        # Transient fault: two nodes end up with the same sequence number but
        # different configurations.
        nodes[0].config = make_config([0, 1])
        nodes[0].sequence = 7
        nodes[1].config = make_config([2, 3])
        nodes[1].sequence = 7
        sim.run(until=400.0)
        configs = {node.config for node in nodes.values()}
        assert len(configs) > 1, "baseline must remain permanently split"

    def test_corrupted_sequence_number_sticks(self):
        sim, nodes = self._baseline()
        nodes[2].sequence = 10 ** 9
        nodes[2].config = make_config([2])
        sim.run(until=100.0)
        # The corrupt high sequence number wins everywhere: the fault spreads
        # instead of being repaired.
        assert all(node.config == make_config([2]) for node in nodes.values())


class TestStaticReplicationBaseline:
    def test_available_with_majority(self):
        replica = StaticMajorityReplication([1, 2, 3, 4, 5])
        assert replica.write("x")
        assert replica.read() == "x"
        replica.crash(1)
        replica.crash(2)
        assert replica.has_majority()
        assert replica.write("y")

    def test_unavailable_after_majority_crash(self):
        replica = StaticMajorityReplication([1, 2, 3, 4, 5])
        for pid in (1, 2, 3):
            replica.crash(pid)
        assert not replica.has_majority()
        assert not replica.write("z")
        assert replica.read() is None
        assert replica.failed_operations == 2

    def test_crash_of_non_member_ignored(self):
        replica = StaticMajorityReplication([1, 2, 3])
        replica.crash(99)
        assert replica.alive_members() == make_config([1, 2, 3])


class TestChurnTraces:
    def test_trace_is_reproducible(self):
        a = generate_churn_trace(range(5), duration=100, crash_rate=0.05, join_rate=0.05, seed=3)
        b = generate_churn_trace(range(5), duration=100, crash_rate=0.05, join_rate=0.05, seed=3)
        assert a.events == b.events

    def test_crash_cap_preserves_majority(self):
        trace = generate_churn_trace(range(5), duration=1000, crash_rate=1.0, seed=4)
        assert len(trace.crashes()) <= 2

    def test_events_sorted_by_time(self):
        trace = generate_churn_trace(
            range(4), duration=200, crash_rate=0.05, join_rate=0.1, seed=5
        )
        times = [event.time for event in trace.events]
        assert times == sorted(times)

    def test_install_on_cluster(self):
        cluster = quick_cluster(4, seed=81)
        assert cluster.run_until_converged(timeout=800)
        trace = generate_churn_trace(
            range(4),
            duration=100,
            crash_rate=0.02,
            join_rate=0.02,
            seed=6,
            start_time=cluster.simulator.now,
        )
        trace.install(cluster)
        cluster.run(until=cluster.simulator.now + 150)
        for event in trace.crashes():
            assert cluster.nodes[event.pid].crashed
        for event in trace.joins():
            assert event.pid in cluster.nodes


class TestCorruptionWorkloads:
    def test_scramble_reports_fields(self):
        cluster = quick_cluster(3, seed=82)
        assert cluster.run_until_converged(timeout=800)
        report = scramble_cluster(cluster, seed=1, fraction=0.5)
        assert report["nodes"] >= 1
        assert report["recsa_fields"] > 0

    def test_stuffing_respects_channel_capacity(self):
        cluster = quick_cluster(3, seed=83)
        assert cluster.run_until_converged(timeout=800)
        accepted = stuff_stale_recma_packets(cluster, target=0, count=500, seed=2)
        assert accepted <= 2 * cluster.channel_capacity


class TestEndToEnd:
    def test_full_stack_lifecycle(self):
        """Bootstrap → serve → churn → transient fault → recover → serve."""
        from repro.vs.virtual_synchrony import VSStatus

        cluster = quick_cluster(4, seed=84, stack="shared_register")
        vss = cluster.services("vs")
        registers = cluster.services("register")

        assert cluster.run_until_converged(timeout=800)
        assert cluster.run_until(
            lambda: any(
                vs.view is not None and vs.status is VSStatus.MULTICAST and vs.is_coordinator()
                for vs in vss.values()
            ),
            timeout=4000,
        )
        registers[0].write("epoch-1")
        assert cluster.run_until(
            lambda: all(
                registers[pid].read() == "epoch-1"
                for pid in cluster.nodes
                if not cluster.nodes[pid].crashed
            ),
            timeout=400,
        )
        # Minority crash plus a transient recSA corruption.
        cluster.crash(3)
        scramble_cluster(cluster, seed=9, fraction=0.4)
        assert cluster.run_until_converged(timeout=6000)
        # The service keeps working after recovery.
        alive = [pid for pid in cluster.nodes if not cluster.nodes[pid].crashed]
        assert cluster.run_until(
            lambda: any(
                vss[pid].view is not None
                and vss[pid].status is VSStatus.MULTICAST
                and vss[pid].is_coordinator()
                for pid in alive
            ),
            timeout=6000,
        )
        writer = alive[0]
        registers[writer].write("epoch-2")
        assert cluster.run_until(
            lambda: all(registers[pid].read() == "epoch-2" for pid in alive),
            timeout=600,
        )
