"""In-tree PEP 517 build backend shim.

The evaluation image has no network access, so pip's default build isolation
cannot download ``setuptools``/``wheel`` into the isolated build environment.
This shim declares an empty ``requires`` list in ``pyproject.toml`` (so pip
has nothing to download) and re-exports the setuptools backend from the host
environment, which it makes importable by appending the interpreter's
site-packages directories to ``sys.path``.

With a normal, network-connected pip this shim behaves identically to using
``setuptools.build_meta`` directly.
"""

import sys
import sysconfig


def _ensure_host_site_packages() -> None:
    for key in ("purelib", "platlib"):
        path = sysconfig.get_paths().get(key)
        if path and path not in sys.path:
            sys.path.append(path)


_ensure_host_site_packages()

from setuptools.build_meta import *  # noqa: E402,F401,F403
from setuptools.build_meta import (  # noqa: E402,F401
    build_editable,
    build_sdist,
    build_wheel,
    prepare_metadata_for_build_editable,
    prepare_metadata_for_build_wheel,
)


def get_requires_for_build_wheel(config_settings=None):  # noqa: D103
    # setuptools normally asks pip to install ``wheel`` into the isolated
    # build environment; the host environment already provides it and the
    # shim exposes the host's site-packages, so no extra requirements.
    return []


def get_requires_for_build_sdist(config_settings=None):  # noqa: D103
    return []


def get_requires_for_build_editable(config_settings=None):  # noqa: D103
    return []
