"""Common types, errors and helpers shared by every subsystem."""

from repro.common.types import (
    ProcessId,
    Configuration,
    NOT_PARTICIPANT,
    BOTTOM,
    Phase,
    Proposal,
    DEFAULT_PROPOSAL,
)
from repro.common.errors import (
    ReproError,
    SimulationError,
    ChannelFullError,
    InvariantViolation,
    NotParticipantError,
    ReconfigurationInProgress,
)

__all__ = [
    "ProcessId",
    "Configuration",
    "NOT_PARTICIPANT",
    "BOTTOM",
    "Phase",
    "Proposal",
    "DEFAULT_PROPOSAL",
    "ReproError",
    "SimulationError",
    "ChannelFullError",
    "InvariantViolation",
    "NotParticipantError",
    "ReconfigurationInProgress",
]
