"""Structured, simulation-time-aware logging helpers.

The simulator has its own notion of time, so log records carry the simulated
timestamp of the step that produced them rather than wall-clock time.  Logging
is off by default (benchmarks run millions of events); tests and examples can
enable it per run via :func:`enable_trace`.
"""

from __future__ import annotations

import logging
from typing import Optional

_LOGGER_NAME = "repro"


def get_logger(child: Optional[str] = None) -> logging.Logger:
    """Return the package logger, optionally a named child of it."""
    name = _LOGGER_NAME if child is None else f"{_LOGGER_NAME}.{child}"
    return logging.getLogger(name)


def enable_trace(level: int = logging.DEBUG) -> None:
    """Enable console logging for the whole package at *level*."""
    logger = get_logger()
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(name)s %(levelname)s %(message)s"))
        logger.addHandler(handler)


def disable_trace() -> None:
    """Disable package logging (the default for benchmarks)."""
    logger = get_logger()
    logger.setLevel(logging.CRITICAL + 1)
