"""Deterministic random-source helpers.

Every stochastic decision in the simulation (channel loss, duplication,
reordering, scheduling jitter, fault-injection targets) is drawn from a
:class:`random.Random` instance seeded explicitly, so that a run is fully
reproducible from ``(topology, workload, seed)``.

The helpers here derive independent sub-streams from a root seed so that, for
example, adding an extra channel does not perturb the loss pattern of the
existing ones.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def derive_seed(root_seed: int, *components: object) -> int:
    """Derive a stable 64-bit sub-seed from *root_seed* and a component path.

    The derivation hashes the textual representation of the components, so
    ``derive_seed(1, "channel", 2, 3)`` is stable across runs and Python
    versions (unlike ``hash()`` which is salted for strings).
    """
    digest = hashlib.sha256()
    digest.update(str(root_seed).encode("utf-8"))
    for component in components:
        digest.update(b"/")
        digest.update(repr(component).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def make_rng(root_seed: int, *components: object) -> random.Random:
    """Return a :class:`random.Random` seeded with a derived sub-seed."""
    return random.Random(derive_seed(root_seed, *components))


def seed_stream(root_seed: int, label: str) -> Iterator[int]:
    """Yield an infinite stream of derived seeds labelled *label*."""
    index = 0
    while True:
        yield derive_seed(root_seed, label, index)
        index += 1
