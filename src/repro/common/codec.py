"""Wire codec: a self-describing encoding for every protocol message.

The discrete-event simulator passes Python objects between processes by
reference, so the protocol layers never needed a wire format.  The real
runtime backend (:mod:`repro.runtime`) sends the same messages over UDP
sockets, which requires every wire dataclass — recSA cores and deltas, recMA
flags, data-link tokens, reliable-broadcast packets, counter/label gossip,
VS state records, SMR commands — to survive an encode→decode round trip.

Design
------
* **Wire-type registry.**  Each message dataclass registers itself with the
  :func:`wire_type` decorator at definition site (the registry maps a stable
  wire name to the class and back).  Sentinel singletons (``⊥``,
  ``NOT_PARTICIPANT``) and enums (``Phase``, ``VSStatus``) register through
  :func:`register_singleton` / :func:`wire_enum`.  Nothing outside the
  registry ever decodes into an object with behaviour — an attacker cannot
  instantiate arbitrary classes (this is deliberately *not* pickle).
* **Tagged recursive encoding.**  JSON scalars pass through; every container
  and registered type encodes as ``{"%": tag, ...}`` so decoding is
  unambiguous: tuples, frozensets, sets, dicts with non-string keys and
  ``mappingproxy`` views (copy-on-write SMR snapshots) all round-trip.
  Frozenset elements are sorted by their encoded representation, so equal
  values encode to identical bytes regardless of iteration order.
* **Length-prefixed framing with a format discriminator.**  :func:`frame`
  prefixes the body with a 4-byte big-endian length; the first body byte is
  a one-byte wire-format discriminator (``B`` = binary, ``J`` = tagged
  JSON), so both formats interoperate on the same socket and a receiver can
  reject oversized or truncated input before parsing.
* **Binary fast path.**  The tagged-JSON encoding is self-describing but
  pays dict-building plus ``json.dumps``/``loads`` per datagram.  The
  binary format (PR 9) encodes the same object graph as compact
  opcode-prefixed bytes: per-dataclass *precompiled flat encoders* (field
  list resolved at registry build time, fields positional on the wire) plus
  a per-dataclass *precompiled* ``struct`` *fast path* for all-integer
  message snapshots (one ``>q``-per-field pack instead of per-field
  recursion).  Type/enum/singleton identifiers are indices into the sorted
  registry, so both sides of a connection that import the same message
  modules agree on them.  ``decode_binary(encode_binary(x))`` equals
  ``decode(encode(x))`` for every encodable value — pinned property-style
  in ``tests/test_codec.py``.  The JSON path remains the fallback and the
  fuzz target.
* **Graceful rejection.**  Malformed input — truncated frames, unknown tags
  or opcodes, wrong field sets, over-deep nesting — raises
  :class:`CodecError`, never anything else.  Receivers (the runtime
  transport, the conformance tests) catch that one type and quarantine,
  mirroring how
  :func:`repro.datalink.reliable_broadcast.validate_rb_message` handles
  schema-valid-but-out-of-bounds Byzantine input one layer up.
"""

from __future__ import annotations

import dataclasses
import json
import struct
import types
from enum import Enum
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.common.errors import ReproError


class CodecError(ReproError):
    """Input that cannot be encoded to — or decoded from — the wire format."""


#: Hard cap on one frame's body (bytes).  Every honest message in the stack
#: is a few KiB even at large n; anything bigger is a hostile or corrupted
#: frame and is rejected before JSON parsing allocates for it.
MAX_FRAME_BYTES = 1 << 20

#: Maximum nesting depth of the encoded object graph.  Honest messages nest
#: a handful of levels (message → pair → label → frozenset); a deeply nested
#: bomb is rejected instead of recursing toward the interpreter limit.
MAX_DEPTH = 32

#: The length prefix: 4-byte big-endian unsigned body length.
_LEN = struct.Struct(">I")

#: Wire-format discriminator bytes: the first byte of every frame body.
FORMAT_BINARY = 0x42  # 'B'
FORMAT_JSON = 0x4A  # 'J'

_TYPES: Dict[str, Type[Any]] = {}
_TYPE_NAMES: Dict[Type[Any], str] = {}
_TYPE_FIELDS: Dict[str, Tuple[str, ...]] = {}
_SINGLETONS: Dict[str, Any] = {}
_SINGLETON_IDS: Dict[int, str] = {}
_ENUMS: Dict[str, Type[Enum]] = {}


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def wire_type(cls: Optional[type] = None, *, name: Optional[str] = None):
    """Class decorator registering a dataclass as a wire type.

    The wire name defaults to the class name; it becomes part of the wire
    format, so renaming a registered class without keeping ``name=`` is a
    protocol change.  Apply *above* ``@dataclass`` (the decorator inspects
    dataclass fields).
    """

    def register(klass: type) -> type:
        wire_name = name or klass.__name__
        if not dataclasses.is_dataclass(klass):
            raise CodecError(f"wire type {wire_name!r} must be a dataclass")
        existing = _TYPES.get(wire_name)
        if existing is not None and existing is not klass:
            raise CodecError(f"wire type name {wire_name!r} already registered")
        _TYPES[wire_name] = klass
        _TYPE_NAMES[klass] = wire_name
        _TYPE_FIELDS[wire_name] = tuple(
            f.name for f in dataclasses.fields(klass) if f.init
        )
        _invalidate_binary_tables()
        return klass

    if cls is not None:
        return register(cls)
    return register


def register_singleton(name: str, value: Any) -> Any:
    """Register a sentinel singleton (encoded by identity, decoded to it)."""
    existing = _SINGLETONS.get(name)
    if existing is not None and existing is not value:
        raise CodecError(f"singleton name {name!r} already registered")
    _SINGLETONS[name] = value
    _SINGLETON_IDS[id(value)] = name
    _invalidate_binary_tables()
    return value


def wire_enum(cls: Type[Enum]) -> Type[Enum]:
    """Class decorator registering an enum as a wire type (by value)."""
    name = cls.__name__
    existing = _ENUMS.get(name)
    if existing is not None and existing is not cls:
        raise CodecError(f"wire enum name {name!r} already registered")
    _ENUMS[name] = cls
    _invalidate_binary_tables()
    return cls


def registered_wire_types() -> Dict[str, Type[Any]]:
    """Snapshot of the dataclass registry (used by the round-trip tests)."""
    _ensure_registered()
    return dict(_TYPES)


def _ensure_registered() -> None:
    """Import every module that defines wire types.

    Registration happens at class-definition site; this pulls those modules
    in so a process that only imported the codec (the runtime transport, the
    tests) still knows the full message vocabulary.
    """
    import repro.common.types  # noqa: F401  (sentinels, Phase, Proposal)
    import repro.datalink.token_exchange  # noqa: F401
    import repro.datalink.reliable_broadcast  # noqa: F401
    import repro.core.recsa  # noqa: F401
    import repro.core.recma  # noqa: F401
    import repro.core.joining  # noqa: F401
    import repro.counters.counter  # noqa: F401
    import repro.counters.service  # noqa: F401
    import repro.labels.label  # noqa: F401
    import repro.labels.labeling  # noqa: F401
    import repro.vs.view  # noqa: F401
    import repro.vs.virtual_synchrony  # noqa: F401
    import repro.baselines.coherent_start  # noqa: F401


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------
def _encode(value: Any, depth: int) -> Any:
    if depth > MAX_DEPTH:
        raise CodecError("object graph too deep to encode")
    # Enums before scalars: an IntEnum member (e.g. Phase.IDLE) *is* an int,
    # but must round-trip as the enum member, not its value — downstream code
    # compares by identity (``prp.phase is Phase.IDLE``).
    if isinstance(value, Enum):
        name = type(value).__name__
        if name not in _ENUMS:
            raise CodecError(f"unregistered enum {name!r}")
        return {"%": "enum", "t": name, "v": _encode(value.value, depth + 1)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    singleton = _SINGLETON_IDS.get(id(value))
    if singleton is not None:
        return {"%": "one", "t": singleton}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = _TYPE_NAMES.get(type(value))
        if name is None:
            raise CodecError(f"unregistered wire type {type(value).__name__!r}")
        fields = {
            f: _encode(getattr(value, f), depth + 1) for f in _TYPE_FIELDS[name]
        }
        return {"%": "dc", "t": name, "f": fields}
    if isinstance(value, tuple):
        return {"%": "tuple", "v": [_encode(v, depth + 1) for v in value]}
    if isinstance(value, list):
        return {"%": "list", "v": [_encode(v, depth + 1) for v in value]}
    if isinstance(value, (frozenset, set)):
        encoded = [_encode(v, depth + 1) for v in value]
        # Canonical element order: equal sets encode to identical bytes.
        encoded.sort(key=lambda item: json.dumps(item, sort_keys=True))
        tag = "fset" if isinstance(value, frozenset) else "set"
        return {"%": tag, "v": encoded}
    if isinstance(value, (dict, types.MappingProxyType)):
        return {
            "%": "dict",
            "v": [
                [_encode(k, depth + 1), _encode(v, depth + 1)]
                for k, v in value.items()
            ],
        }
    raise CodecError(f"cannot encode {type(value).__name__!r} value")


def _decode(value: Any, depth: int) -> Any:
    if depth > MAX_DEPTH:
        raise CodecError("encoded graph too deep to decode")
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if not isinstance(value, dict):
        raise CodecError(f"unexpected wire element {type(value).__name__!r}")
    tag = value.get("%")
    if tag == "dc":
        name = value.get("t")
        cls = _TYPES.get(name) if isinstance(name, str) else None
        if cls is None:
            raise CodecError(f"unknown wire type {name!r}")
        fields = value.get("f")
        if not isinstance(fields, dict) or not all(
            isinstance(k, str) for k in fields
        ):
            raise CodecError(f"malformed fields for wire type {name!r}")
        if not set(fields) <= set(_TYPE_FIELDS[name]):
            raise CodecError(f"unknown fields for wire type {name!r}")
        decoded = {k: _decode(v, depth + 1) for k, v in fields.items()}
        try:
            return cls(**decoded)
        except (TypeError, ValueError) as exc:
            raise CodecError(f"cannot construct {name!r}: {exc}") from None
    if tag == "one":
        name = value.get("t")
        if name not in _SINGLETONS:
            raise CodecError(f"unknown singleton {name!r}")
        return _SINGLETONS[name]
    if tag == "enum":
        name = value.get("t")
        cls = _ENUMS.get(name) if isinstance(name, str) else None
        if cls is None:
            raise CodecError(f"unknown wire enum {name!r}")
        try:
            return cls(_decode(value.get("v"), depth + 1))
        except ValueError as exc:
            raise CodecError(f"bad {name!r} value: {exc}") from None
    if tag in ("tuple", "list", "fset", "set"):
        items = value.get("v")
        if not isinstance(items, list):
            raise CodecError(f"malformed {tag!r} container")
        decoded_items = [_decode(v, depth + 1) for v in items]
        if tag == "tuple":
            return tuple(decoded_items)
        if tag == "list":
            return decoded_items
        try:
            return frozenset(decoded_items) if tag == "fset" else set(decoded_items)
        except TypeError as exc:
            raise CodecError(f"unhashable {tag!r} element: {exc}") from None
    if tag == "dict":
        items = value.get("v")
        if not isinstance(items, list) or not all(
            isinstance(pair, list) and len(pair) == 2 for pair in items
        ):
            raise CodecError("malformed dict container")
        try:
            return {
                _decode(k, depth + 1): _decode(v, depth + 1) for k, v in items
            }
        except TypeError as exc:
            raise CodecError(f"unhashable dict key: {exc}") from None
    raise CodecError(f"unknown wire tag {tag!r}")


def encode(value: Any) -> Any:
    """Encode *value* into the JSON-safe tagged representation."""
    _ensure_registered()
    return _encode(value, 0)


def decode(value: Any) -> Any:
    """Decode a tagged representation back into Python objects.

    Raises :class:`CodecError` on any malformed input; never anything else.
    """
    _ensure_registered()
    return _decode(value, 0)


# ---------------------------------------------------------------------------
# Binary fast path
# ---------------------------------------------------------------------------
# Opcodes of the binary wire format.  Containers carry an element count;
# integers are zigzag varints; strings are length-prefixed UTF-8.
_OP_NONE = 0x00
_OP_TRUE = 0x01
_OP_FALSE = 0x02
_OP_INT = 0x03
_OP_FLOAT = 0x04
_OP_STR = 0x05
_OP_TUPLE = 0x06
_OP_LIST = 0x07
_OP_SET = 0x08
_OP_FSET = 0x09
_OP_DICT = 0x0A
_OP_DC = 0x0B  # dataclass: type id + per-field values (registry order)
_OP_DCQ = 0x0C  # dataclass, all-int struct fast path: type id + n * '>q'
_OP_ENUM = 0x0D
_OP_ONE = 0x0E  # sentinel singleton

_F8 = struct.Struct(">d")

#: Lazily built binary tables (sorted-registry ids + precompiled encoders).
#: Rebuilt whenever a registration lands after the first build, so the ids
#: stay a pure function of the (import-complete) registry contents.
_BIN_TABLES: Optional[Dict[str, Any]] = None

# Hot-path aliases of the tables, kept as module globals so the per-value
# encode/decode loops pay one dict lookup instead of a tables-dict hop.
# Mutated in place by the builder; cleared (not rebound) on invalidation so
# every reference observes the reset.
_BIN_DISPATCH: Dict[type, Any] = {}
_BIN_DC_BY_ID: List[Tuple[type, Tuple[str, ...], Optional[struct.Struct], Any]] = []
_BIN_ENUMS_BY_ID: List[type] = []
_BIN_ONES_BY_ID: List[Any] = []


def _invalidate_binary_tables() -> None:
    global _BIN_TABLES
    _BIN_TABLES = None
    _BIN_DISPATCH.clear()
    del _BIN_DC_BY_ID[:]
    del _BIN_ENUMS_BY_ID[:]
    del _BIN_ONES_BY_ID[:]


def _append_uvarint(buf: bytearray, n: int) -> None:
    while n > 0x7F:
        buf.append((n & 0x7F) | 0x80)
        n >>= 7
    buf.append(n)


def _append_int(buf: bytearray, n: int) -> None:
    # Zigzag so small negatives stay small on the wire.
    zz = (n << 1) if n >= 0 else ((-n << 1) - 1)
    buf.append(_OP_INT)
    while zz > 0x7F:
        buf.append((zz & 0x7F) | 0x80)
        zz >>= 7
    buf.append(zz)


def _int_fields(cls: type, fields: Tuple[str, ...]) -> bool:
    """True when every dataclass field is annotated as a plain integer.

    Annotation strings (PEP 563 modules) are matched textually: only the
    shapes that mean "always an int on an honest node" qualify the type for
    the ``_OP_DCQ`` struct fast path.  The fast path additionally guards
    every *value* at encode time, so a lying annotation degrades to the
    generic flat encoder instead of mis-encoding.
    """
    int_names = {"int", "ProcessId"}
    for field in dataclasses.fields(cls):
        if not field.init:
            continue
        annotation = field.type if isinstance(field.type, str) else getattr(
            field.type, "__name__", ""
        )
        if annotation not in int_names:
            return False
    return bool(fields)


def _build_binary_tables() -> Dict[str, Any]:
    """Assign sorted-registry ids and precompile per-dataclass encoders."""
    _ensure_registered()
    dc_names = sorted(_TYPES)
    enum_names = sorted(_ENUMS)
    one_names = sorted(_SINGLETONS)
    dc_ids = {name: i for i, name in enumerate(dc_names)}
    enum_ids = {name: i for i, name in enumerate(enum_names)}
    one_ids = {name: i for i, name in enumerate(one_names)}

    def make_ctor(cls: type, fields: Tuple[str, ...]) -> Any:
        """A decode-side constructor that skips the frozen-init machinery.

        Wire dataclasses are plain (non-slots) frozen dataclasses, so an
        instance is its ``__dict__``; building it directly is ~3× cheaper
        than ``cls(*values)`` (which routes every field through
        ``object.__setattr__``).  Types with a ``__post_init__`` keep the
        real constructor so their validation still runs.
        """
        if hasattr(cls, "__post_init__") or hasattr(cls, "__slots__"):
            return None
        new = cls.__new__

        def ctor(values: Tuple[Any, ...]) -> Any:
            obj = new(cls)
            obj.__dict__.update(zip(fields, values))
            return obj

        return ctor

    dc_by_id = []
    for name in dc_names:
        cls = _TYPES[name]
        fields = _TYPE_FIELDS[name]
        qstruct = (
            struct.Struct(">%dq" % len(fields)) if _int_fields(cls, fields) else None
        )
        dc_by_id.append((cls, fields, qstruct, make_ctor(cls, fields)))

    dispatch: Dict[type, Any] = {}

    def make_dc_encoder(name: str) -> Any:
        type_id = dc_ids[name]
        cls, fields, qstruct, _ctor = dc_by_id[type_id]
        header = bytearray()
        header.append(_OP_DC)
        _append_uvarint(header, type_id)
        flat_header = bytes(header)
        if qstruct is None:

            def encode_flat(buf: bytearray, value: Any, depth: int) -> None:
                if depth > MAX_DEPTH:
                    raise CodecError("object graph too deep to encode")
                buf += flat_header
                for field in fields:
                    _bin_encode(buf, getattr(value, field), depth + 1)

            return encode_flat

        qheader = bytearray()
        qheader.append(_OP_DCQ)
        _append_uvarint(qheader, type_id)
        qflat = bytes(qheader)
        lo, hi = -(1 << 63), 1 << 63

        def encode_struct(buf: bytearray, value: Any, depth: int) -> None:
            if depth > MAX_DEPTH:
                raise CodecError("object graph too deep to encode")
            values = tuple(getattr(value, field) for field in fields)
            for item in values:
                if type(item) is not int or not (lo <= item < hi):
                    # Corrupted / exotic value: fall back to the flat layout.
                    buf += flat_header
                    for field in fields:
                        _bin_encode(buf, getattr(value, field), depth + 1)
                    return
            buf += qflat
            buf += qstruct.pack(*values)

        return encode_struct

    for name in dc_names:
        dispatch[_TYPES[name]] = make_dc_encoder(name)

    def make_enum_encoder(name: str) -> Any:
        header = bytearray()
        header.append(_OP_ENUM)
        _append_uvarint(header, enum_ids[name])
        prefix = bytes(header)

        def encode_enum(buf: bytearray, value: Any, depth: int) -> None:
            buf += prefix
            _bin_encode(buf, value.value, depth + 1)

        return encode_enum

    for name in enum_names:
        dispatch[_ENUMS[name]] = make_enum_encoder(name)

    _BIN_DISPATCH.clear()
    _BIN_DISPATCH.update(dispatch)
    _BIN_DC_BY_ID[:] = dc_by_id
    _BIN_ENUMS_BY_ID[:] = [_ENUMS[name] for name in enum_names]
    _BIN_ONES_BY_ID[:] = [_SINGLETONS[name] for name in one_names]
    return {
        "dc_ids": dc_ids,
        "dc_by_id": dc_by_id,
        "enum_ids": enum_ids,
        "enums_by_id": _BIN_ENUMS_BY_ID,
        "one_ids": one_ids,
        "ones_by_id": _BIN_ONES_BY_ID,
        "dispatch": dispatch,
    }


def _binary_tables() -> Dict[str, Any]:
    global _BIN_TABLES
    tables = _BIN_TABLES
    if tables is None:
        tables = _BIN_TABLES = _build_binary_tables()
    return tables


def _bin_encode(buf: bytearray, value: Any, depth: int) -> None:
    if depth > MAX_DEPTH:
        raise CodecError("object graph too deep to encode")
    cls = value.__class__
    if cls is int:
        _append_int(buf, value)
        return
    if cls is str:
        raw = value.encode("utf-8")
        buf.append(_OP_STR)
        _append_uvarint(buf, len(raw))
        buf += raw
        return
    if value is None:
        buf.append(_OP_NONE)
        return
    if cls is bool:
        buf.append(_OP_TRUE if value else _OP_FALSE)
        return
    if cls is float:
        buf.append(_OP_FLOAT)
        buf += _F8.pack(value)
        return
    encoder = _BIN_DISPATCH.get(cls)
    if encoder is not None:
        encoder(buf, value, depth)
        return
    if cls is tuple or cls is list:
        buf.append(_OP_TUPLE if cls is tuple else _OP_LIST)
        _append_uvarint(buf, len(value))
        for item in value:
            _bin_encode(buf, item, depth + 1)
        return
    if cls is frozenset or cls is set:
        # Canonical element order: equal sets encode to identical bytes.
        encoded = []
        for item in value:
            piece = bytearray()
            _bin_encode(piece, item, depth + 1)
            encoded.append(bytes(piece))
        encoded.sort()
        buf.append(_OP_FSET if cls is frozenset else _OP_SET)
        _append_uvarint(buf, len(encoded))
        for piece in encoded:
            buf += piece
        return
    if cls is dict or cls is types.MappingProxyType:
        buf.append(_OP_DICT)
        _append_uvarint(buf, len(value))
        for key, item in value.items():
            _bin_encode(buf, key, depth + 1)
            _bin_encode(buf, item, depth + 1)
        return
    singleton = _SINGLETON_IDS.get(id(value))
    if singleton is not None:
        buf.append(_OP_ONE)
        _append_uvarint(buf, _binary_tables()["one_ids"][singleton])
        return
    if isinstance(value, Enum):
        raise CodecError(f"unregistered enum {cls.__name__!r}")
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        raise CodecError(f"unregistered wire type {cls.__name__!r}")
    raise CodecError(f"cannot encode {cls.__name__!r} value")


def encode_binary(value: Any) -> bytes:
    """Encode *value* to the compact binary body (no discriminator/frame)."""
    _binary_tables()
    buf = bytearray()
    _bin_encode(buf, value, 0)
    return bytes(buf)


def _read_uvarint(data: bytes, i: int, end: int) -> Tuple[int, int]:
    shift = 0
    result = 0
    while True:
        if i >= end:
            raise CodecError("truncated varint")
        byte = data[i]
        i += 1
        result |= (byte & 0x7F) << shift
        if byte < 0x80:
            return result, i
        shift += 7


def _bin_decode(data: bytes, i: int, end: int, depth: int) -> Tuple[Any, int]:
    if depth > MAX_DEPTH:
        raise CodecError("encoded graph too deep to decode")
    if i >= end:
        raise CodecError("truncated binary body")
    op = data[i]
    i += 1
    if op == _OP_INT:
        # Inlined zigzag-uvarint read: integers dominate every message, so
        # this branch skips the helper-call overhead.
        zz = 0
        shift = 0
        while True:
            if i >= end:
                raise CodecError("truncated varint")
            byte = data[i]
            i += 1
            zz |= (byte & 0x7F) << shift
            if byte < 0x80:
                break
            shift += 7
        return (zz >> 1) if not (zz & 1) else -((zz + 1) >> 1), i
    if op == _OP_DC or op == _OP_DCQ:
        type_id, i = _read_uvarint(data, i, end)
        dc_by_id = _BIN_DC_BY_ID
        if type_id >= len(dc_by_id):
            raise CodecError(f"unknown binary wire type id {type_id}")
        cls, fields, qstruct, ctor = dc_by_id[type_id]
        if op == _OP_DCQ:
            if qstruct is None:
                raise CodecError(
                    f"type {cls.__name__!r} has no struct fast path"
                )
            if i + qstruct.size > end:
                raise CodecError("truncated struct-packed dataclass")
            values: Tuple[Any, ...] = qstruct.unpack_from(data, i)
            i += qstruct.size
        else:
            decoded = []
            for _ in fields:
                item, i = _bin_decode(data, i, end, depth + 1)
                decoded.append(item)
            values = tuple(decoded)
        if ctor is not None:
            # Arity is fixed by the field loop above, so the precompiled
            # constructor cannot mis-build; validation-free types only.
            return ctor(values), i
        try:
            return cls(*values), i
        except (TypeError, ValueError) as exc:
            raise CodecError(
                f"cannot construct {cls.__name__!r}: {exc}"
            ) from None
    if op == _OP_STR:
        length, i = _read_uvarint(data, i, end)
        if i + length > end:
            raise CodecError("truncated string")
        try:
            return data[i : i + length].decode("utf-8"), i + length
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 string: {exc}") from None
    if op == _OP_NONE:
        return None, i
    if op == _OP_TRUE:
        return True, i
    if op == _OP_FALSE:
        return False, i
    if op == _OP_FLOAT:
        if i + 8 > end:
            raise CodecError("truncated float")
        return _F8.unpack_from(data, i)[0], i + 8
    if op == _OP_ENUM:
        enum_id, i = _read_uvarint(data, i, end)
        enums = _BIN_ENUMS_BY_ID
        if enum_id >= len(enums):
            raise CodecError(f"unknown binary enum id {enum_id}")
        raw, i = _bin_decode(data, i, end, depth + 1)
        try:
            return enums[enum_id](raw), i
        except (TypeError, ValueError) as exc:
            raise CodecError(f"bad enum value: {exc}") from None
    if op == _OP_ONE:
        one_id, i = _read_uvarint(data, i, end)
        ones = _BIN_ONES_BY_ID
        if one_id >= len(ones):
            raise CodecError(f"unknown binary singleton id {one_id}")
        return ones[one_id], i
    if op in (_OP_TUPLE, _OP_LIST, _OP_SET, _OP_FSET):
        count, i = _read_uvarint(data, i, end)
        if count > end - i:
            # Every element costs at least one byte; a larger claim is a
            # hostile count and must not drive allocation.
            raise CodecError("container count exceeds remaining bytes")
        items = []
        for _ in range(count):
            item, i = _bin_decode(data, i, end, depth + 1)
            items.append(item)
        if op == _OP_TUPLE:
            return tuple(items), i
        if op == _OP_LIST:
            return items, i
        try:
            return (frozenset(items) if op == _OP_FSET else set(items)), i
        except TypeError as exc:
            raise CodecError(f"unhashable set element: {exc}") from None
    if op == _OP_DICT:
        count, i = _read_uvarint(data, i, end)
        if count * 2 > end - i:
            raise CodecError("dict count exceeds remaining bytes")
        result: Dict[Any, Any] = {}
        try:
            for _ in range(count):
                key, i = _bin_decode(data, i, end, depth + 1)
                item, i = _bin_decode(data, i, end, depth + 1)
                result[key] = item
        except TypeError as exc:
            raise CodecError(f"unhashable dict key: {exc}") from None
        return result, i
    raise CodecError(f"unknown binary opcode 0x{op:02X}")


def decode_binary(data: bytes) -> Any:
    """Decode one binary body (raises :class:`CodecError` on anything bad)."""
    _binary_tables()
    value, consumed = _bin_decode(data, 0, len(data), 0)
    if consumed != len(data):
        raise CodecError("trailing bytes after binary value")
    return value


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------
def frame_json(value: Any) -> bytes:
    """Serialize *value* to one length-prefixed tagged-JSON wire frame."""
    body = json.dumps(encode(value), separators=(",", ":")).encode("utf-8")
    if len(body) + 1 > MAX_FRAME_BYTES:
        raise CodecError(f"frame body of {len(body)} bytes exceeds the cap")
    return _LEN.pack(len(body) + 1) + bytes((FORMAT_JSON,)) + body


def frame(value: Any) -> bytes:
    """Serialize *value* to one length-prefixed wire frame (binary format)."""
    body = encode_binary(value)
    if len(body) + 1 > MAX_FRAME_BYTES:
        raise CodecError(f"frame body of {len(body)} bytes exceeds the cap")
    return _LEN.pack(len(body) + 1) + bytes((FORMAT_BINARY,)) + body


def unframe(data: bytes) -> Tuple[Any, int]:
    """Decode one frame from the head of *data* (either wire format).

    Returns ``(value, bytes_consumed)``; raises :class:`CodecError` when the
    prefix is truncated, the body is incomplete or oversized, the format
    discriminator is unknown, or the body is malformed.  Stream callers keep
    the tail for the next frame; datagram callers require
    ``bytes_consumed == len(data)``.
    """
    if len(data) < _LEN.size:
        raise CodecError("truncated frame: missing length prefix")
    (length,) = _LEN.unpack_from(data)
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"frame length {length} exceeds the cap")
    if length < 1:
        raise CodecError("empty frame body")
    end = _LEN.size + length
    if len(data) < end:
        raise CodecError("truncated frame: incomplete body")
    fmt = data[_LEN.size]
    body = data[_LEN.size + 1 : end]
    if fmt == FORMAT_BINARY:
        return decode_binary(body), end
    if fmt == FORMAT_JSON:
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"frame body is not valid JSON: {exc}") from None
        return decode(parsed), end
    raise CodecError(f"unknown wire format discriminator 0x{fmt:02X}")


def roundtrip(value: Any) -> Any:
    """``unframe(frame(value))`` — the property the codec tests pin."""
    decoded, _ = unframe(frame(value))
    return decoded
