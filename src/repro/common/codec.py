"""Wire codec: a self-describing encoding for every protocol message.

The discrete-event simulator passes Python objects between processes by
reference, so the protocol layers never needed a wire format.  The real
runtime backend (:mod:`repro.runtime`) sends the same messages over UDP
sockets, which requires every wire dataclass — recSA cores and deltas, recMA
flags, data-link tokens, reliable-broadcast packets, counter/label gossip,
VS state records, SMR commands — to survive an encode→decode round trip.

Design
------
* **Wire-type registry.**  Each message dataclass registers itself with the
  :func:`wire_type` decorator at definition site (the registry maps a stable
  wire name to the class and back).  Sentinel singletons (``⊥``,
  ``NOT_PARTICIPANT``) and enums (``Phase``, ``VSStatus``) register through
  :func:`register_singleton` / :func:`wire_enum`.  Nothing outside the
  registry ever decodes into an object with behaviour — an attacker cannot
  instantiate arbitrary classes (this is deliberately *not* pickle).
* **Tagged recursive encoding.**  JSON scalars pass through; every container
  and registered type encodes as ``{"%": tag, ...}`` so decoding is
  unambiguous: tuples, frozensets, sets, dicts with non-string keys and
  ``mappingproxy`` views (copy-on-write SMR snapshots) all round-trip.
  Frozenset elements are sorted by their encoded representation, so equal
  values encode to identical bytes regardless of iteration order.
* **Length-prefixed framing.**  :func:`frame` prefixes the JSON body with a
  4-byte big-endian length, which makes the codec usable over stream
  transports as well as datagrams and lets a receiver reject oversized or
  truncated input before parsing.
* **Graceful rejection.**  Malformed input — truncated frames, unknown tags,
  wrong field sets, over-deep nesting — raises :class:`CodecError`, never
  anything else.  Receivers (the runtime transport, the conformance tests)
  catch that one type and quarantine, mirroring how
  :func:`repro.datalink.reliable_broadcast.validate_rb_message` handles
  schema-valid-but-out-of-bounds Byzantine input one layer up.
"""

from __future__ import annotations

import dataclasses
import json
import struct
import types
from enum import Enum
from typing import Any, Dict, Optional, Tuple, Type

from repro.common.errors import ReproError


class CodecError(ReproError):
    """Input that cannot be encoded to — or decoded from — the wire format."""


#: Hard cap on one frame's body (bytes).  Every honest message in the stack
#: is a few KiB even at large n; anything bigger is a hostile or corrupted
#: frame and is rejected before JSON parsing allocates for it.
MAX_FRAME_BYTES = 1 << 20

#: Maximum nesting depth of the encoded object graph.  Honest messages nest
#: a handful of levels (message → pair → label → frozenset); a deeply nested
#: bomb is rejected instead of recursing toward the interpreter limit.
MAX_DEPTH = 32

#: The length prefix: 4-byte big-endian unsigned body length.
_LEN = struct.Struct(">I")

_TYPES: Dict[str, Type[Any]] = {}
_TYPE_NAMES: Dict[Type[Any], str] = {}
_TYPE_FIELDS: Dict[str, Tuple[str, ...]] = {}
_SINGLETONS: Dict[str, Any] = {}
_SINGLETON_IDS: Dict[int, str] = {}
_ENUMS: Dict[str, Type[Enum]] = {}


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def wire_type(cls: Optional[type] = None, *, name: Optional[str] = None):
    """Class decorator registering a dataclass as a wire type.

    The wire name defaults to the class name; it becomes part of the wire
    format, so renaming a registered class without keeping ``name=`` is a
    protocol change.  Apply *above* ``@dataclass`` (the decorator inspects
    dataclass fields).
    """

    def register(klass: type) -> type:
        wire_name = name or klass.__name__
        if not dataclasses.is_dataclass(klass):
            raise CodecError(f"wire type {wire_name!r} must be a dataclass")
        existing = _TYPES.get(wire_name)
        if existing is not None and existing is not klass:
            raise CodecError(f"wire type name {wire_name!r} already registered")
        _TYPES[wire_name] = klass
        _TYPE_NAMES[klass] = wire_name
        _TYPE_FIELDS[wire_name] = tuple(
            f.name for f in dataclasses.fields(klass) if f.init
        )
        return klass

    if cls is not None:
        return register(cls)
    return register


def register_singleton(name: str, value: Any) -> Any:
    """Register a sentinel singleton (encoded by identity, decoded to it)."""
    existing = _SINGLETONS.get(name)
    if existing is not None and existing is not value:
        raise CodecError(f"singleton name {name!r} already registered")
    _SINGLETONS[name] = value
    _SINGLETON_IDS[id(value)] = name
    return value


def wire_enum(cls: Type[Enum]) -> Type[Enum]:
    """Class decorator registering an enum as a wire type (by value)."""
    name = cls.__name__
    existing = _ENUMS.get(name)
    if existing is not None and existing is not cls:
        raise CodecError(f"wire enum name {name!r} already registered")
    _ENUMS[name] = cls
    return cls


def registered_wire_types() -> Dict[str, Type[Any]]:
    """Snapshot of the dataclass registry (used by the round-trip tests)."""
    _ensure_registered()
    return dict(_TYPES)


def _ensure_registered() -> None:
    """Import every module that defines wire types.

    Registration happens at class-definition site; this pulls those modules
    in so a process that only imported the codec (the runtime transport, the
    tests) still knows the full message vocabulary.
    """
    import repro.common.types  # noqa: F401  (sentinels, Phase, Proposal)
    import repro.datalink.token_exchange  # noqa: F401
    import repro.datalink.reliable_broadcast  # noqa: F401
    import repro.core.recsa  # noqa: F401
    import repro.core.recma  # noqa: F401
    import repro.core.joining  # noqa: F401
    import repro.counters.counter  # noqa: F401
    import repro.counters.service  # noqa: F401
    import repro.labels.label  # noqa: F401
    import repro.labels.labeling  # noqa: F401
    import repro.vs.view  # noqa: F401
    import repro.vs.virtual_synchrony  # noqa: F401
    import repro.baselines.coherent_start  # noqa: F401


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------
def _encode(value: Any, depth: int) -> Any:
    if depth > MAX_DEPTH:
        raise CodecError("object graph too deep to encode")
    # Enums before scalars: an IntEnum member (e.g. Phase.IDLE) *is* an int,
    # but must round-trip as the enum member, not its value — downstream code
    # compares by identity (``prp.phase is Phase.IDLE``).
    if isinstance(value, Enum):
        name = type(value).__name__
        if name not in _ENUMS:
            raise CodecError(f"unregistered enum {name!r}")
        return {"%": "enum", "t": name, "v": _encode(value.value, depth + 1)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    singleton = _SINGLETON_IDS.get(id(value))
    if singleton is not None:
        return {"%": "one", "t": singleton}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = _TYPE_NAMES.get(type(value))
        if name is None:
            raise CodecError(f"unregistered wire type {type(value).__name__!r}")
        fields = {
            f: _encode(getattr(value, f), depth + 1) for f in _TYPE_FIELDS[name]
        }
        return {"%": "dc", "t": name, "f": fields}
    if isinstance(value, tuple):
        return {"%": "tuple", "v": [_encode(v, depth + 1) for v in value]}
    if isinstance(value, list):
        return {"%": "list", "v": [_encode(v, depth + 1) for v in value]}
    if isinstance(value, (frozenset, set)):
        encoded = [_encode(v, depth + 1) for v in value]
        # Canonical element order: equal sets encode to identical bytes.
        encoded.sort(key=lambda item: json.dumps(item, sort_keys=True))
        tag = "fset" if isinstance(value, frozenset) else "set"
        return {"%": tag, "v": encoded}
    if isinstance(value, (dict, types.MappingProxyType)):
        return {
            "%": "dict",
            "v": [
                [_encode(k, depth + 1), _encode(v, depth + 1)]
                for k, v in value.items()
            ],
        }
    raise CodecError(f"cannot encode {type(value).__name__!r} value")


def _decode(value: Any, depth: int) -> Any:
    if depth > MAX_DEPTH:
        raise CodecError("encoded graph too deep to decode")
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if not isinstance(value, dict):
        raise CodecError(f"unexpected wire element {type(value).__name__!r}")
    tag = value.get("%")
    if tag == "dc":
        name = value.get("t")
        cls = _TYPES.get(name) if isinstance(name, str) else None
        if cls is None:
            raise CodecError(f"unknown wire type {name!r}")
        fields = value.get("f")
        if not isinstance(fields, dict) or not all(
            isinstance(k, str) for k in fields
        ):
            raise CodecError(f"malformed fields for wire type {name!r}")
        if not set(fields) <= set(_TYPE_FIELDS[name]):
            raise CodecError(f"unknown fields for wire type {name!r}")
        decoded = {k: _decode(v, depth + 1) for k, v in fields.items()}
        try:
            return cls(**decoded)
        except (TypeError, ValueError) as exc:
            raise CodecError(f"cannot construct {name!r}: {exc}") from None
    if tag == "one":
        name = value.get("t")
        if name not in _SINGLETONS:
            raise CodecError(f"unknown singleton {name!r}")
        return _SINGLETONS[name]
    if tag == "enum":
        name = value.get("t")
        cls = _ENUMS.get(name) if isinstance(name, str) else None
        if cls is None:
            raise CodecError(f"unknown wire enum {name!r}")
        try:
            return cls(_decode(value.get("v"), depth + 1))
        except ValueError as exc:
            raise CodecError(f"bad {name!r} value: {exc}") from None
    if tag in ("tuple", "list", "fset", "set"):
        items = value.get("v")
        if not isinstance(items, list):
            raise CodecError(f"malformed {tag!r} container")
        decoded_items = [_decode(v, depth + 1) for v in items]
        if tag == "tuple":
            return tuple(decoded_items)
        if tag == "list":
            return decoded_items
        try:
            return frozenset(decoded_items) if tag == "fset" else set(decoded_items)
        except TypeError as exc:
            raise CodecError(f"unhashable {tag!r} element: {exc}") from None
    if tag == "dict":
        items = value.get("v")
        if not isinstance(items, list) or not all(
            isinstance(pair, list) and len(pair) == 2 for pair in items
        ):
            raise CodecError("malformed dict container")
        try:
            return {
                _decode(k, depth + 1): _decode(v, depth + 1) for k, v in items
            }
        except TypeError as exc:
            raise CodecError(f"unhashable dict key: {exc}") from None
    raise CodecError(f"unknown wire tag {tag!r}")


def encode(value: Any) -> Any:
    """Encode *value* into the JSON-safe tagged representation."""
    _ensure_registered()
    return _encode(value, 0)


def decode(value: Any) -> Any:
    """Decode a tagged representation back into Python objects.

    Raises :class:`CodecError` on any malformed input; never anything else.
    """
    _ensure_registered()
    return _decode(value, 0)


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------
def frame(value: Any) -> bytes:
    """Serialize *value* to one length-prefixed wire frame."""
    body = json.dumps(encode(value), separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(f"frame body of {len(body)} bytes exceeds the cap")
    return _LEN.pack(len(body)) + body


def unframe(data: bytes) -> Tuple[Any, int]:
    """Decode one frame from the head of *data*.

    Returns ``(value, bytes_consumed)``; raises :class:`CodecError` when the
    prefix is truncated, the body is incomplete or oversized, or the body is
    not valid tagged JSON.  Stream callers keep the tail for the next frame;
    datagram callers require ``bytes_consumed == len(data)``.
    """
    if len(data) < _LEN.size:
        raise CodecError("truncated frame: missing length prefix")
    (length,) = _LEN.unpack_from(data)
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"frame length {length} exceeds the cap")
    end = _LEN.size + length
    if len(data) < end:
        raise CodecError("truncated frame: incomplete body")
    body = data[_LEN.size : end]
    try:
        parsed = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"frame body is not valid JSON: {exc}") from None
    return decode(parsed), end


def roundtrip(value: Any) -> Any:
    """``unframe(frame(value))`` — the property the codec tests pin."""
    decoded, _ = unframe(frame(value))
    return decoded
