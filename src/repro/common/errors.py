"""Exception hierarchy used throughout the reproduction package.

The hierarchy is intentionally shallow: one base class (:class:`ReproError`)
and one subclass per broad failure category, so callers can catch either a
specific condition or anything raised by the package.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an illegal state.

    Examples: scheduling an event in the past, running a simulator that has
    already been shut down, registering two processes under the same id.
    """


class ChannelFullError(SimulationError):
    """A bounded channel rejected a packet because it is at capacity.

    The data-link layer treats this the same way as a packet loss (the paper
    allows the newly-sent packet to be omitted when the channel is full), so
    this exception is normally caught inside :mod:`repro.sim.network` and only
    escapes when a caller explicitly asks for strict send semantics.
    """


class InvariantViolation(ReproError):
    """A monitored safety invariant was violated during a simulation run.

    Raised by :class:`repro.sim.monitors.InvariantMonitor` when configured in
    strict mode; in recording mode violations are collected instead.
    """


class NotParticipantError(ReproError):
    """An operation that requires participant status was invoked by a joiner."""


class ReconfigurationInProgress(ReproError):
    """An operation was rejected because a reconfiguration is taking place.

    Mirrors the ``Abort`` replies of Algorithms 4.4/4.5: counter increments and
    register operations performed while the configuration is being replaced
    fail fast and must be retried by the caller.
    """


class QuorumUnavailable(ReproError):
    """A quorum (majority) of the configuration could not be assembled."""
