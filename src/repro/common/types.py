"""Core value types shared by every layer of the reproduction.

The paper (Section 2) works with a totally-ordered set of processor
identifiers ``P``, quorum configurations (sets of processors), and a handful
of sentinel values:

* ``⊥`` ("bottom") — the empty / null value a processor assigns to its
  configuration while a *reset* (brute-force stabilization) is in progress.
* ``]`` — the marker meaning "this processor is **not a participant**".

We model processor identifiers as plain integers (they only need to be
hashable and totally ordered), configurations as frozensets of identifiers,
and the sentinels as module-level singletons so that identity comparison
(``value is NOT_PARTICIPANT``) is unambiguous and cannot collide with a real
configuration value.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.common.codec import register_singleton, wire_enum, wire_type


ProcessId = int
"""A processor identifier, drawn from the totally ordered set ``P``."""

Configuration = FrozenSet[ProcessId]
"""A quorum configuration: an immutable set of processor identifiers."""


class _Sentinel:
    """A named singleton sentinel with stable repr and identity semantics."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return self._name

    def __copy__(self) -> "_Sentinel":
        return self

    def __deepcopy__(self, memo: dict) -> "_Sentinel":
        return self

    def __reduce__(self):
        # Preserve singleton identity across pickling (used by the fault
        # injector when snapshotting process state).
        return (_lookup_sentinel, (self._name,))


def _lookup_sentinel(name: str) -> "_Sentinel":
    return {"NOT_PARTICIPANT": NOT_PARTICIPANT, "BOTTOM": BOTTOM}[name]


NOT_PARTICIPANT = register_singleton("NOT_PARTICIPANT", _Sentinel("NOT_PARTICIPANT"))
"""The paper's ``]`` marker: the processor is not (yet) a participant."""

BOTTOM = register_singleton("BOTTOM", _Sentinel("BOTTOM"))
"""The paper's ``⊥`` value: no value / configuration reset in progress."""


def make_config(members: Iterable[ProcessId]) -> Configuration:
    """Build a :data:`Configuration` from any iterable of processor ids."""
    return frozenset(members)


def majority_size(config: Iterable[ProcessId]) -> int:
    """Return the size of a majority quorum of *config*.

    The paper's recMA layer tests ``|alive ∩ config| < |config|/2 + 1``; this
    helper returns the smallest integer that constitutes a majority, i.e.
    ``floor(|config|/2) + 1``.
    """
    return len(list(config)) // 2 + 1


def is_majority(subset: Iterable[ProcessId], config: Iterable[ProcessId]) -> bool:
    """Return ``True`` when *subset* contains a majority of *config*."""
    config_set = frozenset(config)
    inter = frozenset(subset) & config_set
    return len(inter) >= majority_size(config_set)


@wire_enum
class Phase(enum.IntEnum):
    """The three phases of the delicate configuration-replacement automaton.

    Figure 2 of the paper: phase 0 monitors for stale information, phase 1
    converges on a single proposal, phase 2 replaces the configuration with
    the selected proposal and returns to phase 0.
    """

    IDLE = 0
    SELECT = 1
    REPLACE = 2

    def next(self) -> "Phase":
        """The ``increment(phs)`` macro of Algorithm 3.1 (line 22).

        Phase 0 stays at 0 (the automaton only advances from 0 via an
        explicit ``estab()``), phase 1 advances to 2, and phase 2 wraps back
        to 0.
        """
        if self is Phase.IDLE:
            return Phase.IDLE
        if self is Phase.SELECT:
            return Phase.REPLACE
        return Phase.IDLE


@wire_type
@dataclass(frozen=True, order=False)
class Proposal:
    """A configuration-replacement notification ``prp = ⟨phase, set⟩``.

    ``set`` is ``None`` for "no value" (the paper's ``⊥``) and otherwise a
    :data:`Configuration`.  Proposals are compared lexicographically: first by
    phase, then by the proposed set (sets ordered as sorted tuples of ids),
    exactly as the paper's ``maxNtf()`` macro requires.
    """

    phase: Phase
    members: Optional[Configuration]

    def sort_key(self) -> Tuple[int, Tuple[ProcessId, ...]]:
        """Key implementing the paper's ``≤lex`` order on notifications."""
        members_key: Tuple[ProcessId, ...]
        if self.members is None:
            members_key = ()
        else:
            members_key = tuple(sorted(self.members))
        return (int(self.phase), members_key)

    def __lt__(self, other: "Proposal") -> bool:
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Proposal") -> bool:
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "Proposal") -> bool:
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "Proposal") -> bool:
        return self.sort_key() >= other.sort_key()

    @property
    def is_default(self) -> bool:
        """True for the default ("no proposal") notification ``⟨0, ⊥⟩``."""
        return self.phase is Phase.IDLE and self.members is None

    def with_phase(self, phase: Phase) -> "Proposal":
        """Return a copy of this proposal carrying *phase*."""
        return Proposal(phase=phase, members=self.members)


DEFAULT_PROPOSAL = Proposal(phase=Phase.IDLE, members=None)
"""The paper's ``dfltNtf = ⟨0, ⊥⟩`` constant."""


def degree(proposal: Proposal, all_flag: bool) -> int:
    """The ``degree(k)`` macro (Algorithm 3.1, line 16).

    A notification's degree is ``2 * phase + (1 if all flag raised else 0)``;
    the stale-information tests compare degrees of different participants and
    flag gaps larger than one.
    """
    return 2 * int(proposal.phase) + (1 if all_flag else 0)
