"""Active-adversary (Byzantine) node behaviors and their audit wiring.

The transient-fault audit certifies recovery from *arbitrary state followed
by honest execution*.  This module supplies the harder half of the threat
model: processors that keep executing **maliciously**.  A traitor is an
otherwise-normal :class:`~repro.sim.cluster.ClusterNode` whose outbound
traffic is intercepted by a :class:`TraitorProgram` — a composition of
registered :class:`ByzantineBehavior` strategies:

``forge``
    Spontaneously emit fabricated packets: schema-valid reliable-broadcast
    messages with forged origins, occasional deliberately *malformed* ones
    (exercising the RB layer's quarantine path), and stale protocol packets
    drawn from the arbitrary-state generator's type-correct wire universe.
``mutate``
    Rewrite fields of in-flight outbound messages type-correctly (sequence
    numbers — the message id — kinds, origins, payloads), reusing the same
    random-value generators as the :class:`CorruptionAtom` machinery.
``drop``
    Selective forwarding: silently discard reliable-broadcast traffic
    toward a seeded half of the peers.
``equivocate``
    Send *different* payloads for the same broadcast to different peers —
    the canonical split-brain attack reliable broadcast exists to defeat.
``inflate``
    Heartbeat/vector inflation: spam junk traffic so every receiver's
    failure detector credits the traitor with extreme freshness (aging all
    honest peers), plus out-of-range data-link sequence numbers aimed at
    the hardened heartbeat validation.

Behaviors attack the *datalink/broadcast* surface, not the recSA gossip:
a traitor's own reconfiguration stack keeps running honestly, so the
paper's convergence certification composes with the Byzantine window
(traitors are active for a bounded ``duration``; afterwards the audit
certifies that the honest protocol converged despite the attack).

Everything is snapshot-safe by construction: programs are plain objects
(no closures) scheduled through :class:`~repro.sim.events.Action`, and the
per-traitor RNG streams live on the program, so the audit harness's warm
prefix sharing deep-copies and resumes them byte-identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.audit.arbitrary_state import (
    _random_config_value,
    _random_proposal,
    _random_stale_payload,
)
from repro.audit.schedulers import current_coordinator
from repro.common.rng import make_rng
from repro.common.types import ProcessId
from repro.datalink.reliable_broadcast import MAX_RB_SEQ, RBMessage
from repro.datalink.token_exchange import DataLinkMessage
from repro.sim.events import Action
from repro.sim.faults import FaultInjector
from repro.sim.network import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cluster import Cluster


# ---------------------------------------------------------------------------
# Behavior registry
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ByzantineBehavior:
    """A named, composable adversary strategy.

    The *handler* is a stateless singleton exposing either or both hooks:

    ``outgoing(program, pairs)``
        Transform the traitor's outbound ``(destination, payload)`` list
        (drop entries, rewrite payloads, fan variants out).
    ``tick(program)``
        Emit spontaneous traffic on the traitor's periodic tick.

    All mutable per-traitor state (RNG, drop targets, counters) lives on
    the :class:`TraitorProgram`, so handlers can be shared by every traitor
    in every run.
    """

    name: str
    description: str
    handler: Any


BEHAVIORS: Dict[str, ByzantineBehavior] = {}


def register_behavior(behavior: ByzantineBehavior) -> ByzantineBehavior:
    """Add *behavior* to the registry (unique name required)."""
    if behavior.name in BEHAVIORS:
        raise ValueError(f"byzantine behavior {behavior.name!r} is already registered")
    BEHAVIORS[behavior.name] = behavior
    return behavior


def get_behavior(name: str) -> ByzantineBehavior:
    """Resolve a behavior by name."""
    try:
        return BEHAVIORS[name]
    except KeyError:
        raise KeyError(
            f"unknown byzantine behavior {name!r}; available: {available_behaviors()}"
        ) from None


def available_behaviors() -> List[str]:
    """Sorted names of every registered behavior."""
    return sorted(BEHAVIORS)


# ---------------------------------------------------------------------------
# Behavior handlers (stateless singletons)
# ---------------------------------------------------------------------------
class _ForgeHandler:
    """Fabricate packets from thin air on every traitor tick."""

    burst = 2

    def tick(self, program: "TraitorProgram") -> None:
        rng = program.rng
        for _ in range(self.burst):
            destination = rng.choice(program.peer_list)
            roll = rng.random()
            if roll < 0.45:
                payload = self._forged_rb(program)
            elif roll < 0.65:
                payload = self._malformed_rb(program)
            else:
                payload = _random_stale_payload(rng, program.pid, program.universe)
            program.emit(destination, payload)
            program.forged += 1

    @staticmethod
    def _forged_rb(program: "TraitorProgram") -> RBMessage:
        """A schema-valid RB packet with adversarial contents.

        Forged SENDs with ``origin != self`` probe the channel-authenticity
        check; forged echoes/readies probe the voting thresholds.
        """
        rng = program.rng
        return RBMessage(
            kind=rng.choice(["send", "echo", "ready", "fwd"]),
            origin=rng.choice(program.universe),
            seq=rng.randrange(0, 8),
            payload=("forged", program.pid, rng.randrange(100)),
        )

    @staticmethod
    def _malformed_rb(program: "TraitorProgram") -> RBMessage:
        """A structurally invalid RB packet (must be quarantined, not crash)."""
        rng = program.rng
        roll = rng.random()
        if roll < 0.35:
            return RBMessage(kind="echo", origin=program.pid, seq=-rng.randrange(1, 10))
        if roll < 0.65:
            return RBMessage(kind="bogus", origin=program.pid, seq=0)
        # Out-of-range id plus an unhashable payload in one packet.
        return RBMessage(
            kind="ready", origin=program.pid, seq=MAX_RB_SEQ + 1, payload=["unhashable"]
        )


class _MutateHandler:
    """Type-correct field mutation of in-flight RB / data-link messages."""

    probability = 0.35

    def outgoing(
        self, program: "TraitorProgram", pairs: List[Tuple[ProcessId, Any]]
    ) -> List[Tuple[ProcessId, Any]]:
        out: List[Tuple[ProcessId, Any]] = []
        for destination, payload in pairs:
            if (
                isinstance(payload, (RBMessage, DataLinkMessage))
                and program.rng.random() < self.probability
            ):
                payload = self._mutate(program, payload)
                program.mutated += 1
            out.append((destination, payload))
        return out

    @staticmethod
    def _mutate(program: "TraitorProgram", message: Any) -> Any:
        rng = program.rng
        if isinstance(message, RBMessage):
            roll = rng.random()
            if roll < 0.4:  # message-id mutation
                return replace(message, seq=rng.randrange(0, 64))
            if roll < 0.6:
                return replace(message, kind=rng.choice(["send", "echo", "ready", "fwd"]))
            if roll < 0.8:
                return replace(message, origin=rng.choice(program.universe))
            # Payload replacement via the arbitrary-state value generators
            # (the CorruptionAtom machinery's type-correct draws).
            if rng.random() < 0.5:
                value: Any = _random_config_value(rng, program.universe)
            else:
                value = _random_proposal(rng, program.universe)
            return replace(message, payload=("mutated", value))
        roll = rng.random()
        if roll < 0.5:
            return replace(
                message, seq=rng.randrange(0, 2 * program.channel_capacity + 2)
            )
        return replace(message, kind=rng.choice(["data", "ack", "clean", "clean-ack"]))


class _DropHandler:
    """Selective forwarding: drop RB traffic toward a seeded peer subset."""

    def outgoing(
        self, program: "TraitorProgram", pairs: List[Tuple[ProcessId, Any]]
    ) -> List[Tuple[ProcessId, Any]]:
        out: List[Tuple[ProcessId, Any]] = []
        for destination, payload in pairs:
            if isinstance(payload, RBMessage) and destination in program.drop_targets:
                program.dropped += 1
                continue
            out.append((destination, payload))
        return out


class _EquivocateHandler:
    """Send different payloads for the same broadcast to different peers."""

    def outgoing(
        self, program: "TraitorProgram", pairs: List[Tuple[ProcessId, Any]]
    ) -> List[Tuple[ProcessId, Any]]:
        out: List[Tuple[ProcessId, Any]] = []
        for destination, payload in pairs:
            if (
                isinstance(payload, RBMessage)
                and payload.kind in ("send", "fwd")
                and payload.origin == program.pid
            ):
                # Deterministic split: half the peers get variant 0, half
                # variant 1 — maximal disagreement without randomness, so
                # shrunk reproducers replay exactly.
                variant = ("equiv", program.pid, payload.seq, destination % 2)
                payload = replace(payload, payload=variant)
                program.equivocated += 1
            out.append((destination, payload))
        return out


class _InflateHandler:
    """Heartbeat/vector inflation: farm freshness credit with junk traffic."""

    storm = 4

    def tick(self, program: "TraitorProgram") -> None:
        for destination in program.peer_list:
            # Each junk packet triggers notify_traffic → fd.heartbeat at the
            # receiver: without the consecutive-sender clamp, one traitor's
            # storm ages every honest peer past the suspicion gap.
            for index in range(self.storm):
                program.emit(destination, ("byz-heartbeat-flood", program.pid, index))
            # Out-of-range data-link values aimed at the hardened heartbeat
            # service's bounds validation (quarantined, never ingested).
            program.emit(
                destination,
                DataLinkMessage(kind="data", link_sender=program.pid, seq=1 << 40),
            )
        program.inflated += 1


register_behavior(
    ByzantineBehavior(
        "forge",
        "fabricate RB/protocol packets (valid, malformed and stale)",
        _ForgeHandler(),
    )
)
register_behavior(
    ByzantineBehavior(
        "mutate",
        "type-correct field mutation of outbound RB/data-link messages",
        _MutateHandler(),
    )
)
register_behavior(
    ByzantineBehavior(
        "drop",
        "selective forwarding: drop RB traffic toward half the peers",
        _DropHandler(),
    )
)
register_behavior(
    ByzantineBehavior(
        "equivocate",
        "different payloads of one broadcast to different peers",
        _EquivocateHandler(),
    )
)
register_behavior(
    ByzantineBehavior(
        "inflate",
        "heartbeat/vector inflation storms + out-of-range link values",
        _InflateHandler(),
    )
)


# ---------------------------------------------------------------------------
# Traitor programs
# ---------------------------------------------------------------------------
class TraitorProgram:
    """The composition of behaviors animating one Byzantine processor.

    Installed through :meth:`FaultInjector.make_byzantine`: registers itself
    as the simulator's outbound interceptor for ``pid`` and (for behaviors
    with a ``tick`` hook) schedules a periodic spontaneous-traffic tick.
    Plain object + :class:`Action` scheduling keeps it snapshot-safe.
    """

    def __init__(
        self,
        cluster: "Cluster",
        pid: ProcessId,
        behaviors: Sequence[str],
        seed: int = 0,
        tick_interval: float = 2.0,
    ) -> None:
        self.cluster = cluster
        self.pid = pid
        self.behavior_names: Tuple[str, ...] = tuple(behaviors)
        self.behaviors: Tuple[ByzantineBehavior, ...] = tuple(
            get_behavior(name) for name in self.behavior_names
        )
        self.rng: random.Random = make_rng(seed, "byzantine", pid)
        self.tick_interval = max(0.5, float(tick_interval))
        self.universe: List[ProcessId] = sorted(cluster.nodes)
        self.peer_list: List[ProcessId] = [p for p in self.universe if p != pid]
        channel = cluster.config.channel
        self.channel_capacity = channel.capacity if channel is not None else 8
        # Seeded half of the peers targeted by selective forwarding.
        half = max(1, len(self.peer_list) // 2) if self.peer_list else 0
        self.drop_targets = frozenset(self.rng.sample(self.peer_list, half)) if half else frozenset()
        self.active = False
        self.forged = 0
        self.mutated = 0
        self.dropped = 0
        self.equivocated = 0
        self.inflated = 0

    # ------------------------------------------------------------ lifecycle
    def activate(self) -> None:
        """Start intercepting and (if any behavior ticks) emitting."""
        if self.active:
            return
        self.active = True
        simulator = self.cluster.simulator
        simulator.outbound_interceptors[self.pid] = self
        # The set of ever-Byzantine pids outlives deactivation: safety
        # invariants never trust a once-traitorous node's local state.
        self.cluster.byzantine_pids.add(self.pid)
        if any(hasattr(b.handler, "tick") for b in self.behaviors):
            simulator.call_later(
                self.tick_interval,
                Action(TraitorProgram._tick, self),
                label=f"byzantine:tick:{self.pid}",
            )

    def deactivate(self) -> None:
        """Stop intercepting; the node resumes honest execution."""
        self.active = False
        interceptors = self.cluster.simulator.outbound_interceptors
        if interceptors.get(self.pid) is self:
            del interceptors[self.pid]

    # -------------------------------------------------------- traffic hooks
    def outgoing(
        self, destination: ProcessId, payload: Any
    ) -> List[Tuple[ProcessId, Any]]:
        """Transform one outbound message through every behavior in order."""
        pairs: List[Tuple[ProcessId, Any]] = [(destination, payload)]
        for behavior in self.behaviors:
            handler = behavior.handler
            if hasattr(handler, "outgoing"):
                pairs = handler.outgoing(self, pairs)
                if not pairs:
                    break
        return pairs

    def emit(self, destination: ProcessId, payload: Any) -> None:
        """Send a fabricated packet directly (bypassing interception)."""
        node = self.cluster.nodes.get(destination)
        if node is None:
            return
        self.cluster.simulator.network.send(
            Packet(source=self.pid, destination=destination, payload=payload)
        )

    def _tick(self) -> None:
        if not self.active:
            return
        node = self.cluster.nodes.get(self.pid)
        if node is None or node.crashed:
            self.deactivate()
            return
        for behavior in self.behaviors:
            handler = behavior.handler
            if hasattr(handler, "tick"):
                handler.tick(self)
        self.cluster.simulator.call_later(
            self.tick_interval,
            Action(TraitorProgram._tick, self),
            label=f"byzantine:tick:{self.pid}",
        )

    # ---------------------------------------------------------- inspection
    def statistics(self) -> Dict[str, Any]:
        return {
            "pid": self.pid,
            "behaviors": list(self.behavior_names),
            "active": self.active,
            "forged": self.forged,
            "mutated": self.mutated,
            "dropped": self.dropped,
            "equivocated": self.equivocated,
            "inflated": self.inflated,
        }


# ---------------------------------------------------------------------------
# Traitor selection policies
# ---------------------------------------------------------------------------
SELECTION_POLICIES = ("lowest", "random", "coordinator")


def select_traitors(
    cluster: "Cluster", count: int, selection: str, rng: random.Random
) -> List[ProcessId]:
    """Pick *count* traitor pids among the alive nodes.

    ``lowest``
        The lowest alive pids (deterministic baseline).
    ``random``
        A seeded sample.
    ``coordinator``
        The adaptive policy: the *current coordinator* (read at fire time,
        exactly like the ``target_coordinator`` scheduler) turns traitor;
        remaining slots fill with the lowest alive pids.
    """
    alive = sorted(
        node.pid for node in cluster.nodes.values() if node.started and not node.crashed
    )
    if not alive or count <= 0:
        return []
    count = min(count, len(alive))
    if selection == "lowest":
        return alive[:count]
    if selection == "random":
        return sorted(rng.sample(alive, count))
    if selection == "coordinator":
        chosen: List[ProcessId] = []
        coordinator = current_coordinator(cluster)
        if coordinator is not None and coordinator in alive:
            chosen.append(coordinator)
        for pid in alive:
            if len(chosen) >= count:
                break
            if pid not in chosen:
                chosen.append(pid)
        return sorted(chosen[:count])
    raise KeyError(
        f"unknown traitor selection {selection!r}; available: {SELECTION_POLICIES}"
    )


# ---------------------------------------------------------------------------
# Audit-case spec + workload
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ByzantineSpec:
    """Declarative description of an audit case's Byzantine adversary.

    Value-like and JSON-roundtrippable (the corpus stores it verbatim).
    ``delay`` offsets activation relative to the case's ``corrupt_at``;
    ``duration`` bounds the active window, after which traitors fall silent
    and the audit certifies that the honest system converged despite them.
    """

    behaviors: Tuple[str, ...]
    traitors: int = 1
    selection: str = "lowest"
    delay: float = 0.0
    duration: float = 60.0
    seed: int = 0
    tick_interval: float = 2.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "behaviors": list(self.behaviors),
            "traitors": self.traitors,
            "selection": self.selection,
            "delay": self.delay,
            "duration": self.duration,
            "seed": self.seed,
            "tick_interval": self.tick_interval,
        }


def plan_assignments(
    cluster: "Cluster", spec: ByzantineSpec
) -> List[Tuple[ProcessId, str]]:
    """The deterministic traitor plan: ordered ``(pid, behavior)`` pairs.

    The ddmin shrinker re-runs subsets of this list (via the workload's
    ``include`` indices), so a violating traitor program shrinks to the
    minimal set of per-node behaviors that still breaks the invariant.
    """
    rng = make_rng(spec.seed, "byzantine-selection")
    pids = select_traitors(cluster, spec.traitors, spec.selection, rng)
    return [(pid, behavior) for pid in pids for behavior in spec.behaviors]


@dataclass(frozen=True)
class ByzantineWorkload:
    """Install the spec's traitors at time *at* (fire-time parameterized).

    Mirrors :class:`~repro.scenarios.workloads.ArbitraryStateWorkload`:
    every plan-shaping field (``spec``, ``include``, ``record_atoms``) is
    read at *fire* time, so the audit harness's warm prefix sharing can
    patch a restored pending event and resume byte-identically.
    """

    at: float
    spec: ByzantineSpec
    include: Optional[Tuple[int, ...]] = None
    record_atoms: bool = False

    def install(self, cluster: "Cluster") -> None:
        cluster.simulator.call_at(
            self.at,
            Action(ByzantineWorkload._fire, self, cluster),
            label="workload:byzantine",
        )

    def _fire(self, cluster: "Cluster") -> None:
        spec = self.spec
        plan = plan_assignments(cluster, spec)
        if self.include is None:
            selected = plan
        else:
            selected = [plan[i] for i in self.include if 0 <= i < len(plan)]
        by_pid: Dict[ProcessId, List[str]] = {}
        for pid, behavior in selected:
            by_pid.setdefault(pid, []).append(behavior)
        injector = FaultInjector(cluster.simulator, seed=spec.seed)
        installed: List[ProcessId] = []
        for pid, behaviors in sorted(by_pid.items()):
            program = TraitorProgram(
                cluster,
                pid,
                behaviors,
                seed=spec.seed,
                tick_interval=spec.tick_interval,
            )
            if injector.make_byzantine(cluster, pid, program):
                installed.append(pid)
                cluster.simulator.call_later(
                    spec.duration,
                    Action(FaultInjector.restore_honest, injector, pid),
                    label=f"byzantine:end:{pid}",
                )
        entry: Dict[str, Any] = {
            "workload": "byzantine",
            "time": self.at,
            "atoms_total": len(plan),
            "atoms_selected": len(selected),
            "traitors": installed,
            "selection": spec.selection,
            "duration": spec.duration,
        }
        if self.record_atoms:
            entry["atoms"] = [f"traitor {pid}: {behavior}" for pid, behavior in selected]
        cluster.workload_reports.append(entry)
