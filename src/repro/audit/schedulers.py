"""Pluggable adversarial schedulers: named environment programs.

The paper's asynchronous model lets the environment schedule message
deliveries arbitrarily (within fair communication) and lets the channel
adversary vary conditions *over time*.  Each scheduler here is an
**environment program** over the
:class:`~repro.sim.environment.NetworkEnvironment`: its installer shapes the
initial link state, registers *link policies* so processors joining mid-run
inherit the active shaping, and — for the dynamic adversaries — schedules
environment transitions (partitions, overlays, heals) as ordinary simulator
events.  A scenario names a scheduler the same way it names a stack profile
(``ScenarioSpec(scheduler="reorder_heavy")``), optionally with parameters
(``scheduler_params=(("epochs", 5),)``).

Static programs (shape installed up front, late joiners inherit it):

``uniform``
    The identity baseline — whatever the cluster config declares.
``delay_skew``
    Every directed link gets its own delay-scale factor (drawn seeded,
    log-uniform in [0.5, 8)): heterogeneous latencies, so gossip rounds
    interleave across nodes instead of proceeding in lockstep.
``reorder_heavy``
    Delay upper bound stretched 8x plus 20% duplication: maximal reordering
    within fair communication.
``burst_delivery``
    Delays quantized to multiples of four base round-trips
    (:attr:`ChannelConfig.delay_quantum`): long silences, then everything
    arrives at once — the barrier-alignment worst case.
``slow_node``
    One seeded victim node's links (both directions) run 10x slower than the
    rest: a straggler right at the failure detector's suspicion threshold.

Dynamic programs (time-varying, scheduled through environment events):

``crash_recovery``
    A crash-recovery *timing* adversary: each epoch one seeded victim's links
    are blocked in both directions for just long enough to cross the failure
    detector's suspicion threshold, then healed — the node appears to crash
    and recover repeatedly, which is where stale suspicion and stale
    configuration views collide.
``partition_leak``
    An asymmetric partition-with-leaks schedule: one half of the system loses
    its path *toward* the other half (one-way block) except for a small leak
    probability, then the direction flips, then the partition heals.  Fair
    communication is preserved by the leak, so the scheme must eventually
    recover even while the partition stands.
``target_coordinator``
    The adaptive adversary: every epoch it *re-reads* the current
    coordinator — the VS-layer coordinator when the stack runs one, else the
    highest-pid member of the agreed configuration (the processor recMA's
    delicate reconfiguration converges around) — and degrades that node's
    links by a slow-down overlay, chasing the leadership wherever it moves.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.common.rng import make_rng
from repro.common.types import ProcessId
from repro.sim.events import Action
from repro.sim.network import ChannelConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cluster import Cluster

Installer = Callable[..., None]


@dataclass(frozen=True)
class AdversarialScheduler:
    """A named, seeded environment program (message-timing adversary)."""

    name: str
    description: str
    installer: Installer
    #: Dynamic programs keep mutating the environment mid-run (scheduled
    #: transitions); static ones only shape the link state at install time.
    dynamic: bool = False

    def install(self, cluster: "Cluster", **params: Any) -> None:
        """Install the program on *cluster* (seeded from the simulator seed).

        ``params`` are program-specific knobs (epoch counts, leak
        probabilities, ...) — unknown keys raise, so a typo in a scenario's
        ``scheduler_params`` fails fast instead of silently running the
        defaults.
        """
        rng = make_rng(cluster.simulator.seed, "scheduler", self.name)
        try:
            self.installer(cluster, rng, **params)
        except TypeError as exc:
            if params:
                raise TypeError(
                    f"scheduler {self.name!r} rejected parameters "
                    f"{sorted(params)}: {exc}"
                ) from exc
            raise


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
_REGISTRY: Dict[str, AdversarialScheduler] = {}


def register_scheduler(scheduler: AdversarialScheduler) -> AdversarialScheduler:
    """Add *scheduler* to the registry (unique name required)."""
    if scheduler.name in _REGISTRY:
        raise ValueError(f"scheduler {scheduler.name!r} is already registered")
    _REGISTRY[scheduler.name] = scheduler
    return scheduler


def get_scheduler(name: str) -> AdversarialScheduler:
    """Resolve a scheduler by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {available_schedulers()}"
        ) from None


def available_schedulers() -> List[str]:
    """Sorted names of every registered scheduler."""
    return sorted(_REGISTRY)


def static_schedulers() -> List[str]:
    """Sorted names of the install-once (non-dynamic) programs."""
    return sorted(name for name, s in _REGISTRY.items() if not s.dynamic)


def dynamic_schedulers() -> List[str]:
    """Sorted names of the time-varying (dynamic) programs."""
    return sorted(name for name, s in _REGISTRY.items() if s.dynamic)


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------
def _pairs(cluster: "Cluster") -> Iterable[Tuple[ProcessId, ProcessId]]:
    pids = sorted(cluster.nodes)
    for source in pids:
        for destination in pids:
            if source != destination:
                yield source, destination


def _base_config(cluster: "Cluster") -> ChannelConfig:
    base = cluster.config.channel
    return base if base is not None else ChannelConfig()


def current_coordinator(cluster: "Cluster") -> Optional[ProcessId]:
    """The processor currently coordinating the system, best effort.

    Prefers the VS layer's recognized coordinator (the leader of the
    installed view) when the stack runs one; otherwise falls back to the
    highest-pid alive member of the agreed configuration — the deterministic
    proxy for where recMA-triggered delicate reconfiguration converges — and
    finally to the highest alive pid.  ``None`` on an empty system.
    """
    for node in cluster.alive_nodes():
        vs = node.service_map.get("vs")
        if vs is not None and vs.is_coordinator():
            return node.pid
    config = cluster.agreed_configuration()
    if config:
        candidates = [
            pid
            for pid in config
            if pid in cluster.nodes and not cluster.nodes[pid].crashed
        ]
        if candidates:
            return max(candidates)
    alive = [node.pid for node in cluster.alive_nodes()]
    return max(alive) if alive else None


# ---------------------------------------------------------------------------
# Link policies (deep-copy-safe callables)
#
# Policies are long-lived environment state, so they are small frozen
# dataclasses over immutable values instead of closures: snapshot/restore
# deep-copies them with the graph, and they are pure per pair — the contract
# :meth:`NetworkEnvironment.resolve` memoization relies on.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _ConstantLinkPolicy:
    """Shape every late pair with one fixed config."""

    config: ChannelConfig

    def __call__(self, source: ProcessId, destination: ProcessId) -> ChannelConfig:
        return self.config


@dataclass(frozen=True)
class _VictimLinkPolicy:
    """Shape only pairs touching *victim*; defer on everything else."""

    victim: ProcessId
    config: ChannelConfig

    def __call__(
        self, source: ProcessId, destination: ProcessId
    ) -> Optional[ChannelConfig]:
        return self.config if self.victim in (source, destination) else None


@dataclass(frozen=True)
class _DelaySkewLatePolicy:
    """Per-pair log-uniform delay factors for pairs that appear later.

    Factors come from a pair-keyed derived stream, so shaping extends to
    joiners without perturbing the install-time draws.
    """

    seed: int
    base: ChannelConfig

    def __call__(self, source: ProcessId, destination: ProcessId) -> ChannelConfig:
        pair_rng = make_rng(self.seed, "scheduler", "delay_skew", "late", source, destination)
        factor = math.exp(pair_rng.uniform(math.log(0.5), math.log(8.0)))
        return replace(
            self.base,
            min_delay=self.base.min_delay * factor,
            max_delay=self.base.max_delay * factor,
        )


# ---------------------------------------------------------------------------
# Static installers (install-once; late joiners covered by link policies)
# ---------------------------------------------------------------------------
def _install_uniform(cluster: "Cluster", rng: random.Random) -> None:
    """The identity scheduler: keep the cluster config's channel shape."""


def _install_delay_skew(cluster: "Cluster", rng: random.Random) -> None:
    base = _base_config(cluster)
    network = cluster.simulator.network
    for source, destination in _pairs(cluster):
        factor = math.exp(rng.uniform(math.log(0.5), math.log(8.0)))
        network.set_channel_config(
            source,
            destination,
            replace(
                base,
                min_delay=base.min_delay * factor,
                max_delay=base.max_delay * factor,
            ),
        )
    cluster.environment.add_link_policy(
        "delay_skew", _DelaySkewLatePolicy(cluster.simulator.seed, base)
    )


def _install_reorder_heavy(cluster: "Cluster", rng: random.Random) -> None:
    base = _base_config(cluster)
    network = cluster.simulator.network
    config = replace(
        base, max_delay=base.max_delay * 8.0, duplicate_probability=0.2
    )
    for source, destination in _pairs(cluster):
        network.set_channel_config(source, destination, config)
    cluster.environment.add_link_policy("reorder_heavy", _ConstantLinkPolicy(config))


def _install_burst_delivery(cluster: "Cluster", rng: random.Random) -> None:
    base = _base_config(cluster)
    network = cluster.simulator.network
    quantum = base.max_delay * 4.0
    config = replace(base, max_delay=base.max_delay * 4.0, delay_quantum=quantum)
    for source, destination in _pairs(cluster):
        network.set_channel_config(source, destination, config)
    cluster.environment.add_link_policy("burst_delivery", _ConstantLinkPolicy(config))


def _install_slow_node(cluster: "Cluster", rng: random.Random) -> None:
    base = _base_config(cluster)
    network = cluster.simulator.network
    victim = rng.choice(sorted(cluster.nodes))
    slow = replace(base, min_delay=base.min_delay * 10.0, max_delay=base.max_delay * 10.0)
    for source, destination in _pairs(cluster):
        if victim in (source, destination):
            network.set_channel_config(source, destination, slow)
    cluster.environment.add_link_policy("slow_node", _VictimLinkPolicy(victim, slow))


# ---------------------------------------------------------------------------
# Dynamic installers (time-varying environment programs)
#
# Each program is a plain object whose scheduled transitions are ``Action``s
# over bound methods: deep-copying the graph (snapshot/restore) copies the
# program with it, so a restored run's pending transitions mutate the
# restored environment, never the original's.
# ---------------------------------------------------------------------------
@dataclass
class _CrashRecoveryProgram:
    """Per-epoch link blackouts: isolate a victim, heal *outage* later."""

    cluster: Any
    victims: List[ProcessId]
    outage: float

    def begin(self, epoch: int) -> None:
        cluster = self.cluster
        victim = self.victims[epoch]
        node = cluster.nodes.get(victim)
        if node is None or node.crashed:
            return
        environment = cluster.environment
        name = environment.isolate(
            victim, sorted(cluster.nodes), name=f"crash_recovery:{epoch}"
        )
        environment.call_at(
            cluster.simulator.now + self.outage,
            Action(environment.heal, name),
            label="env:crash-recovery:heal",
        )


def _install_crash_recovery(
    cluster: "Cluster",
    rng: random.Random,
    *,
    start: float = 40.0,
    period: float = 45.0,
    outage: float = 14.0,
    epochs: int = 3,
) -> None:
    """Blackout one victim's links per epoch, then restore them.

    The victim sequence is drawn at install time (seeded), the blackout is a
    both-directions leak-free partition over whatever processors exist at
    epoch time (so a joiner can be cut off too), and the heal fires *outage*
    later — a link-level crash-recovery cycle timed against the failure
    detector rather than an actual process crash.
    """
    pids = sorted(cluster.nodes)
    victims = [pids[rng.randrange(len(pids))] for _ in range(epochs)]
    program = _CrashRecoveryProgram(cluster, victims, outage)
    for epoch in range(epochs):
        cluster.simulator.call_at(
            start + epoch * period,
            Action(program.begin, epoch),
            label="env:crash-recovery",
        )


@dataclass
class _PartitionLeakProgram:
    """One-way leaky split over the alive pids; flips direction, then heals."""

    cluster: Any
    leak: float

    def _halves(self) -> Optional[Tuple[List[ProcessId], List[ProcessId]]]:
        alive = sorted(node.pid for node in self.cluster.alive_nodes())
        half = len(alive) // 2
        if not half:
            return None
        return alive[:half], alive[half:]

    def forward(self) -> None:
        groups = self._halves()
        if groups is not None:
            self.cluster.environment.partition(
                groups[0], groups[1],
                name="partition_leak:forward", leak=self.leak, symmetric=False,
            )

    def flip(self) -> None:
        environment = self.cluster.environment
        environment.heal("partition_leak:forward")
        groups = self._halves()
        if groups is not None:
            environment.partition(
                groups[1], groups[0],
                name="partition_leak:reverse", leak=self.leak, symmetric=False,
            )

    def heal_reverse(self) -> None:
        self.cluster.environment.heal("partition_leak:reverse")


def _install_partition_leak(
    cluster: "Cluster",
    rng: random.Random,
    *,
    at: float = 45.0,
    flip_at: float = 100.0,
    heal_at: float = 160.0,
    leak: float = 0.08,
) -> None:
    """One-way partition with a leak; the blocked direction flips mid-run.

    From *at* the lower half of the alive pids cannot reach the upper half
    (except with probability *leak* per packet) while the reverse direction
    stays open; at *flip_at* the asymmetry reverses; at *heal_at* everything
    heals.  The leak keeps fair communication intact, so the run still has to
    converge *during* the partition, not merely after the heal.
    """
    if not at < flip_at < heal_at:
        raise ValueError(
            f"partition_leak requires at < flip_at < heal_at "
            f"(got {at}, {flip_at}, {heal_at})"
        )
    program = _PartitionLeakProgram(cluster, leak)
    simulator = cluster.simulator
    simulator.call_at(at, Action(program.forward), label="env:partition-leak")
    simulator.call_at(flip_at, Action(program.flip), label="env:partition-leak:flip")
    simulator.call_at(
        heal_at, Action(program.heal_reverse), label="env:partition-leak:heal"
    )


@dataclass
class _TargetCoordinatorProgram:
    """Adaptive chase: re-read the coordinator each epoch, slow its links."""

    cluster: Any
    slow: ChannelConfig
    period: float
    epochs: int
    tag: str = "target_coordinator"

    def epoch(self, index: int) -> None:
        cluster = self.cluster
        environment = cluster.environment
        environment.remove_overlay(self.tag)
        if index >= self.epochs:
            return
        victim = current_coordinator(cluster)
        if victim is not None:
            mapping: Dict[Tuple[ProcessId, ProcessId], ChannelConfig] = {}
            for peer in sorted(cluster.nodes):
                if peer != victim:
                    mapping[(victim, peer)] = self.slow
                    mapping[(peer, victim)] = self.slow
            environment.apply_overlay(self.tag, mapping)
            environment.record("target", victim=victim, epoch=index)
        cluster.simulator.call_at(
            cluster.simulator.now + self.period,
            Action(self.epoch, index + 1),
            label="env:target-coordinator",
        )


def _install_target_coordinator(
    cluster: "Cluster",
    rng: random.Random,
    *,
    start: float = 40.0,
    period: float = 35.0,
    epochs: int = 5,
    slow_factor: float = 8.0,
) -> None:
    """Adaptively degrade whoever currently coordinates the system.

    Every *period* the program re-reads :func:`current_coordinator` and
    replaces its slow-down overlay so only the current leader's links (both
    directions, against every present processor) run *slow_factor* times
    slower.  After *epochs* readings the overlay is removed for good, so the
    adversary quiesces and convergence probes measure recovery under — not
    after — the chase.
    """
    base = _base_config(cluster)
    slow = replace(
        base,
        min_delay=base.min_delay * slow_factor,
        max_delay=base.max_delay * slow_factor,
    )
    program = _TargetCoordinatorProgram(cluster, slow, period, epochs)
    cluster.simulator.call_at(
        start, Action(program.epoch, 0), label="env:target-coordinator"
    )


# ---------------------------------------------------------------------------
# Registrations
# ---------------------------------------------------------------------------
UNIFORM = register_scheduler(
    AdversarialScheduler(
        "uniform", "identity baseline: the cluster config's channels", _install_uniform
    )
)
DELAY_SKEW = register_scheduler(
    AdversarialScheduler(
        "delay_skew",
        "per-link log-uniform delay-scale factors (heterogeneous latencies)",
        _install_delay_skew,
    )
)
REORDER_HEAVY = register_scheduler(
    AdversarialScheduler(
        "reorder_heavy",
        "8x delay variance + 20% duplication (maximal reordering)",
        _install_reorder_heavy,
    )
)
BURST_DELIVERY = register_scheduler(
    AdversarialScheduler(
        "burst_delivery",
        "delays quantized to burst boundaries (silence, then everything at once)",
        _install_burst_delivery,
    )
)
SLOW_NODE = register_scheduler(
    AdversarialScheduler(
        "slow_node",
        "one seeded victim's links run 10x slower (straggler at the FD threshold)",
        _install_slow_node,
    )
)
CRASH_RECOVERY = register_scheduler(
    AdversarialScheduler(
        "crash_recovery",
        "per-epoch link blackouts timed at the FD threshold (apparent crash/recover)",
        _install_crash_recovery,
        dynamic=True,
    )
)
PARTITION_LEAK = register_scheduler(
    AdversarialScheduler(
        "partition_leak",
        "one-way leaky partition whose blocked direction flips, then heals",
        _install_partition_leak,
        dynamic=True,
    )
)
TARGET_COORDINATOR = register_scheduler(
    AdversarialScheduler(
        "target_coordinator",
        "adaptive: re-reads the current coordinator each epoch and slows its links",
        _install_target_coordinator,
        dynamic=True,
    )
)
