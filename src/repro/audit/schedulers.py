"""Pluggable adversarial schedulers: named message-timing adversaries.

The paper's asynchronous model lets the environment schedule message
deliveries arbitrarily (within fair communication).  The seed harness only
ever exercised one benign uniform-delay scheduler; these profiles shape the
network into the adversarial timings that surface convergence bugs in
practice — wired through per-pair :class:`~repro.sim.network.ChannelConfig`
overrides on the :class:`~repro.sim.network.Network`, so a scenario names a
scheduler the same way it names a stack profile
(``ScenarioSpec(scheduler="reorder_heavy")``).

Built-in schedulers:

``uniform``
    The identity baseline — whatever the cluster config declares.
``delay_skew``
    Every directed link gets its own delay-scale factor (drawn seeded,
    log-uniform in [0.5, 8)): heterogeneous latencies, so gossip rounds
    interleave across nodes instead of proceeding in lockstep.
``reorder_heavy``
    Delay upper bound stretched 8x plus 20% duplication: maximal reordering
    within fair communication.
``burst_delivery``
    Delays quantized to multiples of four base round-trips
    (:attr:`ChannelConfig.delay_quantum`): long silences, then everything
    arrives at once — the barrier-alignment worst case.
``slow_node``
    One seeded victim node's links (both directions) run 10x slower than the
    rest: a straggler right at the failure detector's suspicion threshold.

Schedulers are installed once, right after the cluster is built; channels to
processors that join later fall back to the default config (the adversary
shapes the initial topology, which is where the corrupted state lives).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Tuple

from repro.common.rng import make_rng
from repro.common.types import ProcessId
from repro.sim.network import ChannelConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cluster import Cluster

Installer = Callable[["Cluster", random.Random], None]


@dataclass(frozen=True)
class AdversarialScheduler:
    """A named, seeded message-timing adversary."""

    name: str
    description: str
    installer: Installer

    def install(self, cluster: "Cluster") -> None:
        """Shape *cluster*'s channels (seeded from the simulator seed)."""
        rng = make_rng(cluster.simulator.seed, "scheduler", self.name)
        self.installer(cluster, rng)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
_REGISTRY: Dict[str, AdversarialScheduler] = {}


def register_scheduler(scheduler: AdversarialScheduler) -> AdversarialScheduler:
    """Add *scheduler* to the registry (unique name required)."""
    if scheduler.name in _REGISTRY:
        raise ValueError(f"scheduler {scheduler.name!r} is already registered")
    _REGISTRY[scheduler.name] = scheduler
    return scheduler


def get_scheduler(name: str) -> AdversarialScheduler:
    """Resolve a scheduler by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {available_schedulers()}"
        ) from None


def available_schedulers() -> List[str]:
    """Sorted names of every registered scheduler."""
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Installers
# ---------------------------------------------------------------------------
def _pairs(cluster: "Cluster") -> Iterable[Tuple[ProcessId, ProcessId]]:
    pids = sorted(cluster.nodes)
    for source in pids:
        for destination in pids:
            if source != destination:
                yield source, destination


def _base_config(cluster: "Cluster") -> ChannelConfig:
    base = cluster.config.channel
    return base if base is not None else ChannelConfig()


def _install_uniform(cluster: "Cluster", rng: random.Random) -> None:
    """The identity scheduler: keep the cluster config's channel shape."""


def _install_delay_skew(cluster: "Cluster", rng: random.Random) -> None:
    base = _base_config(cluster)
    network = cluster.simulator.network
    for source, destination in _pairs(cluster):
        factor = math.exp(rng.uniform(math.log(0.5), math.log(8.0)))
        network.set_channel_config(
            source,
            destination,
            replace(
                base,
                min_delay=base.min_delay * factor,
                max_delay=base.max_delay * factor,
            ),
        )


def _install_reorder_heavy(cluster: "Cluster", rng: random.Random) -> None:
    base = _base_config(cluster)
    network = cluster.simulator.network
    config = replace(
        base, max_delay=base.max_delay * 8.0, duplicate_probability=0.2
    )
    for source, destination in _pairs(cluster):
        network.set_channel_config(source, destination, config)


def _install_burst_delivery(cluster: "Cluster", rng: random.Random) -> None:
    base = _base_config(cluster)
    network = cluster.simulator.network
    quantum = base.max_delay * 4.0
    config = replace(base, max_delay=base.max_delay * 4.0, delay_quantum=quantum)
    for source, destination in _pairs(cluster):
        network.set_channel_config(source, destination, config)


def _install_slow_node(cluster: "Cluster", rng: random.Random) -> None:
    base = _base_config(cluster)
    network = cluster.simulator.network
    victim = rng.choice(sorted(cluster.nodes))
    slow = replace(base, min_delay=base.min_delay * 10.0, max_delay=base.max_delay * 10.0)
    for source, destination in _pairs(cluster):
        if victim in (source, destination):
            network.set_channel_config(source, destination, slow)


UNIFORM = register_scheduler(
    AdversarialScheduler(
        "uniform", "identity baseline: the cluster config's channels", _install_uniform
    )
)
DELAY_SKEW = register_scheduler(
    AdversarialScheduler(
        "delay_skew",
        "per-link log-uniform delay-scale factors (heterogeneous latencies)",
        _install_delay_skew,
    )
)
REORDER_HEAVY = register_scheduler(
    AdversarialScheduler(
        "reorder_heavy",
        "8x delay variance + 20% duplication (maximal reordering)",
        _install_reorder_heavy,
    )
)
BURST_DELIVERY = register_scheduler(
    AdversarialScheduler(
        "burst_delivery",
        "delays quantized to burst boundaries (silence, then everything at once)",
        _install_burst_delivery,
    )
)
SLOW_NODE = register_scheduler(
    AdversarialScheduler(
        "slow_node",
        "one seeded victim's links run 10x slower (straggler at the FD threshold)",
        _install_slow_node,
    )
)
