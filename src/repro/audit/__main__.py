"""CLI: certify self-stabilization from arbitrary states.

Examples::

    python -m repro.audit --list-schedulers
    python -m repro.audit --list-behaviors
    python -m repro.audit --smoke                      # CI gate: 54 runs
    python -m repro.audit --byzantine --workers 4      # active-adversary
                                                       # matrix (traitor
                                                       # programs vs RB)
    python -m repro.audit --schedulers delay_skew,slow_node \\
        --corruptions 0:4 --seeds 0:4 --workers 4 --output audit.json
    python -m repro.audit --stacks vs_smr,shared_register --seeds 0:2
    python -m repro.audit --profile-grid --workers 4   # stabilization-time
                                                       # distribution vs
                                                       # corruption intensity
    python -m repro.audit --demo-shrink                # broken invariant ->
                                                       # minimal reproducer

Sweeps run against a persistent content-addressed cache (``.audit_cache/``
by default): unchanged cells are answered from disk and warm pre-corruption
prefixes are resumed from stored snapshots, so re-running a matrix after an
edit only recomputes what the edit could have changed.  ``--no-cache``
disables it, ``--refresh`` forces recompute (with write-back), and
``python -m repro.audit.store stats`` inspects the store.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from repro.analysis import probes
from repro.analysis.metrics import ResultTable
from repro.audit.arbitrary_state import PROFILES
from repro.audit.byzantine import (
    BEHAVIORS,
    ByzantineSpec,
    available_behaviors,
)
from repro.audit.harness import (
    AuditCase,
    build_cases,
    certify,
    shrink_case,
    sweep_profile_grid,
)
from repro.audit.schedulers import (
    available_schedulers,
    dynamic_schedulers,
    get_scheduler,
    static_schedulers,
)
from repro.audit.store import DEFAULT_CACHE_DIR, SweepStore
from repro.scenarios.__main__ import parse_seeds


#: Every registered traitor behavior at once — the smoke matrix's Byzantine
#: adversary (f = 1 < n/3 for the default n = 5).
_BYZ_FULL = ByzantineSpec(
    behaviors=("forge", "mutate", "drop", "equivocate", "inflate"), traitors=1
)
#: The adaptive adversary: the *current coordinator* turns traitor.
_BYZ_COORDINATOR = ByzantineSpec(
    behaviors=("equivocate", "mutate", "inflate"), traitors=1, selection="coordinator"
)


def smoke_cases(n: int = 5, convergence_budget: float = 6_000.0) -> List[AuditCase]:
    """The CI smoke matrix (certified per sim seed by ``--smoke``).

    Static schedulers keep their historical 2-corruption coverage on the
    bare stack; every dynamic adversary runs once; the SMR-replicating
    stacks run with the ``smr_agreement`` invariant armed (under both the
    benign baseline and the adaptive coordinator-targeting adversary for
    ``vs_smr``).  Two Byzantine cases ride along: ``f < n/3`` traitors
    running *every* registered behavior against Bracha reliable broadcast
    (``rb_agreement`` / ``rb_validity`` armed), and an equivocating
    *coordinator* against the combined ``vs_smr_rb`` stack (all three
    invariants armed).  ``--n`` and ``--budget`` pass through; the stack mix
    is fixed by design (``--stacks`` applies to explicit sweeps only).
    """
    overrides = {"n": n, "convergence_budget": convergence_budget}
    return (
        build_cases(
            schedulers=static_schedulers(), corruption_seeds=[0, 1], **overrides
        )
        + build_cases(
            schedulers=dynamic_schedulers(), corruption_seeds=[0], **overrides
        )
        + build_cases(
            schedulers=["uniform", "target_coordinator"],
            corruption_seeds=[0],
            stacks=["vs_smr"],
            **overrides,
        )
        + build_cases(
            schedulers=["uniform"],
            corruption_seeds=[0],
            stacks=["shared_register"],
            **overrides,
        )
        + build_cases(
            schedulers=["uniform"],
            corruption_seeds=[0],
            stacks=["rb_bracha"],
            profiles=["none"],
            byzantine=_BYZ_FULL,
            **overrides,
        )
        + build_cases(
            schedulers=["uniform"],
            corruption_seeds=[0],
            stacks=["vs_smr_rb"],
            profiles=["none"],
            byzantine=_BYZ_COORDINATOR,
            **overrides,
        )
    )


def byzantine_cases(
    n: int = 5, convergence_budget: float = 6_000.0
) -> List[AuditCase]:
    """The dedicated active-adversary matrix (``--byzantine``).

    Every registered behavior attacks both reliable-broadcast variants; the
    adaptive coordinator-traitor attacks the combined SMR+RB stack under the
    benign and the coordinator-hunting scheduler; and one case layers the
    full transient corruption *on top of* live traitors (arbitrary state
    while under active attack — the hardest composition the audit
    certifies).
    """
    overrides = {"n": n, "convergence_budget": convergence_budget}
    return (
        build_cases(
            schedulers=["uniform", "delay_skew"],
            corruption_seeds=[0],
            stacks=["rb_bracha"],
            profiles=["none"],
            byzantine=_BYZ_FULL,
            **overrides,
        )
        + build_cases(
            schedulers=["uniform"],
            corruption_seeds=[0],
            stacks=["rb_dolev"],
            profiles=["none"],
            byzantine=_BYZ_FULL,
            **overrides,
        )
        + build_cases(
            schedulers=["uniform", "target_coordinator"],
            corruption_seeds=[0],
            stacks=["vs_smr_rb"],
            profiles=["none"],
            byzantine=_BYZ_COORDINATOR,
            **overrides,
        )
        + build_cases(
            schedulers=["uniform"],
            corruption_seeds=[0],
            stacks=["rb_bracha"],
            profiles=["default"],
            byzantine=ByzantineSpec(behaviors=("forge", "inflate"), traitors=1),
            **overrides,
        )
    )


def n24_cases(
    convergence_budget: float = 8_000.0,
    corrupt_at: float = 120.0,
) -> List[AuditCase]:
    """The large-topology tier: ``n=24`` under the paper-faithful model.

    Two dynamic adversaries (crash-recovery blackouts and the leaky one-way
    partition) against a 24-processor cluster running the literal Section-2
    communication model (link cleaning on every link, un-throttled
    heartbeats).  The corruption lands at t=120 — after the ~t=83 bootstrap
    convergence — so every run certifies re-convergence of a long-running
    converged system.  Tractable because of the sweep engine: the warm
    prefix path bootstraps each adversary's 120-time-unit prefix once and
    fans the corruption seeds out from the snapshot (on machines with more
    idle cores than fan-out, ``certify`` runs the group cold-parallel
    instead — whichever is faster).
    """
    return build_cases(
        schedulers=["crash_recovery", "partition_leak"],
        corruption_seeds=[0, 1],
        n=24,
        config="paper_faithful",
        corrupt_at=corrupt_at,
        convergence_budget=convergence_budget,
    )


def n128_cases(
    convergence_budget: float = 120.0,
    corrupt_at: float = 20.0,
) -> List[AuditCase]:
    """The scale tier: ``n=128`` full-state corruption on a coherent start.

    Only reachable with the failure detector's gap slack scaled to ``2n``
    (``fd_gap_slack=256``): with the default slack the heartbeat-count
    ramp's spread at this size turns ordinary staggering into perpetual
    suspicion churn, the cluster-wide no-reconfiguration windows never
    align, and *any* disturbance — even a converged system left alone —
    degenerates into an endless reset storm (a probe with default slack
    was still unconverged after 600 time units and 76k resets).  With the
    scaled slack the same system is stable, and recovery from the paper's
    full transient-fault model — 40% of nodes scrambled field-by-field
    *and* stale/garbled packets stuffed into in-flight channels (the
    ``default`` profile) — completes within a few time units: the global
    reset it triggers reconfigures as fast as a (slack-scaled) cold
    bootstrap, which the PR 7 fast paths made cheap.  The runs exercise
    exactly those paths: garbled fulls break delta chains (fallback +
    full-vector repair), corruption flips the convergence ledger's dirty
    sets, and the per-event cost rides the incremental predicate.  One
    static and one dynamic adversary keep the tier tractable: at this
    size every run executes hundreds of thousands of events even with
    the warm prefix shared.
    """
    from repro.sim.config import coherent_start

    return build_cases(
        schedulers=["uniform", "crash_recovery"],
        corruption_seeds=[0],
        n=128,
        config=coherent_start(fd_gap_slack=256),
        profiles=["default", "channel_only"],
        corrupt_at=corrupt_at,
        convergence_budget=convergence_budget,
        # 0.2-unit tracker cadence (= fast_sim's min link delay): exact
        # per-event tracking is a ~300 us/event monitor tax at this size.
        convergence_poll=0.2,
    )


TIERS = {"n24": n24_cases, "n128": n128_cases}


def _scale_smoke(n: int, horizon: float, output: str | None) -> int:
    """Soft large-topology smoke: a coherent n-processor window (``--scale-smoke``).

    Builds the full cluster (lazy channels keep the ~n^2 link space
    virtual), runs ``horizon`` sim-units and reports event counts, wall
    clock and whether the ledger still sees the pre-installed configuration
    as converged.  Soft by design — it exercises construction, the delta
    gossip paths and the incremental ledger at sizes (n=512) where a
    certification run would be too slow for CI, and only fails on a crash
    or a completely dead cluster.
    """
    import time as _time

    from repro.sim.cluster import build_cluster
    from repro.sim.config import coherent_start

    t0 = _time.perf_counter()
    # Slack scaled to 2n: without it, suspicion churn at these sizes turns
    # the window into a reset storm and the event count measures the storm,
    # not steady-state gossip throughput.
    cluster = build_cluster(n=n, seed=0, config=coherent_start(fd_gap_slack=2 * n))
    built = _time.perf_counter() - t0
    t0 = _time.perf_counter()
    cluster.run(until=horizon)
    ran = _time.perf_counter() - t0
    stats = cluster.statistics()
    report = {
        "n": n,
        "horizon": horizon,
        "build_seconds": round(built, 3),
        "run_seconds": round(ran, 3),
        "executed_events": stats["executed_events"],
        "delivered_messages": stats["delivered_messages"],
        "converged": cluster.is_converged(),
        "channels_materialized": len(cluster.simulator.network._channels),
        "channels_possible": n * (n - 1),
    }
    print(json.dumps(report, indent=2, sort_keys=True))
    if output:
        Path(output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {output}")
    if stats["executed_events"] <= 0:
        print(f"[audit] scale smoke: no events executed at n={n}", file=sys.stderr)
        return 1
    return 0


def _render(report: dict) -> str:
    table = ResultTable(
        title=(
            f"audit sweep ({report['meta']['runs']} runs, "
            f"{report['meta']['workers']} worker(s))"
        ),
        columns=["case", "seed", "certified", "converged", "stabilized_at"],
    )
    for verdict in report["verdicts"]:
        convergence = verdict.get("convergence") or {}
        table.add(
            {"case": verdict["case"], "seed": verdict["seed"]},
            {
                "certified": verdict["certified"],
                "converged": verdict["converged"],
                "stabilized_at": convergence.get("stabilization_time"),
            },
        )
    return table.render()


def _print_cache(meta: dict) -> None:
    """One-line cache summary after a sweep (hits, warm prefixes, salt)."""
    cache = (meta or {}).get("cache") or {}
    if not cache.get("enabled"):
        return
    total = cache.get("hits", 0) + cache.get("misses", 0)
    stale = cache.get("stale_results", 0) + cache.get("stale_snapshots", 0)
    line = (
        f"[audit] cache: {cache.get('hits', 0)}/{total} result hits "
        f"({cache.get('hit_rate', 0.0):.0%}), "
        f"{cache.get('snapshot_hits', 0)} prefix snapshot(s) from disk, "
        f"salt {cache.get('salt')}"
    )
    if cache.get("refreshed"):
        line += " (refreshed)"
    if stale:
        line += f"; {stale} stale row(s) from other salts (prune to reclaim)"
    print(line)


def _demo_shrink(output: str | None, store: SweepStore | None = None) -> int:
    """Certify against a deliberately-too-strong invariant and shrink.

    ``no_reset_in_progress`` is violated by any corruption that triggers a
    brute-force reset, so the demo is *expected* to fail certification —
    success here means the shrinker reduced the violating corruption plan to
    a minimal reproducer that still fails.
    """
    case = AuditCase(
        scheduler="uniform",
        corruption_seed=0,
        invariants=(probes.no_reset_invariant(),),
    )
    print(f"[audit] demo case {case.name}: deliberately broken invariant "
          f"'no_reset_in_progress' (any reset violates it)")
    reproducer = shrink_case(case, seed=0, store=store)
    print(json.dumps(reproducer, indent=2, default=str))
    if output:
        Path(output).write_text(json.dumps(reproducer, indent=2, default=str) + "\n")
        print(f"wrote {output}")
    ok = (
        reproducer.get("still_fails")
        and reproducer.get("minimal_size", 0) >= 1
        and reproducer.get("minimal_size") < reproducer.get("atoms_total", 0)
    )
    if not ok:
        print("demo shrink FAILED to produce a minimal reproducer", file=sys.stderr)
        return 1
    print(
        f"[audit] shrank {reproducer['atoms_total']} corruption atoms to "
        f"{reproducer['minimal_size']} in {reproducer['trials']} trials"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.audit", description=__doc__)
    parser.add_argument(
        "--schedulers",
        default=None,
        help="comma-separated scheduler names (default: every registered one)",
    )
    parser.add_argument(
        "--corruptions", default="0", help='corruption-seed spec: "0,1", "0:4" or "7"'
    )
    parser.add_argument("--seeds", default="0", help='simulator-seed spec, same syntax')
    parser.add_argument("--workers", type=int, default=1, help="worker processes")
    parser.add_argument("--n", type=int, default=5, help="cluster size")
    parser.add_argument(
        "--stacks",
        default="bare",
        help="comma-separated stack profiles (SMR stacks arm smr_agreement)",
    )
    parser.add_argument(
        "--budget", type=float, default=6_000.0, help="re-convergence budget (sim time)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI gate: static x2 + dynamic adversaries + SMR-stack invariant "
        "cases + Byzantine traitor cases, 3 sim seeds each (54 runs)",
    )
    parser.add_argument(
        "--byzantine",
        action="store_true",
        help="the active-adversary matrix: traitor programs (every registered "
        "behavior) against Bracha/Dolev reliable broadcast and the combined "
        "vs_smr_rb stack, 3 sim seeds each",
    )
    parser.add_argument(
        "--profile-grid",
        action="store_true",
        help="sweep corruption intensities (light/default/heavy) and report "
        "stabilization-time distributions per profile (schedulers default to "
        "uniform,delay_skew here to bound the grid; widen with --schedulers)",
    )
    parser.add_argument(
        "--profiles",
        default=None,
        help=f"comma-separated profile names for --profile-grid "
        f"(default: {','.join(sorted(PROFILES))})",
    )
    parser.add_argument(
        "--tier",
        default=None,
        choices=sorted(TIERS),
        help="run a named matrix tier (n24: 24 processors, paper_faithful "
        "config, two dynamic adversaries, corruption at t=120; n128: 128 "
        "processors, coherent start, light corruption at t=60)",
    )
    parser.add_argument(
        "--scale-smoke",
        type=int,
        default=None,
        metavar="N",
        help="soft large-topology smoke: build a coherent N-processor "
        "cluster, run a short window, report events/wall/convergence "
        "(n=512 in CI; fails only on a dead cluster)",
    )
    parser.add_argument(
        "--smoke-horizon",
        type=float,
        default=2.0,
        help="sim-time window of --scale-smoke (default: 2.0)",
    )
    parser.add_argument(
        "--cold",
        action="store_true",
        help="disable warm prefix sharing (every run pays its own bootstrap; "
        "results are identical, only slower)",
    )
    parser.add_argument(
        "--demo-shrink",
        action="store_true",
        help="run the broken-invariant shrinking demonstration and exit",
    )
    cache_group = parser.add_argument_group(
        "persistent sweep cache",
        "content-addressed result + prefix-snapshot store (repro.audit.store); "
        "fingerprints fold in a source-tree salt, so any change under "
        "src/repro invalidates every cached row automatically",
    )
    cache_group.add_argument(
        "--cache-dir",
        default=str(DEFAULT_CACHE_DIR),
        help=f"cache directory (default: {DEFAULT_CACHE_DIR}; created on "
        "demand, safe to share between concurrent invocations)",
    )
    cache_group.add_argument(
        "--no-cache",
        action="store_true",
        help="run without the persistent cache (no reads, no writes)",
    )
    cache_group.add_argument(
        "--refresh",
        action="store_true",
        help="ignore cached results/snapshots but write fresh ones back",
    )
    parser.add_argument(
        "--list-schedulers", action="store_true", help="list schedulers and exit"
    )
    parser.add_argument(
        "--list-behaviors",
        action="store_true",
        help="list registered Byzantine behaviors and exit",
    )
    parser.add_argument("--output", default=None, help="write the verdict JSON here")
    args = parser.parse_args(argv)

    if args.list_schedulers:
        for name in available_schedulers():
            print(f"{name:16s} {get_scheduler(name).description}")
        return 0

    if args.list_behaviors:
        for name in available_behaviors():
            print(f"{name:16s} {BEHAVIORS[name].description}")
        return 0

    store = None if args.no_cache else SweepStore(args.cache_dir)
    try:
        return _dispatch(args, store)
    finally:
        if store is not None:
            store.close()


def _dispatch(args: argparse.Namespace, store: SweepStore | None) -> int:
    """Run the selected mode against the (possibly disabled) sweep cache."""
    if args.demo_shrink:
        return _demo_shrink(args.output, store=store)

    if args.scale_smoke is not None:
        return _scale_smoke(args.scale_smoke, args.smoke_horizon, args.output)

    if args.profile_grid:
        schedulers = (
            args.schedulers.split(",") if args.schedulers else ["uniform", "delay_skew"]
        )
        report = sweep_profile_grid(
            schedulers=schedulers,
            seeds=parse_seeds(args.seeds),
            profiles=args.profiles.split(",") if args.profiles else None,
            stacks=args.stacks.split(","),
            corruption_seeds=parse_seeds(args.corruptions),
            workers=args.workers,
            n=args.n,
            convergence_budget=args.budget,
            store=store,
            refresh=args.refresh,
        )
        print(json.dumps(report["grid"], indent=2, sort_keys=True))
        _print_cache(report.get("meta") or {})
        if args.output:
            path = Path(args.output)
            path.write_text(json.dumps(report, indent=2, sort_keys=True, default=str) + "\n")
            print(f"wrote {path}")
        if not report["certified"]:
            print(f"NOT CERTIFIED: {report['failed']}", file=sys.stderr)
            return 1
        return 0

    if args.tier:
        # A tier is a fixed matrix; silently ignoring contradictory flags
        # would certify a different sweep than the user asked for.
        ignored = [
            flag
            for flag, value, default in (
                ("--schedulers", args.schedulers, None),
                ("--corruptions", args.corruptions, "0"),
                ("--stacks", args.stacks, "bare"),
                ("--profiles", args.profiles, None),
                ("--n", args.n, 5),
                ("--budget", args.budget, 6_000.0),
            )
            if value != default
        ]
        if ignored:
            print(
                f"[audit] --tier {args.tier} fixes the matrix; drop {ignored} "
                f"(only --seeds/--workers/--cold/--output and the cache flags "
                f"apply to a tier)",
                file=sys.stderr,
            )
            return 2
        cases = TIERS[args.tier]()
        seeds = parse_seeds(args.seeds)
    elif args.smoke:
        cases = smoke_cases(n=args.n, convergence_budget=args.budget)
        seeds = [0, 1, 2]
    elif args.byzantine:
        cases = byzantine_cases(n=args.n, convergence_budget=args.budget)
        seeds = [0, 1, 2]
    else:
        schedulers = (
            args.schedulers.split(",") if args.schedulers else available_schedulers()
        )
        cases = build_cases(
            schedulers=schedulers,
            corruption_seeds=parse_seeds(args.corruptions),
            n=args.n,
            stacks=args.stacks.split(","),
            convergence_budget=args.budget,
        )
        seeds = parse_seeds(args.seeds)

    report = certify(
        cases,
        seeds=seeds,
        workers=args.workers,
        reuse_prefix=not args.cold,
        store=store,
        refresh=args.refresh,
    )
    print(_render(report))
    _print_cache(report.get("meta") or {})

    if args.output:
        path = Path(args.output)
        path.write_text(json.dumps(report, indent=2, sort_keys=True, default=str) + "\n")
        print(f"wrote {path}")

    if not report["certified"]:
        print(f"NOT CERTIFIED: {report['failed']}", file=sys.stderr)
        return 1
    print(
        f"[audit] certified {report['meta']['runs']} runs "
        f"({len(cases)} corrupted-state x scheduler cases x {len(seeds)} seeds)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
