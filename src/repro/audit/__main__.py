"""CLI: certify self-stabilization from arbitrary states.

Examples::

    python -m repro.audit --list-schedulers
    python -m repro.audit --smoke                      # CI gate: 30 runs
    python -m repro.audit --schedulers delay_skew,slow_node \\
        --corruptions 0:4 --seeds 0:4 --workers 4 --output audit.json
    python -m repro.audit --demo-shrink                # broken invariant ->
                                                       # minimal reproducer
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from repro.analysis import probes
from repro.analysis.metrics import ResultTable
from repro.audit.harness import AuditCase, build_cases, certify, shrink_case
from repro.audit.schedulers import available_schedulers, get_scheduler
from repro.scenarios.__main__ import parse_seeds


def _render(report: dict) -> str:
    table = ResultTable(
        title=(
            f"audit sweep ({report['meta']['runs']} runs, "
            f"{report['meta']['workers']} worker(s))"
        ),
        columns=["case", "seed", "certified", "converged", "stabilized_at"],
    )
    for verdict in report["verdicts"]:
        convergence = verdict.get("convergence") or {}
        table.add(
            {"case": verdict["case"], "seed": verdict["seed"]},
            {
                "certified": verdict["certified"],
                "converged": verdict["converged"],
                "stabilized_at": convergence.get("stabilization_time"),
            },
        )
    return table.render()


def _demo_shrink(output: str | None) -> int:
    """Certify against a deliberately-too-strong invariant and shrink.

    ``no_reset_in_progress`` is violated by any corruption that triggers a
    brute-force reset, so the demo is *expected* to fail certification —
    success here means the shrinker reduced the violating corruption plan to
    a minimal reproducer that still fails.
    """
    case = AuditCase(
        scheduler="uniform",
        corruption_seed=0,
        invariants=(probes.no_reset_invariant(),),
    )
    print(f"[audit] demo case {case.name}: deliberately broken invariant "
          f"'no_reset_in_progress' (any reset violates it)")
    reproducer = shrink_case(case, seed=0)
    print(json.dumps(reproducer, indent=2, default=str))
    if output:
        Path(output).write_text(json.dumps(reproducer, indent=2, default=str) + "\n")
        print(f"wrote {output}")
    ok = (
        reproducer.get("still_fails")
        and reproducer.get("minimal_size", 0) >= 1
        and reproducer.get("minimal_size") < reproducer.get("atoms_total", 0)
    )
    if not ok:
        print("demo shrink FAILED to produce a minimal reproducer", file=sys.stderr)
        return 1
    print(
        f"[audit] shrank {reproducer['atoms_total']} corruption atoms to "
        f"{reproducer['minimal_size']} in {reproducer['trials']} trials"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.audit", description=__doc__)
    parser.add_argument(
        "--schedulers",
        default=None,
        help="comma-separated scheduler names (default: every registered one)",
    )
    parser.add_argument(
        "--corruptions", default="0", help='corruption-seed spec: "0,1", "0:4" or "7"'
    )
    parser.add_argument("--seeds", default="0", help='simulator-seed spec, same syntax')
    parser.add_argument("--workers", type=int, default=1, help="worker processes")
    parser.add_argument("--n", type=int, default=5, help="cluster size")
    parser.add_argument("--stack", default="bare", help="stack profile name")
    parser.add_argument(
        "--budget", type=float, default=6_000.0, help="re-convergence budget (sim time)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI gate: every scheduler x 2 corruption seeds x 3 sim seeds (30 runs)",
    )
    parser.add_argument(
        "--demo-shrink",
        action="store_true",
        help="run the broken-invariant shrinking demonstration and exit",
    )
    parser.add_argument(
        "--list-schedulers", action="store_true", help="list schedulers and exit"
    )
    parser.add_argument("--output", default=None, help="write the verdict JSON here")
    args = parser.parse_args(argv)

    if args.list_schedulers:
        for name in available_schedulers():
            print(f"{name:16s} {get_scheduler(name).description}")
        return 0

    if args.demo_shrink:
        return _demo_shrink(args.output)

    if args.smoke:
        schedulers: List[str] = available_schedulers()
        corruption_seeds = [0, 1]
        seeds = [0, 1, 2]
    else:
        schedulers = (
            args.schedulers.split(",") if args.schedulers else available_schedulers()
        )
        corruption_seeds = parse_seeds(args.corruptions)
        seeds = parse_seeds(args.seeds)

    cases = build_cases(
        schedulers=schedulers,
        corruption_seeds=corruption_seeds,
        n=args.n,
        stack=args.stack,
        convergence_budget=args.budget,
    )
    report = certify(cases, seeds=seeds, workers=args.workers)
    print(_render(report))

    if args.output:
        path = Path(args.output)
        path.write_text(json.dumps(report, indent=2, sort_keys=True, default=str) + "\n")
        print(f"wrote {path}")

    if not report["certified"]:
        print(f"NOT CERTIFIED: {report['failed']}", file=sys.stderr)
        return 1
    print(
        f"[audit] certified {report['meta']['runs']} runs "
        f"({len(cases)} corrupted-state x scheduler cases x {len(seeds)} seeds)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
