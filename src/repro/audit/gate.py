"""Convergence-bound regression gate over audit-sweep verdicts.

The audit smoke matrix (``python -m repro.audit --smoke``) is deterministic:
the same code produces the same worst-case stabilization time, so that time
is a *convergence bound* the repository can pin.  This gate compares the
``stabilization`` section of a sweep report against a checked-in baseline
JSON and fails CI when the worst case regresses beyond the tolerance —
a protocol change that silently makes recovery 25% slower now breaks the
build instead of drifting unnoticed.

Usage::

    python -m repro.audit.gate AUDIT_smoke.json                 # compare
    python -m repro.audit.gate AUDIT_smoke.json --refresh       # re-pin
    python -m repro.audit.gate AUDIT_n24.json --tier n24        # a tier
    python -m repro.audit.gate AUDIT_smoke.json \\
        --baseline benchmarks/audit_baseline.json --tolerance 0.25

The baseline is refreshed (``make audit-baseline``) whenever a deliberate
change moves the bound; the refresh rewrites the JSON from the same report
format the gate reads, so baseline and verdict can never drift structurally.

Beyond the default smoke bounds, the baseline file carries

* ``tiers.<name>`` — stabilization bounds of additional matrix tiers (the
  ``n24`` tier's bounds live under ``tiers.n24``; select with ``--tier``),
  preserved across refreshes of other tiers;
* ``matrix_wall_seconds.<tier>`` — the pinned wall-clock of the sweep, used
  by a **soft gate**: a matrix that takes >50% longer than its pin prints a
  warning (never a failure — wall-clock is load-dependent), so sweep
  throughput regressions surface in CI logs next to the hard bounds.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

DEFAULT_BASELINE = Path("benchmarks/audit_baseline.json")
DEFAULT_TOLERANCE = 0.25
#: Soft wall-clock gate: warn when the sweep takes >50% longer than pinned.
WALL_TOLERANCE = 0.50


def extract_bounds(report: Dict[str, Any]) -> Dict[str, Any]:
    """The gate-relevant slice of a sweep report (also the baseline schema)."""
    stabilization = report.get("stabilization") or {}
    return {
        "worst": stabilization.get("worst"),
        "runs": stabilization.get("runs", 0),
        "unconverged": stabilization.get("unconverged", []),
        "by_case": stabilization.get("by_case", {}),
    }


def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, Any]:
    """Compare current bounds against the baseline; collect failures.

    The hard gate is the overall worst case; per-case regressions beyond the
    tolerance are reported as warnings (they attribute a worst-case move to a
    specific adversary but only fail the gate when they *are* the worst).
    """
    failures: List[str] = []
    warnings: List[str] = []
    if current.get("worst") is None:
        failures.append("current sweep has no stabilization times at all")
    if current.get("unconverged"):
        failures.append(f"unconverged runs: {current['unconverged']}")
    baseline_worst = baseline.get("worst")
    if baseline_worst is None:
        failures.append("baseline has no worst-case bound; re-pin with --refresh")
    elif current.get("worst") is not None:
        limit = baseline_worst * (1.0 + tolerance)
        if current["worst"] > limit:
            failures.append(
                f"worst-case stabilization regressed: {current['worst']:.2f} > "
                f"{limit:.2f} (baseline {baseline_worst:.2f} + {tolerance:.0%})"
            )
    baseline_cases = baseline.get("by_case", {})
    for case, time in sorted(current.get("by_case", {}).items()):
        pinned = baseline_cases.get(case)
        if pinned and time > pinned * (1.0 + tolerance):
            warnings.append(
                f"{case}: {time:.2f} vs baseline {pinned:.2f} (+{time / pinned - 1:.0%})"
            )
    return {
        "ok": not failures,
        "failures": failures,
        "warnings": warnings,
        "current_worst": current.get("worst"),
        "baseline_worst": baseline_worst,
        "tolerance": tolerance,
    }


def wall_warning(
    wall_seconds: Optional[float],
    pinned_seconds: Optional[float],
    tolerance: float = WALL_TOLERANCE,
) -> Optional[str]:
    """The soft throughput gate: a warning string, or ``None`` when fine.

    Deliberately never a failure — wall-clock depends on runner load — but a
    matrix that slowed >50% against its pin is exactly the regression the
    sweep-throughput engine exists to prevent, so it must be visible.
    """
    if not wall_seconds or not pinned_seconds:
        return None
    limit = pinned_seconds * (1.0 + tolerance)
    if wall_seconds <= limit:
        return None
    return (
        f"matrix wall-clock regressed: {wall_seconds:.1f}s > {limit:.1f}s "
        f"(pinned {pinned_seconds:.1f}s + {tolerance:.0%}; soft gate, not failing)"
    )


def _baseline_slice(baseline: Dict[str, Any], tier: Optional[str]) -> Dict[str, Any]:
    """The bounds to compare against: a named tier's, or the top level."""
    if tier:
        return baseline.get("tiers", {}).get(tier, {})
    return baseline


def _merge_refresh(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    tier: Optional[str],
    wall_seconds: Optional[float],
) -> Dict[str, Any]:
    """Pin *current* into *baseline* without clobbering other tiers/pins."""
    if tier:
        baseline.setdefault("tiers", {})[tier] = current
    else:
        baseline.update(current)
    if wall_seconds:
        baseline.setdefault("matrix_wall_seconds", {})[tier or "smoke"] = round(
            wall_seconds, 2
        )
    return baseline


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.audit.gate", description=__doc__
    )
    parser.add_argument("report", help="sweep report JSON (from python -m repro.audit)")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help=f"checked-in baseline JSON (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed relative regression of the worst case (default: 0.25)",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="pin the report's bounds into the baseline instead of comparing "
        "(preserves other tiers and wall-clock pins)",
    )
    parser.add_argument(
        "--tier",
        default=None,
        help="compare/refresh a named baseline tier (e.g. 'n24') instead of "
        "the top-level smoke bounds",
    )
    args = parser.parse_args(argv)

    report = json.loads(Path(args.report).read_text())
    cache = (report.get("meta") or {}).get("cache") or {}
    if cache.get("enabled"):
        # Surface the sweep-cache economics next to the bounds: how much of
        # the matrix was answered from disk, and how many rows a source
        # change has invalidated (stale salts awaiting a prune).
        print(
            f"[gate] cache: {cache.get('hits', 0)} hit(s), "
            f"{cache.get('misses', 0)} miss(es) "
            f"(hit rate {cache.get('hit_rate', 0.0):.0%}), "
            f"{cache.get('snapshot_hits', 0)} prefix snapshot hit(s), "
            f"{cache.get('stale_results', 0) + cache.get('stale_snapshots', 0)} "
            f"invalidated row(s), salt {cache.get('salt')}"
        )
    if not report.get("certified", False):
        print(f"[gate] sweep not certified: {report.get('failed')}", file=sys.stderr)
        return 1
    current = extract_bounds(report)
    wall_seconds = (report.get("meta") or {}).get("wall_seconds")

    baseline_path = Path(args.baseline)
    if args.refresh:
        baseline = (
            json.loads(baseline_path.read_text()) if baseline_path.exists() else {}
        )
        baseline = _merge_refresh(baseline, current, args.tier, wall_seconds)
        baseline_path.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
        print(
            f"[gate] pinned baseline {baseline_path}"
            f"{f' tier {args.tier}' if args.tier else ''} "
            f"(worst={current['worst']:.2f} over {current['runs']} runs)"
        )
        return 0

    if not baseline_path.exists():
        print(
            f"[gate] no baseline at {baseline_path}; run with --refresh to pin one",
            file=sys.stderr,
        )
        return 1
    baseline = json.loads(baseline_path.read_text())
    slice_ = _baseline_slice(baseline, args.tier)
    if not slice_:
        print(
            f"[gate] baseline has no tier {args.tier!r}; "
            f"run with --refresh --tier {args.tier} to pin it",
            file=sys.stderr,
        )
        return 1
    outcome = compare(current, slice_, tolerance=args.tolerance)
    # The wall pin describes one specific matrix shape; comparing a custom
    # sweep (different run count) against the smoke pin would warn on every
    # run and train people to ignore the soft gate.
    soft = None
    if current.get("runs") == slice_.get("runs"):
        soft = wall_warning(
            wall_seconds,
            baseline.get("matrix_wall_seconds", {}).get(args.tier or "smoke"),
        )
    if soft:
        print(f"[gate] warning: {soft}")
    for warning in outcome["warnings"]:
        print(f"[gate] warning: {warning}")
    if not outcome["ok"]:
        for failure in outcome["failures"]:
            print(f"[gate] FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"[gate] ok: worst-case stabilization {outcome['current_worst']:.2f} "
        f"within {args.tolerance:.0%} of baseline {outcome['baseline_worst']:.2f}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
