"""Persistent sweep cache: content-addressed results + disk-backed snapshots.

Every audit/certification sweep used to recompute the world from scratch:
warm prefix snapshots lived only in parent memory ("cannot cross a process
boundary except by fork inheritance"), so each ``make audit-smoke`` /
``audit-n128`` / CI invocation re-bootstrapped identical ``(config, seed)``
prefixes and re-ran thousands of ``(case, seed)`` cells whose inputs had not
changed since the last run.  This module makes both survive across
invocations, processes and machines:

* The **result store** maps a deterministic *cell fingerprint* — the SHA-256
  of the canonical JSON of the fully-resolved
  :class:`~repro.audit.harness.AuditCase` (scheduler, corruption seed and
  profile, stack, config, Byzantine spec, armed invariants, every scheduler
  parameter), the simulator seed, and a **code-version salt** derived from
  hashing the ``src/repro`` source tree — to the complete deterministic run
  entry (verdict, stabilization trajectory, invariant intervals, workload
  reports).  A hit replays the stored entry instead of dispatching the run.
* The **snapshot store** maps ``(prefix fingerprint, seed)`` to a pickled
  pre-corruption :class:`~repro.sim.snapshot.SimSnapshot`, so the expensive
  bootstrap prefix of a sweep cell is paid once *ever* (per code version),
  not once per process: ``certify`` and ``shrink_case`` resume disk-warm
  prefixes byte-identically to a cold run (pinned by the test-suite).

Correct invalidation is the crux, and it is structural: the salt is folded
into **every** fingerprint, so any change to any ``.py`` file under
``src/repro`` rotates the salt and every lookup simply misses — stale
entries are never *consulted*, only counted (``stats()["stale_results"]``)
and reclaimable via :meth:`SweepStore.prune`.  The self-stabilization
framing of the source paper makes this caching safe to verify: any cached
trajectory can be cross-checked byte-for-byte against a cold run, which is
exactly what the warm-cache CI job and ``python -m repro.audit.store check``
do.

Layout of a cache directory (default ``.audit_cache/``, gitignored)::

    <cache-dir>/sweep_cache.sqlite      # both tables, WAL journal

The CLI::

    python -m repro.audit.store stats  [--cache-dir DIR]
    python -m repro.audit.store prune  [--cache-dir DIR]   # drop other salts
    python -m repro.audit.store check WARM.json --against COLD.json \
        [--min-hit-rate 0.9]           # the warm-cache CI assertion
"""

from __future__ import annotations

import argparse
import dataclasses
import enum
import hashlib
import json
import sqlite3
import sys
import time
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Iterable, Optional

from repro.sim.snapshot import SimSnapshot

#: Default cache directory, relative to the invoking process's CWD.  The
#: repository .gitignore covers it; ``--cache-dir`` relocates it (a shared
#: cache volume in CI, a scratch disk for big tiers).
DEFAULT_CACHE_DIR = Path(".audit_cache")

_DB_NAME = "sweep_cache.sqlite"

#: Result-entry keys that are *not* part of the deterministic surface: wall
#: clock depends on machine load and worker pids on the OS.  They are
#: scrubbed before write-back and before any byte-comparison, so a cached
#: replay and a cold run of the same cell serialize identically.
VOLATILE_KEYS = frozenset({"wall_seconds", "worker_pid"})


# ---------------------------------------------------------------------------
# Canonical serialization and fingerprints
# ---------------------------------------------------------------------------
def canonical_value(obj: Any) -> Any:
    """Reduce *obj* to a JSON-stable value: the fingerprint's view of it.

    Deterministic by construction — dicts are emitted with sorted keys, sets
    as sorted lists, dataclasses as ``(qualified class name, field dict)``
    pairs, enums by name, callables by module-qualified name (the *code* a
    callable runs is covered by the source-tree salt, not by its name).
    Two structurally equal values canonicalize identically regardless of
    insertion order or identity.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips floats exactly; json.dump would too, but being
        # explicit keeps the canonical form independent of dump options.
        return float(repr(obj)) if obj == obj else "nan"
    if isinstance(obj, enum.Enum):
        return {"%enum": f"{type(obj).__module__}.{type(obj).__qualname__}", "name": obj.name}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "%dc": f"{type(obj).__module__}.{type(obj).__qualname__}",
            "fields": {
                field.name: canonical_value(getattr(obj, field.name))
                for field in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, dict):
        return {
            "%dict": [
                [canonical_json(key), canonical_value(value)]
                for key, value in sorted(
                    obj.items(), key=lambda item: canonical_json(item[0])
                )
            ]
        }
    if isinstance(obj, (list, tuple)):
        return [canonical_value(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return {"%set": sorted(canonical_json(item) for item in obj)}
    if isinstance(obj, bytes):
        return {"%bytes": obj.hex()}
    if callable(obj):
        module = getattr(obj, "__module__", "?")
        name = getattr(obj, "__qualname__", getattr(obj, "__name__", repr(type(obj))))
        return {"%fn": f"{module}.{name}"}
    # Last resort: class-qualified repr.  The audit value algebra (frozen
    # dataclasses, enums, primitives, containers) never reaches this, but a
    # user-defined object with a deterministic repr still fingerprints
    # stably rather than raising.
    return {"%obj": f"{type(obj).__module__}.{type(obj).__qualname__}", "repr": repr(obj)}


def canonical_json(obj: Any) -> str:
    """The stable sorted-key JSON serialization of *obj* (satellite: the
    fingerprint helper for ``AuditCase`` / ``ScenarioSpec`` / ``ByzantineSpec``)."""
    return json.dumps(
        canonical_value(obj), sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def _hash_tree(root: Path) -> str:
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x01")
    return digest.hexdigest()[:16]


@lru_cache(maxsize=8)
def _cached_tree_hash(root: str) -> str:
    return _hash_tree(Path(root))


def source_tree_salt(root: Optional[Path] = None) -> str:
    """The code-version salt: a digest of every ``.py`` file under *root*
    (default: the installed ``repro`` package source tree).

    Folded into every fingerprint, so **any** source change — a protocol
    tweak, a scheduler fix, a new invariant — rotates the salt and forces
    recompute of every cell.  Coarse on purpose: proving which source lines
    a cell's trajectory depends on is exactly the problem content addressing
    exists to avoid.  Cached per process (the tree does not change under a
    running sweep).
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    return _cached_tree_hash(str(Path(root).resolve()))


def fingerprint_cell(case: Any, seed: int, salt: Optional[str] = None) -> str:
    """The result store's key for one ``(case, seed)`` sweep cell."""
    if salt is None:
        salt = source_tree_salt()
    payload = canonical_json({"case": case, "seed": seed, "salt": salt, "v": 1})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def fingerprint_prefix(prefix_key: str, salt: Optional[str] = None) -> str:
    """The snapshot store's prefix key: the harness's in-memory
    ``prefix_key`` digest widened with the code-version salt (an in-memory
    snapshot is valid for one process; a disk snapshot must also die with
    the code that produced it)."""
    if salt is None:
        salt = source_tree_salt()
    payload = canonical_json({"prefix": prefix_key, "salt": salt, "v": 1})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Deterministic result surfaces
# ---------------------------------------------------------------------------
def scrub_volatile(value: Any) -> Any:
    """A deep copy of *value* with every volatile key removed.

    Applied to run entries before write-back and byte-comparison: two
    executions of the same cell differ only in wall clock and worker
    identity, so what remains is the deterministic surface the cache stores.
    """
    if isinstance(value, dict):
        return {
            key: scrub_volatile(item)
            for key, item in value.items()
            if key not in VOLATILE_KEYS
        }
    if isinstance(value, list):
        return [scrub_volatile(item) for item in value]
    return value


def deterministic_report(report: Dict[str, Any]) -> Dict[str, Any]:
    """The byte-comparable projection of a ``certify`` report.

    Everything load- or machine-dependent is dropped (wall clock, worker
    accounting, prefix-reuse and cache hit counts); what remains — the
    verdicts, stabilization distribution, failure list and matrix identity —
    must serialize identically for two sweeps of the same code and inputs,
    however they were scheduled or cached.  The warm-cache CI job asserts
    exactly this equality between a cold and a fully cached run.
    """
    meta = report.get("meta", {})
    projected: Dict[str, Any] = {
        "meta": {
            "cases": meta.get("cases"),
            "seeds": meta.get("seeds"),
            "runs": meta.get("runs"),
            "corrupted_mid_bootstrap": meta.get("corrupted_mid_bootstrap"),
        },
        "certified": report.get("certified"),
        "failed": report.get("failed"),
        "verdicts": scrub_volatile(report.get("verdicts", [])),
        "stabilization": scrub_volatile(report.get("stabilization", {})),
    }
    if "reproducers" in report:
        projected["reproducers"] = scrub_volatile(report["reproducers"])
    return projected


def report_bytes(report: Dict[str, Any]) -> bytes:
    """Canonical bytes of a report's deterministic projection."""
    return json.dumps(
        deterministic_report(report), sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------
class SweepStore:
    """A content-addressed, SQLite-backed sweep cache (results + snapshots).

    One store instance owns one SQLite connection; it is safe to reuse
    across many ``certify`` calls in a process.  Concurrent *processes*
    sharing a cache directory are safe too (WAL journal; every write is a
    single upsert of an idempotent value — two racers write identical rows).
    """

    def __init__(self, directory: Path | str = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / _DB_NAME
        self._db = sqlite3.connect(self.path)
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.executescript(
            """
            CREATE TABLE IF NOT EXISTS results (
                fingerprint TEXT PRIMARY KEY,
                case_name   TEXT NOT NULL,
                seed        INTEGER NOT NULL,
                salt        TEXT NOT NULL,
                created     REAL NOT NULL,
                entry       TEXT NOT NULL
            );
            CREATE INDEX IF NOT EXISTS results_salt ON results (salt);
            CREATE TABLE IF NOT EXISTS snapshots (
                prefix      TEXT NOT NULL,
                seed        INTEGER NOT NULL,
                salt        TEXT NOT NULL,
                created     REAL NOT NULL,
                blob        BLOB NOT NULL,
                PRIMARY KEY (prefix, seed)
            );
            CREATE INDEX IF NOT EXISTS snapshots_salt ON snapshots (salt);
            """
        )
        self._db.commit()

    # -- results ----------------------------------------------------------
    def get_result(self, fingerprint: str) -> Optional[Dict[str, Any]]:
        row = self._db.execute(
            "SELECT entry FROM results WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        if row is None:
            return None
        return json.loads(row[0])

    def put_result(
        self,
        fingerprint: str,
        case_name: str,
        seed: int,
        entry: Dict[str, Any],
        salt: Optional[str] = None,
    ) -> None:
        """Write one cell's deterministic entry (volatile keys scrubbed)."""
        if salt is None:
            salt = source_tree_salt()
        self._db.execute(
            "INSERT OR REPLACE INTO results VALUES (?, ?, ?, ?, ?, ?)",
            (
                fingerprint,
                case_name,
                seed,
                salt,
                time.time(),
                json.dumps(scrub_volatile(entry), sort_keys=True, default=str),
            ),
        )
        self._db.commit()

    # -- snapshots --------------------------------------------------------
    def get_snapshot(self, prefix: str, seed: int) -> Optional[SimSnapshot]:
        row = self._db.execute(
            "SELECT blob FROM snapshots WHERE prefix = ? AND seed = ?",
            (prefix, seed),
        ).fetchone()
        if row is None:
            return None
        return SimSnapshot.from_bytes(row[0])

    def put_snapshot(
        self,
        prefix: str,
        seed: int,
        snapshot: SimSnapshot,
        salt: Optional[str] = None,
    ) -> None:
        if salt is None:
            salt = source_tree_salt()
        self._db.execute(
            "INSERT OR REPLACE INTO snapshots VALUES (?, ?, ?, ?, ?)",
            (prefix, seed, salt, time.time(), snapshot.to_bytes()),
        )
        self._db.commit()

    # -- maintenance ------------------------------------------------------
    def stats(self, salt: Optional[str] = None) -> Dict[str, Any]:
        """Row counts, staleness against the current salt, on-disk size."""
        if salt is None:
            salt = source_tree_salt()
        results = self._db.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        snapshots = self._db.execute("SELECT COUNT(*) FROM snapshots").fetchone()[0]
        stale_results = self._db.execute(
            "SELECT COUNT(*) FROM results WHERE salt != ?", (salt,)
        ).fetchone()[0]
        stale_snapshots = self._db.execute(
            "SELECT COUNT(*) FROM snapshots WHERE salt != ?", (salt,)
        ).fetchone()[0]
        salts = [
            row[0]
            for row in self._db.execute(
                "SELECT DISTINCT salt FROM results UNION SELECT DISTINCT salt FROM snapshots"
            )
        ]
        return {
            "path": str(self.path),
            "salt": salt,
            "results": results,
            "snapshots": snapshots,
            "stale_results": stale_results,
            "stale_snapshots": stale_snapshots,
            "salts": sorted(salts),
            # WAL mode parks recent writes in the -wal side file until a
            # checkpoint; counting only the main file would report a busy
            # store as 4 KiB.
            "db_bytes": sum(
                side.stat().st_size
                for suffix in ("", "-wal", "-shm")
                for side in [Path(str(self.path) + suffix)]
                if side.exists()
            ),
        }

    def prune(self, keep_salt: Optional[str] = None) -> Dict[str, int]:
        """Delete every row whose salt differs from *keep_salt* (default:
        the current source tree's) — stale cells are never consulted, this
        only reclaims disk."""
        if keep_salt is None:
            keep_salt = source_tree_salt()
        dropped_results = self._db.execute(
            "DELETE FROM results WHERE salt != ?", (keep_salt,)
        ).rowcount
        dropped_snapshots = self._db.execute(
            "DELETE FROM snapshots WHERE salt != ?", (keep_salt,)
        ).rowcount
        self._db.commit()
        self._db.execute("VACUUM")
        return {"results": dropped_results, "snapshots": dropped_snapshots}

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "SweepStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepStore({str(self.path)!r})"


# ---------------------------------------------------------------------------
# CLI: stats / prune / the warm-cache CI assertion
# ---------------------------------------------------------------------------
def _cmd_stats(args: argparse.Namespace) -> int:
    with SweepStore(args.cache_dir) as store:
        print(json.dumps(store.stats(), indent=2, sort_keys=True))
    return 0


def _cmd_prune(args: argparse.Namespace) -> int:
    with SweepStore(args.cache_dir) as store:
        dropped = store.prune()
        print(
            f"[store] pruned {dropped['results']} stale results, "
            f"{dropped['snapshots']} stale snapshots from {store.path}"
        )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """The warm-cache CI assertion: a cached re-run must (a) hit on at least
    ``--min-hit-rate`` of its cells and (b) produce a byte-identical
    deterministic report."""
    warm = json.loads(Path(args.report).read_text())
    cold = json.loads(Path(args.against).read_text())
    cache = (warm.get("meta") or {}).get("cache") or {}
    hits, misses = cache.get("hits", 0), cache.get("misses", 0)
    total = hits + misses
    rate = (hits / total) if total else 0.0
    failures = []
    if not cache.get("enabled"):
        failures.append("warm report has no enabled cache (meta.cache missing)")
    elif rate < args.min_hit_rate:
        failures.append(
            f"cell hit rate {rate:.1%} ({hits}/{total}) below the "
            f"{args.min_hit_rate:.0%} floor"
        )
    warm_bytes, cold_bytes = report_bytes(warm), report_bytes(cold)
    if warm_bytes != cold_bytes:
        failures.append(
            f"deterministic verdicts differ between warm and cold runs "
            f"({len(warm_bytes)} vs {len(cold_bytes)} canonical bytes)"
        )
    for failure in failures:
        print(f"[store] FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print(
        f"[store] ok: {hits}/{total} cells served from cache ({rate:.1%}), "
        f"deterministic verdicts byte-identical ({len(warm_bytes)} bytes)"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.audit.store", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)
    stats = sub.add_parser("stats", help="row counts, staleness, disk size")
    stats.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR))
    stats.set_defaults(func=_cmd_stats)
    prune = sub.add_parser("prune", help="drop rows from other code versions")
    prune.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR))
    prune.set_defaults(func=_cmd_prune)
    check = sub.add_parser(
        "check", help="assert a warm re-run hit the cache and matched byte-for-byte"
    )
    check.add_argument("report", help="the warm (second) sweep report JSON")
    check.add_argument("--against", required=True, help="the cold (first) report JSON")
    check.add_argument("--min-hit-rate", type=float, default=0.9)
    check.set_defaults(func=_cmd_check)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
