"""Adversarial self-stabilization audit engine.

Certifies the paper's headline claim — convergence from an *arbitrary*
starting state — instead of trusting a handful of hand-picked corruptions:

* :mod:`repro.audit.arbitrary_state` — seeded, type-correct random
  corruption of every protocol-state field (recSA / recMA / failure
  detector / services) plus bounded channel stuffing, emitted as shrinkable
  :class:`~repro.sim.faults.CorruptionAtom` plans;
* :mod:`repro.audit.schedulers` — named adversarial message-timing
  schedulers (delay skew, heavy reordering, burst delivery, slow node)
  scenarios select by name like a stack profile;
* :mod:`repro.audit.harness` — the certification sweep over
  ``corrupted-states x schedulers x seeds`` (reusing the scenario engine's
  parallel matrix) with ddmin-style shrinking of violating runs to minimal
  reproducers;
* ``python -m repro.audit`` — the CLI (``--smoke`` is the CI gate).

This module only pulls in the simulation-layer pieces; the harness (which
depends on :mod:`repro.scenarios`) is imported on demand to keep the import
graph acyclic — ``repro.scenarios.workloads`` imports the generator from
here.
"""

from repro.audit.arbitrary_state import (
    DEFAULT_PROFILE,
    CorruptionProfile,
    apply_plan,
    generate_plan,
    plan_summary,
)
from repro.audit.schedulers import (
    AdversarialScheduler,
    available_schedulers,
    get_scheduler,
    register_scheduler,
)

__all__ = [
    "CorruptionProfile",
    "DEFAULT_PROFILE",
    "generate_plan",
    "apply_plan",
    "plan_summary",
    "AdversarialScheduler",
    "available_schedulers",
    "get_scheduler",
    "register_scheduler",
]
