"""The certification harness: sweep, verdicts and reproducer shrinking.

An :class:`AuditCase` names one ``(adversarial scheduler, corruption seed)``
cell of the audit matrix; :func:`certify` sweeps ``cases x simulator seeds``
through the scenario engine's parallel matrix (:func:`repro.scenarios.runner
.run_matrix`, so the audit reuses the same worker plumbing and determinism
contract as every other sweep) and asserts, per run, that

* the cluster **re-converges within the case's simulated-time budget** after
  the corruption (``converged`` / ``participating`` probes plus a
  :class:`~repro.sim.monitors.ConvergenceTracker` summary), and
* every declared :class:`~repro.analysis.probes.Invariant` held throughout
  (violation intervals recorded by the
  :class:`~repro.sim.monitors.InvariantMonitor`).

A run that fails certification is handed to :func:`shrink_case`, which
re-runs the deterministic corruption plan with ddmin-style subset bisection
until no atom can be removed without the failure disappearing — the minimal
reproducer every bug report wants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis import probes
from repro.audit.arbitrary_state import DEFAULT_PROFILE, CorruptionProfile
from repro.audit.schedulers import available_schedulers, get_scheduler
from repro.scenarios.library import register_scenario
from repro.scenarios.runner import run_matrix, run_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.workloads import ArbitraryStateWorkload


@dataclass(frozen=True)
class AuditCase:
    """One cell of the audit matrix: a scheduler plus a corruption stream.

    The simulator seed is *not* part of the case — :func:`certify` sweeps
    each case across seeds, so one case certifies against many executions of
    the same adversary.
    """

    scheduler: str
    corruption_seed: int
    n: int = 5
    stack: str = "bare"
    config: str = "fast_sim"
    corrupt_at: float = 30.0
    convergence_budget: float = 6_000.0
    profile: CorruptionProfile = DEFAULT_PROFILE
    invariants: Tuple[probes.Invariant, ...] = ()

    @property
    def name(self) -> str:
        # The name encodes every registry-relevant parameter so two sweeps
        # with different topologies/stacks in one process cannot silently
        # alias each other's registered specs.
        return (
            f"audit:{self.scheduler}:c{self.corruption_seed}"
            f":n{self.n}:{self.stack}"
        )

    def to_spec(
        self,
        include: Optional[Tuple[int, ...]] = None,
        record_atoms: bool = False,
    ) -> ScenarioSpec:
        """The scenario spec realizing this case (optionally a plan subset)."""
        get_scheduler(self.scheduler)  # fail fast on unknown names
        # Invariants arm at corruption time: bootstrap legitimately passes
        # through reset states, so earlier violations would not be
        # attributable to the injected arbitrary state.
        invariants = tuple(
            inv if inv.arm_after > 0.0 else inv.armed_at(self.corrupt_at)
            for inv in self.invariants
        )
        return ScenarioSpec(
            name=self.name if include is None else f"{self.name}:shrink",
            description=(
                f"audit: arbitrary state (corruption seed "
                f"{self.corruption_seed}) under the {self.scheduler} scheduler"
            ),
            n=self.n,
            config=self.config,
            stack=self.stack,
            scheduler=self.scheduler,
            workloads=(
                ArbitraryStateWorkload(
                    at=self.corrupt_at,
                    seed=self.corruption_seed,
                    profile=self.profile,
                    include=include,
                    record_atoms=record_atoms,
                ),
            ),
            horizon=self.corrupt_at + 5.0,
            probes=(
                probes.converged(self.convergence_budget),
                probes.participating(self.convergence_budget),
            ),
            invariants=invariants,
            track_convergence=True,
        )


def build_cases(
    schedulers: Optional[Sequence[str]] = None,
    corruption_seeds: Sequence[int] = (0,),
    **overrides: Any,
) -> List[AuditCase]:
    """The cross product ``schedulers x corruption_seeds`` as audit cases."""
    names = list(schedulers) if schedulers is not None else available_schedulers()
    return [
        AuditCase(scheduler=name, corruption_seed=seed, **overrides)
        for name in names
        for seed in corruption_seeds
    ]


def run_case(
    case: AuditCase,
    seed: int,
    include: Optional[Tuple[int, ...]] = None,
    record_atoms: bool = False,
) -> Dict[str, Any]:
    """Execute one audit run (spec passed directly; no registration needed)."""
    return run_scenario(case.to_spec(include=include, record_atoms=record_atoms), seed=seed)


def _verdict(entry: Dict[str, Any], corrupt_at: Optional[float] = None) -> Dict[str, Any]:
    probes_out = entry.get("probes", {})
    convergence = entry.get("convergence")
    corrupted_converged = None
    if corrupt_at is not None and convergence is not None:
        # Whether the corruption actually hit an already-converged system —
        # under a slow adversary (or a large n) bootstrap can overrun
        # ``corrupt_at``, in which case the run certifies convergence *from*
        # the corrupted bootstrap state rather than re-convergence after it.
        first = convergence.get("first_true_time")
        corrupted_converged = first is not None and first <= corrupt_at
    return {
        "case": entry["scenario"],
        "seed": entry["seed"],
        "certified": bool(entry.get("ok")),
        "converged": probes_out.get("converged", {}).get("satisfied"),
        "all_participating": probes_out.get("all_participating", {}).get("satisfied"),
        "corrupted_converged_state": corrupted_converged,
        "convergence": convergence,
        "invariants": entry.get("invariants"),
        "corruption": entry.get("workload_reports"),
        "error": entry.get("error"),
    }


def certify(
    cases: Sequence[AuditCase],
    seeds: Sequence[int],
    workers: int = 1,
    shrink_failures: bool = True,
    max_shrink_trials: int = 64,
) -> Dict[str, Any]:
    """Sweep ``cases x seeds``; return the JSON-serializable audit report.

    The cases are registered as named scenarios (re-registration allowed) so
    the parallel matrix workers can resolve them, exactly like the built-in
    scenario library.
    """
    by_name: Dict[str, AuditCase] = {}
    for case in cases:
        register_scenario(case.to_spec(), replace=True)
        by_name[case.name] = case
    sweep = run_matrix([case.name for case in cases], seeds=seeds, workers=workers)
    verdicts = [
        _verdict(entry, corrupt_at=by_name[entry["scenario"]].corrupt_at)
        for entry in sweep["results"]
    ]
    failures = [v for v in verdicts if not v["certified"]]
    report: Dict[str, Any] = {
        "meta": {
            "cases": sorted(by_name),
            "seeds": list(seeds),
            "workers": sweep["meta"]["workers"],
            "runs": len(verdicts),
            # Runs where bootstrap overran corrupt_at: those certify
            # convergence from a corrupted bootstrap state, not
            # re-convergence of a converged system.
            "corrupted_mid_bootstrap": sum(
                1 for v in verdicts if v["corrupted_converged_state"] is False
            ),
        },
        "certified": not failures,
        "failed": [f"{v['case']}@{v['seed']}" for v in failures],
        "verdicts": verdicts,
    }
    if shrink_failures and failures:
        report["reproducers"] = [
            shrink_case(
                by_name[v["case"]], v["seed"], max_trials=max_shrink_trials
            )
            for v in failures
        ]
    return report


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------
def _fails(result: Dict[str, Any]) -> bool:
    return not result.get("ok")


def _plan_size(result: Dict[str, Any]) -> int:
    for entry in result.get("workload_reports", ()):
        if entry.get("workload") == "arbitrary_state":
            return int(entry.get("atoms_total", 0))
    return 0


def shrink_case(
    case: AuditCase, seed: int, max_trials: int = 64
) -> Dict[str, Any]:
    """Shrink *case*'s corruption plan to a minimal failing subset (ddmin).

    The plan is a pure function of ``(case, seed)``, so subsets are stable
    across re-runs; the shrinker repeatedly bisects the surviving index set,
    keeping any complement that still fails, and refines granularity until
    either every single-atom removal breaks the failure (1-minimality) or
    the trial budget is spent.
    """
    full = run_case(case, seed)
    total = _plan_size(full)
    base = {"case": case.name, "seed": seed, "atoms_total": total}
    if not _fails(full):
        return {**base, "note": "run does not fail; nothing to shrink", "trials": 1}
    indices: List[int] = list(range(total))
    trials = 1
    granularity = 2
    while len(indices) > 1 and trials < max_trials:
        chunk = math.ceil(len(indices) / granularity)
        chunks = [indices[i : i + chunk] for i in range(0, len(indices), chunk)]
        reduced = False
        for drop in range(len(chunks)):
            candidate = [
                index
                for which, part in enumerate(chunks)
                if which != drop
                for index in part
            ]
            if not candidate:
                continue
            result = run_case(case, seed, include=tuple(candidate))
            trials += 1
            if _fails(result):
                indices = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
            if trials >= max_trials:
                break
        if not reduced:
            if granularity >= len(indices):
                break
            granularity = min(len(indices), granularity * 2)
    final = run_case(case, seed, include=tuple(indices), record_atoms=True)
    atoms: List[str] = []
    for entry in final.get("workload_reports", ()):
        if entry.get("workload") == "arbitrary_state":
            atoms = list(entry.get("atoms", ()))
    return {
        **base,
        "minimal_indices": list(indices),
        "minimal_size": len(indices),
        "atoms": atoms,
        "still_fails": _fails(final),
        "trials": trials + 1,
    }
