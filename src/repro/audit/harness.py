"""The certification harness: sweep, verdicts and reproducer shrinking.

An :class:`AuditCase` names one ``(adversarial scheduler, corruption seed)``
cell of the audit matrix; :func:`certify` sweeps ``cases x simulator seeds``
through the scenario engine's parallel matrix (:func:`repro.scenarios.runner
.run_matrix`, so the audit reuses the same worker plumbing and determinism
contract as every other sweep) and asserts, per run, that

* the cluster **re-converges within the case's simulated-time budget** after
  the corruption (``converged`` / ``participating`` probes plus a
  :class:`~repro.sim.monitors.ConvergenceTracker` summary), and
* every declared :class:`~repro.analysis.probes.Invariant` held throughout
  (violation intervals recorded by the
  :class:`~repro.sim.monitors.InvariantMonitor`).

Warm prefix sharing
-------------------
Before the corruption fires, every run of a sweep cell is **pure
deterministic replay**: it depends on the topology, stack, config, scheduler
program and simulator seed — but *not* on the corruption seed, profile or
plan subset, all of which are read at fire time.  :func:`certify` therefore
groups cases by that pre-corruption *prefix* (:func:`prefix_key`), bootstraps
each distinct ``(prefix, simulator seed)`` once, snapshots it right before
the first event at ``corrupt_at`` (:class:`~repro.sim.snapshot.SimSnapshot`),
and fans the corruption cases out from the warm snapshot — the dominant cost
of a matrix drops from O(cases) bootstraps to O(distinct prefixes).  The
``fork``-based worker pool inherits parent-captured snapshots copy-on-write.
Warm results are byte-identical to cold ones (pinned by the test-suite);
``reuse_prefix=False`` forces the historical cold path.

A run that fails certification is handed to :func:`shrink_case`, which
re-runs the deterministic corruption plan with ddmin-style subset bisection
until no atom can be removed without the failure disappearing — the minimal
reproducer every bug report wants.  The shrinker reuses one prefix snapshot
across all its probe runs, so each ddmin trial skips bootstrap too.
"""

from __future__ import annotations

import hashlib
import math
import os
import statistics
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis import probes
from repro.audit.arbitrary_state import (
    DEFAULT_PROFILE,
    PROFILES,
    CorruptionProfile,
    get_profile,
)
from repro.audit.byzantine import ByzantineSpec, ByzantineWorkload
from repro.audit.schedulers import available_schedulers, get_scheduler
from repro.scenarios.library import register_scenario
from repro.scenarios.runner import drive, finalize, prepare, run_matrix, run_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.workloads import (
    ArbitraryStateWorkload,
    RBBroadcastWorkload,
    SMRCommandWorkload,
)
from repro.audit.store import (
    SweepStore,
    fingerprint_cell,
    fingerprint_prefix,
    source_tree_salt,
)
from repro.sim.snapshot import SimSnapshot

#: Stacks whose nodes run a ``"vs"`` service, i.e. can multicast commands.
SMR_STACKS = ("vs_smr", "shared_register", "vs_smr_rb")

#: Stacks whose nodes run an ``"rb"`` reliable-broadcast service; audit cases
#: on these get broadcast traffic plus the rb_* invariants armed.
RB_STACKS = ("rb_bracha", "rb_dolev", "rb_naive", "vs_smr_rb")


def _digest(value: Any) -> str:
    """Short stable content digest (``repr`` is deterministic for the frozen
    dataclasses and plain tuples this is applied to)."""
    return hashlib.sha1(repr(value).encode("utf-8")).hexdigest()[:8]


def _dynamic_audit_params(scheduler: str, corrupt_at: float) -> Dict[str, Any]:
    """Audit-tuned defaults for the dynamic environment programs.

    An audit run re-converges within a few simulated seconds of the
    corruption, so a dynamic adversary with generic scenario timings (first
    transition at t=40) would never fire before the probes are satisfied.
    Anchoring the program at ``corrupt_at`` makes it adversarial *during*
    recovery, which is the whole point of the audit.
    """
    t = corrupt_at
    if scheduler == "crash_recovery":
        return {"start": t + 2.0, "period": 25.0, "outage": 10.0, "epochs": 3}
    if scheduler == "partition_leak":
        return {"at": t + 2.0, "flip_at": t + 40.0, "heal_at": t + 80.0}
    if scheduler == "target_coordinator":
        return {"start": t + 2.0, "period": 20.0, "epochs": 4}
    return {}


@dataclass(frozen=True)
class AuditCase:
    """One cell of the audit matrix: a scheduler plus a corruption stream.

    The simulator seed is *not* part of the case — :func:`certify` sweeps
    each case across seeds, so one case certifies against many executions of
    the same adversary.  ``profile`` may be a :class:`CorruptionProfile` or a
    registered intensity name (``"light"`` / ``"default"`` / ``"heavy"`` /
    ``"none"``).

    ``byzantine`` adds an *active* adversary on top of (or, with the
    ``"none"`` profile, instead of) the transient corruption: a
    :class:`~repro.audit.byzantine.ByzantineSpec` whose traitor programs are
    installed at ``corrupt_at + spec.delay`` and uninstalled after
    ``spec.duration``.  For a Byzantine case, the shrinkable plan is the
    ordered traitor-assignment list rather than the corruption atoms.
    """

    scheduler: str
    corruption_seed: int
    n: int = 5
    stack: str = "bare"
    config: str = "fast_sim"
    corrupt_at: float = 30.0
    convergence_budget: float = 6_000.0
    #: Sim-time cadence for the run's ConvergenceTracker; 0.0 = evaluate
    #: after every event (exact transition times — the small-n default).
    #: Large-n tiers set this: at n=128 the per-event predicate is a
    #: ~300 us/event monitor tax, and a 0.2-unit cadence only coarsens
    #: the reported stabilization times by that interval.  Measurement
    #: cadence only — the event trajectory is identical either way, so
    #: it is deliberately NOT part of the case name or prefix key.
    convergence_poll: float = 0.0
    profile: Any = DEFAULT_PROFILE
    invariants: Tuple[probes.Invariant, ...] = ()
    scheduler_params: Tuple[Tuple[str, Any], ...] = ()
    byzantine: Optional[ByzantineSpec] = None

    @property
    def profile_name(self) -> str:
        """The registered name of the case's profile (digest-tagged if none)."""
        if isinstance(self.profile, str):
            return self.profile
        for name, profile in PROFILES.items():
            if profile == self.profile:
                return name
        # Unregistered profiles get a stable content digest so two different
        # ad-hoc profiles never share a case name.
        return f"custom-{_digest(self.profile)}"

    @property
    def name(self) -> str:
        # The name encodes every registry-relevant parameter so two sweeps
        # with different topologies/stacks/intensities/program parameters in
        # one process cannot silently alias each other's registered specs.
        base = (
            f"audit:{self.scheduler}:c{self.corruption_seed}"
            f":n{self.n}:{self.stack}"
        )
        profile = self.profile_name
        if profile != "default":
            base = f"{base}:{profile}"
        if self.config != "fast_sim":
            config = self.config if isinstance(self.config, str) else _digest(self.config)
            base = f"{base}:{config}"
        if self.corrupt_at != 30.0:
            base = f"{base}:t{self.corrupt_at:g}"
        if self.convergence_budget != 6_000.0:
            base = f"{base}:b{self.convergence_budget:g}"
        if self.scheduler_params:
            base = f"{base}:p{_digest(tuple(sorted(self.scheduler_params)))}"
        if self.invariants:
            base = f"{base}:i-" + "+".join(sorted(i.name for i in self.invariants))
        if self.byzantine is not None:
            behaviors = "+".join(self.byzantine.behaviors)
            base = f"{base}:byz-{behaviors}-{_digest(self.byzantine)}"
        return base

    def to_spec(
        self,
        include: Optional[Tuple[int, ...]] = None,
        record_atoms: bool = False,
    ) -> ScenarioSpec:
        """The scenario spec realizing this case (optionally a plan subset)."""
        scheduler = get_scheduler(self.scheduler)  # fail fast on unknown names
        params = dict(self.scheduler_params)
        if scheduler.dynamic:
            params = {**_dynamic_audit_params(self.scheduler, self.corrupt_at), **params}
        # Invariants arm at corruption time: bootstrap legitimately passes
        # through reset states, so earlier violations would not be
        # attributable to the injected arbitrary state.
        invariants = tuple(
            inv if inv.arm_after > 0.0 else inv.armed_at(self.corrupt_at)
            for inv in self.invariants
        )
        # For a Byzantine case the shrinkable plan is the traitor-assignment
        # list, so ``include`` routes to the ByzantineWorkload and the
        # corruption (usually the "none" profile) always applies in full.
        workloads: Tuple[Any, ...] = (
            ArbitraryStateWorkload(
                at=self.corrupt_at,
                seed=self.corruption_seed,
                profile=get_profile(self.profile),
                include=include if self.byzantine is None else None,
                record_atoms=record_atoms,
            ),
        )
        if self.byzantine is not None:
            workloads += (
                ByzantineWorkload(
                    at=self.corrupt_at + self.byzantine.delay,
                    spec=self.byzantine,
                    include=include,
                    record_atoms=record_atoms,
                ),
            )
        if self.stack in RB_STACKS:
            # Broadcast traffic around the adversarial window, so the armed
            # rb_agreement / rb_validity invariants and the rb_delivered
            # probe check real delivery tables.  One broadcast lands before
            # the disturbance; the rest go out while traitors are active —
            # including one from pid 0, which the "lowest" traitor-selection
            # policy makes a *traitor-origin* broadcast (the equivocation
            # case reliable broadcast exists to survive).
            workloads += tuple(
                RBBroadcastWorkload(
                    at=self.corrupt_at + offset,
                    origin=origin % self.n,
                    payload=("audit-rb", index),
                )
                for index, (offset, origin) in enumerate(
                    ((-10.0, 1), (2.0, 0), (6.0, 2), (12.0, 3))
                )
            )
        if self.stack in SMR_STACKS:
            # Multicast traffic around the corruption, so the armed
            # smr_agreement invariant compares real delivery histories
            # instead of holding vacuously over empty ones: one command
            # delivered before the corruption fires and two submitted into
            # the recovering system.
            workloads += tuple(
                SMRCommandWorkload(
                    at=self.corrupt_at + offset,
                    submitter=submitter % self.n,
                    command=("audit", index),
                )
                for index, (offset, submitter) in enumerate(
                    ((-12.0, 0), (8.0, 1), (20.0, 2))
                )
            )
        return ScenarioSpec(
            name=self.name if include is None else f"{self.name}:shrink",
            description=(
                f"audit: arbitrary state (corruption seed "
                f"{self.corruption_seed}) under the {self.scheduler} scheduler"
            ),
            n=self.n,
            config=self.config,
            stack=self.stack,
            scheduler=self.scheduler,
            scheduler_params=tuple(sorted(params.items())),
            workloads=workloads,
            horizon=self.corrupt_at + 5.0,
            probes=(
                probes.converged(self.convergence_budget),
                probes.participating(self.convergence_budget),
            )
            + (
                (probes.rb_delivered(self.convergence_budget),)
                if self.stack in RB_STACKS
                else ()
            ),
            invariants=invariants,
            track_convergence=True,
            convergence_poll=self.convergence_poll,
        )


#: Invariants armed on stacks that replicate state: SMR safety is certified,
#: not just probed (ROADMAP: "smr_agreement as an armed invariant").  RB
#: stacks certify the reliable-broadcast safety pair; the combined
#: ``vs_smr_rb`` stack certifies all three at once.
_RB_INVARIANTS = (probes.rb_agreement_invariant(), probes.rb_validity_invariant())
STACK_INVARIANTS: Dict[str, Tuple[probes.Invariant, ...]] = {
    "vs_smr": (probes.smr_agreement_invariant(),),
    "shared_register": (probes.smr_agreement_invariant(),),
    "rb_bracha": _RB_INVARIANTS,
    "rb_dolev": _RB_INVARIANTS,
    "rb_naive": _RB_INVARIANTS,
    "vs_smr_rb": (probes.smr_agreement_invariant(),) + _RB_INVARIANTS,
}


def build_cases(
    schedulers: Optional[Sequence[str]] = None,
    corruption_seeds: Sequence[int] = (0,),
    stacks: Optional[Sequence[str]] = None,
    profiles: Optional[Sequence[Any]] = None,
    **overrides: Any,
) -> List[AuditCase]:
    """The cross product ``schedulers × corruption_seeds [× stacks × profiles]``.

    Stacks with registered :data:`STACK_INVARIANTS` get those invariants
    armed automatically (explicit ``invariants`` overrides win).
    """
    names = list(schedulers) if schedulers is not None else available_schedulers()
    stack_list = list(stacks) if stacks is not None else [overrides.pop("stack", "bare")]
    profile_list = list(profiles) if profiles is not None else [
        overrides.pop("profile", DEFAULT_PROFILE)
    ]
    cases = []
    for stack in stack_list:
        stack_overrides = dict(overrides)
        if "invariants" not in stack_overrides:
            stack_overrides["invariants"] = STACK_INVARIANTS.get(stack, ())
        for profile in profile_list:
            for name in names:
                for seed in corruption_seeds:
                    cases.append(
                        AuditCase(
                            scheduler=name,
                            corruption_seed=seed,
                            stack=stack,
                            profile=profile,
                            **stack_overrides,
                        )
                    )
    return cases


# ---------------------------------------------------------------------------
# Warm prefix sharing: bootstrap once per (prefix, seed), fan corruption out
# ---------------------------------------------------------------------------
def prefix_key(case: AuditCase) -> str:
    """Digest of everything that shapes a case's *pre-corruption* execution.

    Two cases with the same key evolve identically until the corruption
    event fires (the corruption seed, profile and plan subset are read at
    fire time, not install time — see ``ArbitraryStateWorkload._fire``), so
    they can share one bootstrapped snapshot per simulator seed.  The probe
    budgets are deliberately *not* part of the key: probes run after the
    corruption, against the case's own spec.
    """
    spec = case.to_spec()
    stack = case.stack if isinstance(case.stack, str) else _digest(case.stack)
    config = case.config if isinstance(case.config, str) else _digest(case.config)
    return _digest(
        (
            case.n,
            stack,
            config,
            case.scheduler,
            spec.scheduler_params,
            case.corrupt_at,
            tuple((inv.name, inv.arm_after) for inv in spec.invariants),
            # A Byzantine case's spec *contents* are read at fire time and
            # patchable on a warm snapshot, but the workload's presence and
            # its firing instant shape the installed event set.
            case.byzantine is not None,
            case.byzantine.delay if case.byzantine is not None else 0.0,
        )
    )


def prefix_snapshot(case: AuditCase, seed: int) -> Optional[SimSnapshot]:
    """Bootstrap *case*'s pre-corruption prefix and snapshot at ``corrupt_at``.

    The run pauses right before the first event at ``time >= corrupt_at`` —
    whether that lands mid-bootstrap (slow adversary, large ``n``) or in the
    post-convergence horizon — and the whole prepared run (cluster, monitor,
    tracker, phase state, pending corruption event) is captured.  Returns
    ``None`` in the degenerate case where nothing was left to pause on (the
    caller falls back to cold runs).
    """
    run = prepare(case.to_spec(), seed=seed)
    completed = drive(run, stop_before=case.corrupt_at)
    if completed:
        return None
    return SimSnapshot.capture(run)


def _run_from_snapshot(
    snapshot: SimSnapshot,
    case: AuditCase,
    seed: int,
    include: Optional[Tuple[int, ...]] = None,
    record_atoms: bool = False,
) -> Dict[str, Any]:
    """Resume a restored prefix as *case*: patch the corruption, run, finalize.

    The pending corruption event in the snapshot belongs to whatever case
    built the prefix; its corruption-shaping fields are overwritten on the
    restored copy before the event fires, which is indistinguishable from a
    cold run of *case* (the fields are only read at fire time).
    """
    run = snapshot.restore()
    (workload,) = [
        w for w in run.spec.workloads if isinstance(w, ArbitraryStateWorkload)
    ]
    # The workload dataclass is frozen (specs are value-like); the restored
    # copy is private to this run, so patching it is safe.  ``include``
    # routes like in :meth:`AuditCase.to_spec`: to the traitor-assignment
    # plan for a Byzantine case, to the corruption plan otherwise.
    object.__setattr__(workload, "seed", case.corruption_seed)
    object.__setattr__(workload, "profile", get_profile(case.profile))
    object.__setattr__(workload, "include", include if case.byzantine is None else None)
    object.__setattr__(workload, "record_atoms", record_atoms)
    if case.byzantine is not None:
        (byz_workload,) = [
            w for w in run.spec.workloads if isinstance(w, ByzantineWorkload)
        ]
        object.__setattr__(byz_workload, "spec", case.byzantine)
        object.__setattr__(byz_workload, "include", include)
        object.__setattr__(byz_workload, "record_atoms", record_atoms)
    # Swap in the case's own spec for naming and probe budgets; the installed
    # objects (workloads, monitor, tracker) stay the restored ones.
    run.spec = case.to_spec(include=include, record_atoms=record_atoms)
    drive(run)
    return finalize(run)


#: Per-sweep warm state, rebuilt by :func:`certify` and inherited by forked
#: matrix workers (copy-on-write).  Under a spawn start method the workers
#: see empty dicts and fall back to cold runs — correct, just slower.
_WARM_CASES: Dict[str, AuditCase] = {}
_WARM_SNAPSHOTS: Dict[Tuple[str, int], SimSnapshot] = {}


def _warm_job(name: str, seed: int) -> Dict[str, Any]:
    """Matrix job runner: resume the case's warm snapshot when one exists."""
    case = _WARM_CASES.get(name)
    if case is not None:
        snapshot = _WARM_SNAPSHOTS.get((prefix_key(case), seed))
        if snapshot is not None:
            return _run_from_snapshot(snapshot, case, seed)
    return run_scenario(name, seed=seed)


def run_case(
    case: AuditCase,
    seed: int,
    include: Optional[Tuple[int, ...]] = None,
    record_atoms: bool = False,
    snapshot: Optional[SimSnapshot] = None,
) -> Dict[str, Any]:
    """Execute one audit run (spec passed directly; no registration needed).

    With *snapshot* (a :func:`prefix_snapshot` of the same ``(case, seed)``
    prefix), the bootstrap is skipped by resuming the warm copy — the result
    is byte-identical to the cold path.
    """
    if snapshot is not None:
        return _run_from_snapshot(snapshot, case, seed, include=include, record_atoms=record_atoms)
    return run_scenario(case.to_spec(include=include, record_atoms=record_atoms), seed=seed)


def _verdict(entry: Dict[str, Any], corrupt_at: Optional[float] = None) -> Dict[str, Any]:
    probes_out = entry.get("probes", {})
    convergence = entry.get("convergence")
    corrupted_converged = None
    if corrupt_at is not None and convergence is not None:
        # Whether the corruption actually hit an already-converged system —
        # under a slow adversary (or a large n) bootstrap can overrun
        # ``corrupt_at``, in which case the run certifies convergence *from*
        # the corrupted bootstrap state rather than re-convergence after it.
        first = convergence.get("first_true_time")
        corrupted_converged = first is not None and first <= corrupt_at
    return {
        "case": entry["scenario"],
        "seed": entry["seed"],
        "certified": bool(entry.get("ok")),
        "converged": probes_out.get("converged", {}).get("satisfied"),
        "all_participating": probes_out.get("all_participating", {}).get("satisfied"),
        "corrupted_converged_state": corrupted_converged,
        "convergence": convergence,
        "invariants": entry.get("invariants"),
        "corruption": entry.get("workload_reports"),
        "error": entry.get("error"),
    }


def certify(
    cases: Sequence[AuditCase],
    seeds: Sequence[int],
    workers: int = 1,
    shrink_failures: bool = True,
    max_shrink_trials: int = 64,
    reuse_prefix: bool = True,
    store: Optional[SweepStore] = None,
    refresh: bool = False,
) -> Dict[str, Any]:
    """Sweep ``cases x seeds``; return the JSON-serializable audit report.

    The cases are registered as named scenarios (re-registration allowed) so
    the parallel matrix workers can resolve them, exactly like the built-in
    scenario library.

    With *reuse_prefix* (the default), cases sharing a pre-corruption prefix
    are fanned out from one warm :class:`~repro.sim.snapshot.SimSnapshot` per
    ``(prefix, simulator seed)`` instead of each paying a full bootstrap;
    results are byte-identical to the cold path.  Snapshots are built in the
    parent (serially — an in-memory snapshot cannot cross a process boundary
    except by fork inheritance), so without a persistent store a group only
    goes warm when its fan-out beats that serial cost: at least 2 cases per
    prefix, and at least one case per *actually available* core the pool
    could otherwise use for parallel cold bootstraps.

    With a *store* (:class:`~repro.audit.store.SweepStore`), the sweep is
    **incremental across invocations**: every ``(case, seed)`` cell is first
    looked up by its content-addressed fingerprint and cache hits replay the
    stored deterministic entry instead of dispatching a run; only the misses
    reach the matrix.  Pre-corruption prefix snapshots are read from and
    written back to the store's disk-backed snapshot table, so warm prefixes
    survive across processes and machines too (any group with >= 2 pending
    members is worth persisting, since the snapshot outlives the process).
    Any source change under ``src/repro`` rotates the fingerprint salt and
    every lookup misses — stale cells are counted, never consulted.
    *refresh* forces a full recompute (both tables bypassed on read,
    overwritten on write) for paranoid re-validation of cached cells.
    ``meta.cache`` reports hit/miss/invalidation counts either way.
    """
    wall_start = time.perf_counter()
    by_name: Dict[str, AuditCase] = {}
    for case in cases:
        register_scenario(case.to_spec(), replace=True)
        by_name[case.name] = case
    job_runner = None
    groups: Dict[str, List[AuditCase]] = {}
    warm_jobs = 0
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - platform without affinity
        cores = os.cpu_count() or 1
    parallelism = max(1, min(workers, cores, len(by_name) * max(1, len(seeds))))

    # ------------------------------------------------------------------
    # Cache lookup: serve every content-addressed hit from the store and
    # dispatch only the misses.  The fingerprint covers the fully-resolved
    # case, the simulator seed and the source-tree salt, so a hit is exactly
    # a cell whose inputs (code included) have not changed.
    # ------------------------------------------------------------------
    salt = source_tree_salt() if store is not None else None
    fingerprints: Dict[Tuple[str, int], str] = {}
    cached_entries: List[Dict[str, Any]] = []
    snapshot_hits = 0
    snapshots_written = 0
    if store is not None:
        miss_jobs: List[Tuple[str, int]] = []
        for case in by_name.values():
            for seed in seeds:
                fingerprint = fingerprint_cell(case, seed, salt)
                fingerprints[(case.name, seed)] = fingerprint
                entry = None if refresh else store.get_result(fingerprint)
                if entry is not None:
                    cached_entries.append(entry)
                else:
                    miss_jobs.append((case.name, seed))
    else:
        miss_jobs = [
            (case.name, seed) for case in by_name.values() for seed in seeds
        ]
    miss_set = set(miss_jobs)

    if reuse_prefix and miss_jobs:
        for case in by_name.values():
            groups.setdefault(prefix_key(case), []).append(case)
        _WARM_CASES.clear()
        _WARM_SNAPSHOTS.clear()
        _WARM_CASES.update(by_name)
        for key, members in groups.items():
            for seed in seeds:
                pending = [case for case in members if (case.name, seed) in miss_set]
                if not pending:
                    continue
                snapshot = None
                prefix_fp = fingerprint_prefix(key, salt) if store is not None else None
                if store is not None and not refresh:
                    # Disk-warm prefix: loading a pickled snapshot costs
                    # milliseconds, so a hit is worth taking at any fan-out.
                    snapshot = store.get_snapshot(prefix_fp, seed)
                    if snapshot is not None:
                        snapshot_hits += 1
                if snapshot is None:
                    # Building costs one serial parent bootstrap.  In-memory
                    # only, it must beat the pool's parallel cold bootstraps
                    # (>= max(2, parallelism) members); persisted, it outlives
                    # the process, so any real sharing (>= 2) already pays.
                    threshold = 2 if store is not None else max(2, parallelism)
                    if len(pending) < threshold:
                        continue
                    snapshot = prefix_snapshot(members[0], seed)
                    if snapshot is not None and store is not None:
                        store.put_snapshot(prefix_fp, seed, snapshot, salt)
                        snapshots_written += 1
                if snapshot is not None:
                    _WARM_SNAPSHOTS[(key, seed)] = snapshot
                    warm_jobs += len(pending)
        if _WARM_SNAPSHOTS:
            job_runner = _warm_job
    try:
        names = list(by_name)
        if miss_jobs:
            sweep = run_matrix(
                names,
                seeds=seeds,
                workers=workers,
                job_runner=job_runner,
                jobs=miss_jobs,
            )
            sweep_results = sweep["results"]
            sweep_meta = sweep["meta"]
        else:
            # Every cell was served from the cache; there is no sweep.
            sweep_results = []
            sweep_meta = {"workers": 0, "sweep": {"jobs": 0, "fully_cached": True}}
        if store is not None:
            for entry in sweep_results:
                # Entries carrying an "error" are not deterministic facts
                # about the cell (worker death, transient OOM) — never cache
                # them, so the next invocation retries.
                if entry.get("error"):
                    continue
                store.put_result(
                    fingerprints[(entry["scenario"], entry["seed"])],
                    entry["scenario"],
                    entry["seed"],
                    entry,
                    salt,
                )
        results = sorted(
            cached_entries + sweep_results,
            key=lambda entry: (entry["scenario"], entry["seed"]),
        )
        verdicts = [
            _verdict(entry, corrupt_at=by_name[entry["scenario"]].corrupt_at)
            for entry in results
        ]
        failures = [v for v in verdicts if not v["certified"]]
        report: Dict[str, Any] = {
            "meta": {
                "cases": sorted(by_name),
                "seeds": list(seeds),
                "workers": sweep_meta["workers"],
                "runs": len(verdicts),
                "sweep": sweep_meta["sweep"],
                # Warm prefix sharing: how many distinct pre-corruption
                # prefixes the matrix had, and how many of its runs resumed
                # a snapshot instead of bootstrapping from scratch.
                "prefix_reuse": {
                    "enabled": bool(reuse_prefix),
                    "distinct_prefixes": len(groups) if reuse_prefix else None,
                    "snapshots": len(_WARM_SNAPSHOTS) if reuse_prefix else 0,
                    "warm_runs": warm_jobs,
                },
                # The persistent sweep cache: cells served without dispatch,
                # cells recomputed, disk-warm prefix traffic, and how many
                # stored rows the current source-tree salt invalidates.
                "cache": _cache_meta(
                    store,
                    salt,
                    hits=len(cached_entries),
                    misses=len(miss_jobs),
                    refreshed=refresh,
                    snapshot_hits=snapshot_hits,
                    snapshots_written=snapshots_written,
                ),
                # Runs where bootstrap overran corrupt_at: those certify
                # convergence from a corrupted bootstrap state, not
                # re-convergence of a converged system.
                "corrupted_mid_bootstrap": sum(
                    1 for v in verdicts if v["corrupted_converged_state"] is False
                ),
            },
            "certified": not failures,
            "failed": [f"{v['case']}@{v['seed']}" for v in failures],
            "verdicts": verdicts,
        }
        report["stabilization"] = stabilization_distribution(verdicts)
        if shrink_failures and failures:
            # A failing case's prefix snapshot is usually already warm from
            # the sweep; hand it to the shrinker so ddmin skips the
            # re-bootstrap too.
            report["reproducers"] = [
                shrink_case(
                    by_name[v["case"]],
                    v["seed"],
                    max_trials=max_shrink_trials,
                    snapshot=_WARM_SNAPSHOTS.get(
                        (prefix_key(by_name[v["case"]]), v["seed"])
                    ),
                    store=store,
                )
                for v in failures
            ]
        report["meta"]["wall_seconds"] = time.perf_counter() - wall_start
        return report
    finally:
        if reuse_prefix:
            # The snapshots are full deep copies of simulation graphs; they
            # were only needed during the sweep (workers inherited them at
            # fork) and the shrink pass — don't hold the memory for the
            # process lifetime, not even when a worker death raised.
            _WARM_CASES.clear()
            _WARM_SNAPSHOTS.clear()


def _cache_meta(
    store: Optional[SweepStore],
    salt: Optional[str],
    hits: int,
    misses: int,
    refreshed: bool,
    snapshot_hits: int,
    snapshots_written: int,
) -> Dict[str, Any]:
    """The ``meta.cache`` section of a sweep report."""
    if store is None:
        return {"enabled": False}
    stats = store.stats(salt)
    return {
        "enabled": True,
        "dir": str(store.directory),
        "salt": salt,
        "refreshed": bool(refreshed),
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / (hits + misses), 4) if (hits + misses) else None,
        "snapshot_hits": snapshot_hits,
        "snapshots_written": snapshots_written,
        # Invalidation counts: rows stored under *other* source-tree salts.
        # They are never consulted (the salt is folded into every
        # fingerprint); `python -m repro.audit.store prune` reclaims them.
        "stale_results": stats["stale_results"],
        "stale_snapshots": stats["stale_snapshots"],
    }


# ---------------------------------------------------------------------------
# Stabilization-time distributions
# ---------------------------------------------------------------------------
def stabilization_distribution(verdicts: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Distribution of stabilization times across a sweep's verdicts.

    ``worst`` is the headline the convergence-bound regression gate compares
    against its checked-in baseline; ``by_case`` records each case's own
    worst so a regression is attributable to one adversary.
    """
    times: List[float] = []
    by_case: Dict[str, float] = {}
    unconverged: List[str] = []
    for verdict in verdicts:
        convergence = verdict.get("convergence") or {}
        time = convergence.get("stabilization_time")
        if time is None:
            unconverged.append(f"{verdict['case']}@{verdict['seed']}")
            continue
        times.append(time)
        case = verdict["case"]
        by_case[case] = max(by_case.get(case, 0.0), time)
    if not times:
        return {"runs": 0, "unconverged": unconverged}
    return {
        "runs": len(times),
        "unconverged": unconverged,
        "min": min(times),
        "median": statistics.median(times),
        "mean": statistics.fmean(times),
        "worst": max(times),
        "by_case": dict(sorted(by_case.items())),
    }


def sweep_profile_grid(
    schedulers: Sequence[str],
    seeds: Sequence[int],
    profiles: Optional[Sequence[str]] = None,
    stacks: Sequence[str] = ("bare",),
    corruption_seeds: Sequence[int] = (0,),
    workers: int = 1,
    store: Optional[SweepStore] = None,
    refresh: bool = False,
    **case_overrides: Any,
) -> Dict[str, Any]:
    """Worst-case stabilization-time distributions across corruption intensity.

    Sweeps ``profiles × stacks × schedulers × corruption_seeds × seeds`` and
    groups the resulting stabilization times *per profile*, so the report
    answers the ROADMAP question directly: how does worst-case recovery time
    scale with the intensity of the injected arbitrary state?
    """
    profile_names = list(profiles) if profiles is not None else sorted(PROFILES)
    grid: Dict[str, Any] = {}
    all_certified = True
    failed: List[str] = []
    for profile in profile_names:
        cases = build_cases(
            schedulers=schedulers,
            corruption_seeds=corruption_seeds,
            stacks=stacks,
            profiles=[profile],
            **case_overrides,
        )
        report = certify(
            cases,
            seeds=seeds,
            workers=workers,
            shrink_failures=False,
            store=store,
            refresh=refresh,
        )
        all_certified = all_certified and report["certified"]
        failed.extend(report["failed"])
        grid[profile] = report["stabilization"]
    return {
        "meta": {
            "profiles": profile_names,
            "stacks": list(stacks),
            "schedulers": list(schedulers),
            "corruption_seeds": list(corruption_seeds),
            "seeds": list(seeds),
            "runs": len(profile_names)
            * len(stacks)
            * len(schedulers)
            * len(corruption_seeds)
            * len(seeds),
        },
        "certified": all_certified,
        "failed": failed,
        "grid": grid,
    }


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------
def _fails(result: Dict[str, Any]) -> bool:
    return not result.get("ok")


def _plan_kind(case: AuditCase) -> str:
    """Which workload report holds the case's shrinkable plan."""
    return "byzantine" if case.byzantine is not None else "arbitrary_state"


def _plan_size(result: Dict[str, Any], kind: str = "arbitrary_state") -> int:
    for entry in result.get("workload_reports", ()):
        if entry.get("workload") == kind:
            return int(entry.get("atoms_total", 0))
    return 0


def shrink_case(
    case: AuditCase,
    seed: int,
    max_trials: int = 64,
    reuse_prefix: bool = True,
    snapshot: Optional[SimSnapshot] = None,
    store: Optional[SweepStore] = None,
) -> Dict[str, Any]:
    """Shrink *case*'s corruption plan to a minimal failing subset (ddmin).

    The plan is a pure function of ``(case, seed)``, so subsets are stable
    across re-runs; the shrinker repeatedly bisects the surviving index set,
    keeping any complement that still fails, and refines granularity until
    either every single-atom removal breaks the failure (1-minimality) or
    the trial budget is spent.

    Every probe run replays the *same* deterministic pre-corruption prefix,
    so with *reuse_prefix* the shrinker bootstraps once, snapshots, and
    resumes the warm copy per trial — a ddmin pass over a hundred atoms pays
    for one bootstrap instead of dozens.  A caller that already holds the
    matching prefix *snapshot* (``certify`` does, for failures of a warm
    sweep) can pass it in to skip even that one bootstrap; with a persistent
    *store*, the prefix is read from (or written back to) the disk snapshot
    table, so repeated shrink sessions — across processes — never pay the
    bootstrap again.
    """
    if snapshot is None and reuse_prefix:
        prefix_fp = (
            fingerprint_prefix(prefix_key(case)) if store is not None else None
        )
        if store is not None:
            snapshot = store.get_snapshot(prefix_fp, seed)
        if snapshot is None:
            snapshot = prefix_snapshot(case, seed)
            if snapshot is not None and store is not None:
                store.put_snapshot(prefix_fp, seed, snapshot)
    plan_kind = _plan_kind(case)
    full = run_case(case, seed, snapshot=snapshot)
    total = _plan_size(full, kind=plan_kind)
    base = {"case": case.name, "seed": seed, "plan": plan_kind, "atoms_total": total}
    if not _fails(full):
        return {**base, "note": "run does not fail; nothing to shrink", "trials": 1}
    indices: List[int] = list(range(total))
    trials = 1
    granularity = 2
    while len(indices) > 1 and trials < max_trials:
        chunk = math.ceil(len(indices) / granularity)
        chunks = [indices[i : i + chunk] for i in range(0, len(indices), chunk)]
        reduced = False
        for drop in range(len(chunks)):
            candidate = [
                index
                for which, part in enumerate(chunks)
                if which != drop
                for index in part
            ]
            if not candidate:
                continue
            result = run_case(case, seed, include=tuple(candidate), snapshot=snapshot)
            trials += 1
            if _fails(result):
                indices = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
            if trials >= max_trials:
                break
        if not reduced:
            if granularity >= len(indices):
                break
            granularity = min(len(indices), granularity * 2)
    final = run_case(case, seed, include=tuple(indices), record_atoms=True, snapshot=snapshot)
    atoms: List[str] = []
    for entry in final.get("workload_reports", ()):
        if entry.get("workload") == plan_kind:
            atoms = list(entry.get("atoms", ()))
    return {
        **base,
        "minimal_indices": list(indices),
        "minimal_size": len(indices),
        "atoms": atoms,
        "still_fails": _fails(final),
        "trials": trials + 1,
    }
