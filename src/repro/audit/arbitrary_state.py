"""The arbitrary-state generator: the paper's full transient-fault model.

The paper defines a transient fault as an **arbitrary starting state**: every
processor variable and every channel may hold any type-correct value (channel
content bounded by the capacity ``cap``).  The hand-written campaigns in
:mod:`repro.workloads.corruption` only ever corrupt a few hand-picked recSA /
recMA fields; this module generalizes fault injection to the whole protocol
state space:

* every replicated recSA array (``config``, ``prp``, ``fd``, ``part``,
  ``echo``, ``all``/``allSeen``) of every selected node,
* the recMA flag arrays and ``prev_config``,
* the failure detector's heartbeat-count vector (including its cache),
* the application services of the node's stack profile (labels, counters,
  virtual synchrony),
* channel stuffing with stale protocol packets of every wire type
  (recSA gossip, recMA flags, data-link tokens), up to channel capacity.

The generator emits a **plan** — an ordered list of
:class:`~repro.sim.faults.CorruptionAtom` values — instead of mutating state
directly.  A plan is a pure function of ``(cluster state, seed, profile)``,
so the audit harness can re-run subsets of it to shrink a violating run to a
minimal reproducer, and two runs of the same scenario seed produce the exact
same corruption.

One deliberate deviation from "fully arbitrary": the generator never flips
*every* node's own ``config`` entry to ``]`` (non-participant) at once.  The
joining mechanism (Algorithm 3.3) requires at least one configuration member
to answer ``Join`` requests — a system of joiners only is outside the paper's
model — so the lowest-pid selected node acts as an anchor whose own entry is
drawn from the participant-typed values (``⊥`` or a set).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.common.rng import make_rng
from repro.common.types import (
    BOTTOM,
    NOT_PARTICIPANT,
    Phase,
    ProcessId,
    Proposal,
    make_config,
)
from repro.core.recma import RecMAMessage
from repro.core.recsa import EchoTriple, RecSAMessage
from repro.datalink.token_exchange import DataLinkMessage
from repro.sim.faults import CorruptionAtom, FaultInjector
from repro.vs.virtual_synchrony import VSStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cluster import Cluster, ClusterNode


@dataclass(frozen=True)
class CorruptionProfile:
    """Intensity knobs of the arbitrary-state generator.

    Attributes
    ----------
    node_fraction:
        Fraction of alive nodes whose state is corrupted (at least one).
    field_probability:
        Per-field probability that a given protocol-state entry is rewritten.
    channel_fraction:
        Fraction of directed channel pairs that receive stale packets.
    channel_fill:
        Fraction of each stuffed channel's capacity filled with stale
        packets (the paper's adversary is bounded by ``cap`` per channel).
    corrupt_services:
        Also corrupt stack-profile services (labels/counters/VS state).
    corrupt_failure_detector:
        Also corrupt the heartbeat-count vector and its trusted-set cache.
    """

    node_fraction: float = 1.0
    field_probability: float = 0.5
    channel_fraction: float = 0.3
    channel_fill: float = 0.5
    corrupt_services: bool = True
    corrupt_failure_detector: bool = True


DEFAULT_PROFILE = CorruptionProfile()

#: Named corruption intensities — the axis the audit harness sweeps when it
#: measures worst-case stabilization-time *distributions* against corruption
#: intensity (ROADMAP: "CorruptionProfile grid").  Kept coarse on purpose:
#: the grid multiplies with schedulers, stacks and seeds.
PROFILES: Dict[str, CorruptionProfile] = {
    "light": CorruptionProfile(
        node_fraction=0.4, field_probability=0.25, channel_fraction=0.1, channel_fill=0.25
    ),
    "default": DEFAULT_PROFILE,
    "heavy": CorruptionProfile(
        node_fraction=1.0, field_probability=0.9, channel_fraction=0.6, channel_fill=1.0
    ),
    # No transient corruption at all — the profile Byzantine-only audit
    # cases use, so the sole disturbance is the traitor program and any
    # violation is attributable to it alone.
    "none": CorruptionProfile(
        node_fraction=0.0,
        field_probability=0.0,
        channel_fraction=0.0,
        channel_fill=0.0,
        corrupt_services=False,
        corrupt_failure_detector=False,
    ),
    # Channel-only corruption: every node's state is left intact and only
    # in-flight packets are replaced with stale/garbled payloads — the
    # paper's bounded channel adversary (O(N^2 * cap) stale messages) in
    # isolation.  The large-n audit tier runs it alongside ``default`` to
    # separate the two recovery mechanisms: stale-packet absorption (no
    # reset needed) vs the global reset that node-state corruption
    # triggers.  Note both are only gateable at n >= 128 with the failure
    # detector's gap slack scaled to ~2n (``fd_gap_slack``); with the
    # default slack, suspicion churn makes *any* disturbance at that size
    # an endless reset storm.
    "channel_only": CorruptionProfile(
        node_fraction=0.0,
        field_probability=0.0,
        channel_fraction=0.25,
        channel_fill=0.5,
        corrupt_services=False,
        corrupt_failure_detector=False,
    ),
}


def get_profile(ref: Any) -> CorruptionProfile:
    """Resolve a profile by name (profiles pass through unchanged)."""
    if isinstance(ref, CorruptionProfile):
        return ref
    try:
        return PROFILES[ref]
    except KeyError:
        raise KeyError(
            f"unknown corruption profile {ref!r}; available: {sorted(PROFILES)}"
        ) from None


# ---------------------------------------------------------------------------
# Random type-correct values
# ---------------------------------------------------------------------------
def _random_members(rng: random.Random, universe: Sequence[ProcessId]) -> Any:
    size = rng.randint(1, max(1, len(universe)))
    return make_config(rng.sample(list(universe), size))


def _random_config_value(
    rng: random.Random, universe: Sequence[ProcessId], allow_not_participant: bool = True
) -> Any:
    roll = rng.random()
    if roll < 0.15:
        return BOTTOM
    if roll < 0.30:
        return NOT_PARTICIPANT if allow_not_participant else BOTTOM
    if roll < 0.40:
        return frozenset()
    return _random_members(rng, universe)


def _random_proposal(rng: random.Random, universe: Sequence[ProcessId]) -> Proposal:
    phase = Phase(rng.choice([0, 1, 2]))
    members = None if rng.random() < 0.3 else _random_members(rng, universe)
    return Proposal(phase=phase, members=members)


def _random_view(rng: random.Random, universe: Sequence[ProcessId]) -> Any:
    return frozenset(rng.sample(list(universe), rng.randint(1, len(universe))))


def _random_stale_payload(
    rng: random.Random, source: ProcessId, universe: Sequence[ProcessId]
) -> Any:
    """A stale protocol packet of a random wire type (type-correct fields)."""
    roll = rng.random()
    if roll < 0.4:
        echo = None
        if rng.random() < 0.5:
            echo = EchoTriple(
                part=_random_view(rng, universe),
                prp=_random_proposal(rng, universe),
                all_flag=rng.random() < 0.5,
            )
        return RecSAMessage(
            sender=source,
            fd=_random_view(rng, universe),
            part=_random_view(rng, universe),
            config=_random_config_value(rng, universe),
            prp=_random_proposal(rng, universe),
            all_flag=rng.random() < 0.5,
            echo=echo,
        )
    if roll < 0.7:
        return RecMAMessage(
            sender=source,
            no_maj=rng.random() < 0.7,
            need_reconf=rng.random() < 0.7,
        )
    return DataLinkMessage(
        kind=rng.choice(["data", "ack", "clean", "clean-ack"]),
        link_sender=source,
        seq=rng.randint(0, 1),
        payload=None,
    )


# ---------------------------------------------------------------------------
# Plan generation
# ---------------------------------------------------------------------------
def _recsa_atoms(
    node: "ClusterNode",
    universe: Sequence[ProcessId],
    rng: random.Random,
    probability: float,
    anchor: bool,
) -> List[CorruptionAtom]:
    pid = node.pid
    atoms: List[CorruptionAtom] = [
        # The own config entry is always rewritten (the canonical transient
        # fault); the anchor node never becomes a non-participant.
        CorruptionAtom(
            kind="entry",
            pid=pid,
            path=("recsa", "config"),
            key=pid,
            value=_random_config_value(rng, universe, allow_not_participant=not anchor),
        )
    ]
    for other in universe:
        # The own entry was handled above (with the anchor guarantee); the
        # loop corrupts the replicated copies of every peer's state.
        if other != pid and rng.random() < probability:
            atoms.append(
                CorruptionAtom(
                    kind="entry",
                    pid=pid,
                    path=("recsa", "config"),
                    key=other,
                    value=_random_config_value(rng, universe),
                )
            )
        if rng.random() < probability:
            atoms.append(
                CorruptionAtom(
                    kind="entry",
                    pid=pid,
                    path=("recsa", "prp"),
                    key=other,
                    value=_random_proposal(rng, universe),
                )
            )
        if rng.random() < probability:
            atoms.append(
                CorruptionAtom(
                    kind="entry",
                    pid=pid,
                    path=("recsa", "all_flags"),
                    key=other,
                    value=rng.random() < 0.5,
                )
            )
        if rng.random() < probability:
            atoms.append(
                CorruptionAtom(
                    kind="entry",
                    pid=pid,
                    path=("recsa", "fd"),
                    key=other,
                    value=_random_view(rng, universe),
                )
            )
        if rng.random() < probability:
            atoms.append(
                CorruptionAtom(
                    kind="entry",
                    pid=pid,
                    path=("recsa", "part"),
                    key=other,
                    value=_random_view(rng, universe),
                )
            )
        if other != pid and rng.random() < probability:
            atoms.append(
                CorruptionAtom(
                    kind="entry",
                    pid=pid,
                    path=("recsa", "echo"),
                    key=other,
                    value=EchoTriple(
                        part=_random_view(rng, universe),
                        prp=_random_proposal(rng, universe),
                        all_flag=rng.random() < 0.5,
                    ),
                )
            )
    atoms.append(
        CorruptionAtom(
            kind="attr",
            pid=pid,
            path=("recsa",),
            key="all_seen",
            value=set(rng.sample(list(universe), rng.randint(0, len(universe)))),
        )
    )
    return atoms


def _recma_atoms(
    node: "ClusterNode",
    universe: Sequence[ProcessId],
    rng: random.Random,
    probability: float,
) -> List[CorruptionAtom]:
    pid = node.pid
    atoms: List[CorruptionAtom] = []
    # ``universe`` already contains the node's own pid.
    for other in universe:
        if rng.random() < probability:
            atoms.append(
                CorruptionAtom(
                    kind="entry",
                    pid=pid,
                    path=("recma", "no_maj"),
                    key=other,
                    value=rng.random() < 0.7,
                )
            )
        if rng.random() < probability:
            atoms.append(
                CorruptionAtom(
                    kind="entry",
                    pid=pid,
                    path=("recma", "need_reconf"),
                    key=other,
                    value=rng.random() < 0.7,
                )
            )
    if rng.random() < probability:
        atoms.append(
            CorruptionAtom(
                kind="attr",
                pid=pid,
                path=("recma",),
                key="prev_config",
                value=None if rng.random() < 0.5 else _random_members(rng, universe),
            )
        )
    return atoms


def _failure_detector_atoms(
    node: "ClusterNode",
    universe: Sequence[ProcessId],
    rng: random.Random,
    probability: float,
) -> List[CorruptionAtom]:
    pid = node.pid
    atoms: List[CorruptionAtom] = []
    touched = False
    for other in universe:
        if other != pid and rng.random() < probability:
            atoms.append(
                CorruptionAtom(
                    kind="entry",
                    pid=pid,
                    path=("failure_detector", "counts"),
                    key=other,
                    value=rng.randint(0, 200),
                )
            )
            touched = True
    if touched:
        # The trusted-set cache is protocol state like any other variable; a
        # corrupted count vector must not be masked by a stale cache.
        atoms.append(
            CorruptionAtom(
                kind="attr",
                pid=pid,
                path=("failure_detector",),
                key="_trusted_cache_version",
                value=-1,
            )
        )
    return atoms


def _service_atoms(
    node: "ClusterNode",
    universe: Sequence[ProcessId],
    rng: random.Random,
    probability: float,
) -> List[CorruptionAtom]:
    pid = node.pid
    atoms: List[CorruptionAtom] = []
    counters = node.service_map.get("counters")
    if counters is not None:
        # Forcing a store rebuild exercises the bounded-label recovery path;
        # per-label sequence numbers get arbitrary (seqn, wid) values.
        if rng.random() < probability:
            atoms.append(
                CorruptionAtom(
                    kind="attr",
                    pid=pid,
                    path=("service:counters",),
                    key="_store_members",
                    value=None,
                )
            )
        for label in list(counters.seqns):
            if rng.random() < probability:
                atoms.append(
                    CorruptionAtom(
                        kind="entry",
                        pid=pid,
                        path=("service:counters", "seqns"),
                        key=label,
                        value=(rng.randint(0, 2 ** 20), rng.choice(list(universe))),
                    )
                )
    labels = node.service_map.get("labels")
    if labels is not None and rng.random() < probability:
        atoms.append(
            CorruptionAtom(
                kind="attr",
                pid=pid,
                path=("service:labels",),
                key="_store_members",
                value=None,
            )
        )
    vs = node.service_map.get("vs")
    if vs is not None:
        if rng.random() < probability:
            atoms.append(
                CorruptionAtom(
                    kind="attr",
                    pid=pid,
                    path=("service:vs",),
                    key="status",
                    value=rng.choice(list(VSStatus)),
                )
            )
        if rng.random() < probability:
            atoms.append(
                CorruptionAtom(
                    kind="attr",
                    pid=pid,
                    path=("service:vs",),
                    key="rnd",
                    value=rng.randint(0, 1 << 16),
                )
            )
        for flag in ("no_crd", "suspend", "reconf_ready"):
            if rng.random() < probability:
                atoms.append(
                    CorruptionAtom(
                        kind="attr",
                        pid=pid,
                        path=("service:vs",),
                        key=flag,
                        value=rng.random() < 0.5,
                    )
                )
        if rng.random() < probability:
            atoms.append(
                CorruptionAtom(
                    kind="attr",
                    pid=pid,
                    path=("service:vs",),
                    key="prop_view",
                    value=None,
                )
            )
    return atoms


def generate_plan(
    cluster: "Cluster",
    seed: int,
    profile: CorruptionProfile = DEFAULT_PROFILE,
) -> List[CorruptionAtom]:
    """Generate a seeded corruption plan over *cluster*'s current state.

    Deterministic: the same cluster state, seed and profile produce the exact
    same atom list (nodes and channel pairs are visited in sorted order and
    every random draw comes from one derived RNG).
    """
    rng = make_rng(seed, "arbitrary-state")
    universe = sorted(cluster.nodes)
    alive = [
        cluster.nodes[pid]
        for pid in universe
        if cluster.nodes[pid].started and not cluster.nodes[pid].crashed
    ]
    if not alive:
        return []
    if profile.node_fraction <= 0.0 and profile.channel_fraction <= 0.0:
        # The "none" profile: an empty plan, not "at least one node".
        return []
    shuffled = list(alive)
    rng.shuffle(shuffled)
    if profile.node_fraction <= 0.0:
        # Channel-only profiles corrupt no node state at all; the historical
        # "at least one node" floor applies only when nodes are in scope.
        selected = []
    else:
        selected = sorted(
            shuffled[: max(1, int(len(shuffled) * profile.node_fraction))],
            key=lambda node: node.pid,
        )
    anchor_pid = selected[0].pid if selected else None
    atoms: List[CorruptionAtom] = []
    for node in selected:
        atoms.extend(
            _recsa_atoms(
                node, universe, rng, profile.field_probability, anchor=node.pid == anchor_pid
            )
        )
        atoms.extend(_recma_atoms(node, universe, rng, profile.field_probability))
        if profile.corrupt_failure_detector:
            atoms.extend(
                _failure_detector_atoms(node, universe, rng, profile.field_probability)
            )
        if profile.corrupt_services:
            atoms.extend(_service_atoms(node, universe, rng, profile.field_probability))
    # Channel stuffing, bounded by capacity (Lemma 3.18's O(N^2 * cap)).
    capacity = cluster.config.channel.capacity if cluster.config.channel else 8
    fill = max(1, int(capacity * profile.channel_fill))
    alive_pids = [node.pid for node in alive]
    for source in alive_pids:
        for destination in alive_pids:
            if source == destination:
                continue
            if rng.random() >= profile.channel_fraction:
                continue
            for _ in range(fill):
                atoms.append(
                    CorruptionAtom(
                        kind="channel",
                        pid=source,
                        key=destination,
                        value=_random_stale_payload(rng, source, universe),
                    )
                )
    return atoms


def apply_plan(
    cluster: "Cluster",
    atoms: Sequence[CorruptionAtom],
    injector: Optional[FaultInjector] = None,
) -> Dict[str, int]:
    """Apply *atoms* through a :class:`FaultInjector` (recording each one)."""
    if injector is None:
        injector = FaultInjector(cluster.simulator)
    return injector.apply_plan(cluster, atoms)


def plan_summary(atoms: Sequence[CorruptionAtom]) -> Dict[str, int]:
    """Count atoms by kind (the compact form stored in run verdicts)."""
    summary: Dict[str, int] = {}
    for atom in atoms:
        summary[atom.kind] = summary.get(atom.kind, 0) + 1
    return summary
