"""Transient-fault (state-corruption) workloads.

These helpers realize the paper's fault model — an arbitrary starting state —
against a running cluster: they overwrite recSA/recMA variables with
adversarially chosen values and stuff channels with stale protocol packets,
all driven by a seeded RNG so campaigns are reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.common.rng import make_rng
from repro.common.types import (
    BOTTOM,
    DEFAULT_PROPOSAL,
    NOT_PARTICIPANT,
    Phase,
    ProcessId,
    Proposal,
    make_config,
)
from repro.core.recma import RecMAMessage
from repro.sim.cluster import Cluster, ClusterNode


def _random_config_value(rng: random.Random, universe: Sequence[ProcessId]):
    roll = rng.random()
    if roll < 0.15:
        return BOTTOM
    if roll < 0.25:
        return NOT_PARTICIPANT
    if roll < 0.35:
        return frozenset()
    size = rng.randint(1, len(universe))
    return make_config(rng.sample(list(universe), size))


def _random_proposal(rng: random.Random, universe: Sequence[ProcessId]) -> Proposal:
    phase = Phase(rng.choice([0, 1, 2]))
    if rng.random() < 0.3:
        members = None
    else:
        size = rng.randint(1, len(universe))
        members = make_config(rng.sample(list(universe), size))
    return Proposal(phase=phase, members=members)


def corrupt_recsa_state(node: ClusterNode, universe: Sequence[ProcessId], seed: int = 0) -> int:
    """Overwrite a node's recSA arrays with arbitrary values.

    Returns the number of fields corrupted (used by the benchmark reports).
    """
    rng = make_rng(seed, "corrupt-recsa", node.pid)
    recsa = node.recsa
    corrupted = 0
    targets = list(universe)
    recsa.config[node.pid] = _random_config_value(rng, targets)
    corrupted += 1
    for other in targets:
        if rng.random() < 0.5:
            recsa.config[other] = _random_config_value(rng, targets)
            corrupted += 1
        if rng.random() < 0.5:
            recsa.prp[other] = _random_proposal(rng, targets)
            corrupted += 1
        if rng.random() < 0.3:
            recsa.all_flags[other] = rng.random() < 0.5
            corrupted += 1
    if rng.random() < 0.5:
        recsa.prp[node.pid] = _random_proposal(rng, targets)
        corrupted += 1
    recsa.all_seen = set(rng.sample(targets, rng.randint(0, len(targets))))
    _mark_out_of_band_mutation(node)
    return corrupted


def _mark_out_of_band_mutation(node: ClusterNode) -> None:
    """Tell the owning cluster's convergence ledger this node was mutated
    behind its event hooks (direct state corruption)."""
    mark = node._converge_mark
    if mark is not None:
        mark(node.pid)


def corrupt_recma_flags(node: ClusterNode, universe: Sequence[ProcessId], seed: int = 0) -> int:
    """Set a node's recMA flag arrays to adversarial (all-True) values."""
    rng = make_rng(seed, "corrupt-recma", node.pid)
    recma = node.recma
    corrupted = 0
    for other in list(universe) + [node.pid]:
        recma.no_maj[other] = True
        recma.need_reconf[other] = True
        corrupted += 2
    if rng.random() < 0.5:
        recma.prev_config = None
        corrupted += 1
    _mark_out_of_band_mutation(node)
    return corrupted


def stuff_stale_recma_packets(
    cluster: Cluster, target: ProcessId, count: int, seed: int = 0
) -> int:
    """Inject stale ``⟨noMaj=True, needReconf=True⟩`` packets toward *target*.

    Models the channel-resident stale information whose effect Lemma 3.18
    bounds by O(N^2 * cap).  Returns how many packets were accepted (the
    channels themselves bound the injection).
    """
    rng = make_rng(seed, "stuff-recma", target)
    accepted = 0
    senders = [pid for pid in cluster.nodes if pid != target]
    for index in range(count):
        sender = rng.choice(senders)
        message = RecMAMessage(sender=sender, no_maj=True, need_reconf=True)
        if cluster.simulator.network.stuff_channel(sender, target, message):
            accepted += 1
    return accepted


def scramble_cluster(cluster: Cluster, seed: int = 0, fraction: float = 1.0) -> Dict[str, int]:
    """Corrupt the recSA and recMA state of a fraction of the cluster's nodes.

    The canonical "arbitrary starting state" campaign used by experiment E1:
    every selected node gets arbitrary configuration/proposal values, and the
    report of what was corrupted is returned for logging.
    """
    rng = make_rng(seed, "scramble")
    universe = sorted(cluster.nodes.keys())
    nodes = [node for node in cluster.alive_nodes()]
    rng.shuffle(nodes)
    selected = nodes[: max(1, int(len(nodes) * fraction))]
    report = {"nodes": len(selected), "recsa_fields": 0, "recma_fields": 0}
    for node in selected:
        report["recsa_fields"] += corrupt_recsa_state(node, universe, seed=seed + node.pid)
        report["recma_fields"] += corrupt_recma_flags(node, universe, seed=seed + node.pid)
    return report
