"""Workload generators for tests and the benchmark harness."""

from repro.workloads.churn import ChurnTrace, ChurnEvent, generate_churn_trace
from repro.workloads.corruption import (
    corrupt_recsa_state,
    corrupt_recma_flags,
    stuff_stale_recma_packets,
    scramble_cluster,
)

__all__ = [
    "ChurnTrace",
    "ChurnEvent",
    "generate_churn_trace",
    "corrupt_recsa_state",
    "corrupt_recma_flags",
    "stuff_stale_recma_packets",
    "scramble_cluster",
]
