"""Churn traces: schedules of crashes and joins.

A churn trace is a reproducible sequence of membership events; the benchmark
harness installs it on a cluster and measures how the reconfiguration scheme
tracks the changing participant set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.common.rng import make_rng
from repro.common.types import ProcessId
from repro.sim.cluster import Cluster
from repro.sim.events import Action


@dataclass(frozen=True)
class ChurnEvent:
    """One membership event: a crash of an existing node or a new joiner."""

    time: float
    kind: str  # "crash" | "join"
    pid: ProcessId


@dataclass
class ChurnTrace:
    """An ordered list of churn events plus installation helpers."""

    events: List[ChurnEvent]

    def install(self, cluster: Cluster) -> None:
        """Register every event of the trace with the cluster's simulator.

        Only the first event per pid is scheduled (a trace that both crashes
        and joins — or doubly crashes/joins — the same pid is deduplicated),
        and the events guard themselves at fire time: a join of a pid that
        already exists in ``cluster.nodes`` is a no-op (``add_joiner`` would
        raise on the duplicate process id), as is a crash of an unknown or
        already-crashed pid.
        """
        scheduled: set = set()
        for event in self.events:
            if event.pid in scheduled:
                continue
            scheduled.add(event.pid)
            if event.kind == "crash":
                cluster.simulator.call_at(
                    event.time,
                    Action(Cluster.try_crash, cluster, event.pid),
                    label=f"churn:crash:{event.pid}",
                )
            elif event.kind == "join":
                cluster.simulator.call_at(
                    event.time,
                    Action(ChurnTrace._fire_join, cluster, event.pid),
                    label=f"churn:join:{event.pid}",
                )

    @staticmethod
    def _fire_join(cluster: Cluster, pid: ProcessId) -> None:
        if pid not in cluster.nodes:
            cluster.add_joiner(pid)

    def crashes(self) -> List[ChurnEvent]:
        """The crash events of the trace."""
        return [event for event in self.events if event.kind == "crash"]

    def joins(self) -> List[ChurnEvent]:
        """The join events of the trace."""
        return [event for event in self.events if event.kind == "join"]


def generate_churn_trace(
    initial_members: Iterable[ProcessId],
    duration: float,
    crash_rate: float = 0.0,
    join_rate: float = 0.0,
    seed: int = 0,
    max_crashes: Optional[int] = None,
    first_new_pid: int = 1000,
    start_time: float = 0.0,
) -> ChurnTrace:
    """Generate a random churn trace.

    ``crash_rate`` / ``join_rate`` are expected events per unit of simulated
    time; ``max_crashes`` caps crashes (by default at just below half of the
    initial membership so a majority survives, matching the paper's
    assumption for delicate reconfiguration).
    """
    rng = make_rng(seed, "churn")
    members = sorted(initial_members)
    if max_crashes is None:
        max_crashes = max(0, (len(members) - 1) // 2)
    events: List[ChurnEvent] = []

    time = start_time
    crash_candidates = list(members)
    crashes_done = 0
    while crash_rate > 0 and crash_candidates and crashes_done < max_crashes:
        time += rng.expovariate(crash_rate)
        if time >= start_time + duration:
            break
        victim = rng.choice(crash_candidates)
        crash_candidates.remove(victim)
        events.append(ChurnEvent(time=time, kind="crash", pid=victim))
        crashes_done += 1

    time = start_time
    next_pid = first_new_pid
    while join_rate > 0:
        time += rng.expovariate(join_rate)
        if time >= start_time + duration:
            break
        events.append(ChurnEvent(time=time, kind="join", pid=next_pid))
        next_pid += 1

    events.sort(key=lambda event: event.time)
    return ChurnTrace(events=events)
