"""Replicated state machines used by the virtual-synchrony layer.

The virtual-synchrony service is agnostic to the application: it replicates
any object implementing the small :class:`StateMachine` interface.  Three
ready-made machines are provided:

* :class:`LogStateMachine` — an append-only log of delivered commands, the
  canonical state machine used by the tests (virtual synchrony is easiest to
  check against the delivered-message history);
* :class:`KeyValueStateMachine` — a dictionary store driven by ``("put", k,
  v)`` / ``("del", k)`` commands;
* :class:`RegisterStateMachine` — a single multi-writer multi-reader register
  (the machine backing :class:`repro.vs.shared_memory.SharedRegister`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from types import MappingProxyType
from typing import Any, Dict, List, Optional, Tuple


class StateMachine(ABC):
    """Interface of a deterministic, copyable replicated state machine.

    Snapshot contract
    -----------------
    ``snapshot()`` returns an *immutable view* of the machine's state: the
    holder must never mutate it, and the machine guarantees the view stays
    frozen even as the machine itself keeps evolving (the built-in machines
    use copy-on-write, so taking a snapshot is O(1) and the copy is only paid
    if and when the machine is mutated again).  ``restore()`` owns the
    defensive copy: it must leave the machine independent of the passed
    snapshot, so callers hand snapshots straight in without deep-copying.
    """

    @abstractmethod
    def apply(self, command: Any) -> Any:
        """Apply *command*, mutating the machine; returns an output value."""

    @abstractmethod
    def snapshot(self) -> Any:
        """An immutable, self-contained view of the machine's state."""

    @abstractmethod
    def restore(self, snapshot: Any) -> None:
        """Replace the machine's state with *snapshot* (as from ``snapshot()``).

        Must copy: the machine may not alias the snapshot afterwards."""

    def reset(self) -> None:
        """Return the machine to its initial (default) state."""
        self.restore(type(self)().snapshot())  # pragma: no cover - overridden


class LogStateMachine(StateMachine):
    """Append-only log of applied commands.

    Snapshots are copy-on-write: ``snapshot()`` hands out the current list in
    O(1) and the next ``apply`` re-materializes the log, so the handed-out
    list is never mutated afterwards.
    """

    def __init__(self) -> None:
        self.log: List[Any] = []
        self._shared = False

    def apply(self, command: Any) -> Any:
        if self._shared:
            self.log = list(self.log)
            self._shared = False
        self.log.append(command)
        return len(self.log)

    def snapshot(self) -> Any:
        self._shared = True
        return self.log

    def restore(self, snapshot: Any) -> None:
        self.log = list(snapshot or [])
        self._shared = False

    def reset(self) -> None:
        self.log = []
        self._shared = False


class KeyValueStateMachine(StateMachine):
    """A replicated dictionary driven by ``("put", key, value)`` / ``("del", key)``.

    ``snapshot()`` is O(1): it returns a read-only mapping proxy over the
    current dictionary and flags the dictionary as shared; the next mutating
    command rebinds ``self.data`` to a fresh copy (copy-on-write), so the
    proxy held by the snapshot owner is frozen from then on.  Values are
    treated as immutable, matching the command vocabulary.
    """

    def __init__(self) -> None:
        self.data: Dict[Any, Any] = {}
        self._shared = False

    def _materialize(self) -> None:
        if self._shared:
            self.data = dict(self.data)
            self._shared = False

    def apply(self, command: Any) -> Any:
        if not isinstance(command, tuple) or not command:
            return None
        op = command[0]
        if op == "put" and len(command) == 3:
            _, key, value = command
            self._materialize()
            self.data[key] = value
            return value
        if op == "del" and len(command) == 2:
            self._materialize()
            return self.data.pop(command[1], None)
        if op == "get" and len(command) == 2:
            return self.data.get(command[1])
        return None

    def snapshot(self) -> Any:
        self._shared = True
        return MappingProxyType(self.data)

    def restore(self, snapshot: Any) -> None:
        self.data = dict(snapshot) if snapshot else {}
        self._shared = False

    def reset(self) -> None:
        self.data = {}
        self._shared = False


class RegisterStateMachine(StateMachine):
    """A single MWMR register: commands are ``("write", value, writer, tag)``.

    Reads are served from the replicated state and therefore need no command;
    the tuple stored alongside the value records which writer wrote last and
    with what (monotonically increasing) tag, which the shared-memory tests
    use to check write ordering.
    """

    def __init__(self) -> None:
        self.value: Any = None
        self.last_writer: Optional[int] = None
        self.write_count: int = 0

    def apply(self, command: Any) -> Any:
        if isinstance(command, tuple) and command and command[0] == "write":
            self.value = command[1]
            self.last_writer = command[2] if len(command) > 2 else None
            self.write_count += 1
            return self.value
        return None

    def snapshot(self) -> Any:
        return (self.value, self.last_writer, self.write_count)

    def restore(self, snapshot: Any) -> None:
        if snapshot is None:
            self.reset()
            return
        self.value, self.last_writer, self.write_count = snapshot

    def reset(self) -> None:
        self.value = None
        self.last_writer = None
        self.write_count = 0
