"""MWMR shared-memory emulation on top of the virtually synchronous SMR.

Section 4.3 of the paper (following Birman et al.): given the virtually
synchronous replicated state machine, a multi-writer multi-reader register is
emulated by funnelling writes through the totally ordered multicast and
serving reads from the locally replicated state.  During a delicate
reconfiguration the coordinator suspends operations; once the new
configuration's view is installed the emulation continues with the state
preserved.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.common.types import ProcessId
from repro.vs.smr import RegisterStateMachine
from repro.vs.virtual_synchrony import VirtualSynchronyService


class SharedRegister:
    """A multi-writer multi-reader register client bound to one participant.

    The register is *suspending*: writes submitted while a reconfiguration is
    in progress are queued by the VS layer and delivered once the new view is
    installed, and reads simply return the latest locally applied value.
    """

    _tag_counter = itertools.count(1)

    def __init__(self, pid: ProcessId, vs: VirtualSynchronyService) -> None:
        if not isinstance(vs.machine, RegisterStateMachine):
            raise TypeError(
                "SharedRegister requires the VS service to replicate a "
                "RegisterStateMachine"
            )
        self.pid = pid
        self.vs = vs
        self.writes_submitted = 0

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def write(self, value: Any) -> None:
        """Submit a write of *value*; it takes effect when delivered."""
        tag = next(self._tag_counter)
        self.vs.submit(("write", value, self.pid, tag))
        self.writes_submitted += 1

    def read(self) -> Any:
        """Return the register value according to the local replica."""
        machine = self.vs.machine
        assert isinstance(machine, RegisterStateMachine)
        return machine.value

    def read_with_metadata(self) -> Tuple[Any, Optional[int], int]:
        """Return ``(value, last_writer, write_count)`` from the local replica."""
        machine = self.vs.machine
        assert isinstance(machine, RegisterStateMachine)
        return machine.value, machine.last_writer, machine.write_count

    def pending_writes(self) -> int:
        """Writes submitted locally that have not been delivered yet."""
        return self.vs.pending_count()

    def history(self) -> List[Any]:
        """The totally ordered write history as applied by the local replica."""
        return [
            command[1]
            for command in self.vs.delivered_commands()
            if isinstance(command, tuple) and command and command[0] == "write"
        ]
