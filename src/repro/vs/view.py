"""Views: counter-identified member sets used by the virtual-synchrony layer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.common.codec import wire_type
from repro.common.types import ProcessId
from repro.counters.counter import Counter, counter_less_than


@wire_type
@dataclass(frozen=True)
class View:
    """A view ``⟨ID, set⟩``: a unique identifier plus the member set.

    The identifier is a :class:`~repro.counters.counter.Counter` obtained from
    the counter-increment algorithm, so view identifiers are totally ordered
    whenever their epoch labels are comparable (which, after the labeling
    scheme converges, is always the case).
    """

    view_id: Counter
    members: FrozenSet[ProcessId]

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self.members

    def __len__(self) -> int:
        return len(self.members)

    @property
    def coordinator(self) -> ProcessId:
        """The member that created (wrote) the view identifier."""
        return self.view_id.wid


def newer_view(a: Optional[View], b: Optional[View]) -> Optional[View]:
    """Return the view with the larger identifier (None-safe)."""
    if a is None:
        return b
    if b is None:
        return a
    if counter_less_than(a.view_id, b.view_id):
        return b
    return a
