"""Virtually synchronous state-machine replication (Section 4.3).

The reconfiguration scheme plus the label/counter services are combined into
a self-stabilizing, reconfigurable virtual-synchrony layer:

* :mod:`repro.vs.view` — views (a counter-identified member set);
* :mod:`repro.vs.smr` — pluggable replicated state machines;
* :mod:`repro.vs.virtual_synchrony` — the coordinator-based VS service
  (Algorithm 4.7) with coordinator-led delicate reconfiguration
  (Algorithm 4.6);
* :mod:`repro.vs.shared_memory` — the MWMR shared-register emulation built on
  the replicated state machine.
"""

from repro.vs.view import View
from repro.vs.smr import StateMachine, LogStateMachine, RegisterStateMachine, KeyValueStateMachine
from repro.vs.virtual_synchrony import VirtualSynchronyService, VSState, VSStatus
from repro.vs.shared_memory import SharedRegister

__all__ = [
    "View",
    "StateMachine",
    "LogStateMachine",
    "RegisterStateMachine",
    "KeyValueStateMachine",
    "VirtualSynchronyService",
    "VSState",
    "VSStatus",
    "SharedRegister",
]
