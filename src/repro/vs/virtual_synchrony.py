"""Self-stabilizing reconfigurable virtually synchronous SMR (Algorithm 4.7).

Structure of the reconstruction (the pseudo-code of the technical report is
followed functionally; see DESIGN.md for the mapping):

* every participant periodically broadcasts its VS state (view, status,
  round, proposed view, suspend flag, pending input, ...) to the trusted
  participants — the ``state[]`` exchange of Algorithm 4.7;
* a **coordinator** is recognized (``valCrd``) when it proposes/leads a view
  whose member set contains a majority of the current configuration and whose
  identifier — a counter obtained from the counter-increment algorithm — is
  the largest among such proposals;
* when no valid coordinator is visible, a configuration member that trusts a
  majority of the configuration and observes a majority agreeing that there
  is no coordinator obtains a fresh counter and **proposes** a view over its
  trusted participants (status ``PROPOSE``);
* once every proposed member echoes the proposal, the coordinator
  synchronizes the replica state (adopting the state with the largest
  ``(view, round)`` among the members) and **installs** the view
  (status ``INSTALL`` then ``MULTICAST`` with round 0);
* in ``MULTICAST`` status the coordinator runs rounds: it collects one
  pending input from each member's report, delivers the batch in a
  deterministic order, applies it to the replicated state machine and
  advances the round; followers adopt the coordinator's state verbatim —
  which is exactly what makes the replication virtually synchronous;
* **coordinator-led delicate reconfiguration** (Algorithm 4.6): when the
  coordinator's ``evalConfig()`` policy asks for a reconfiguration it raises
  ``suspend``, waits until every view member reports having suspended, then
  calls the scheme's ``estab`` (``request_reconfiguration``); multicast stays
  suspended while ``noReco()`` reports a reconfiguration, and once the new
  configuration is installed a (possibly new) coordinator re-establishes a
  view carrying the preserved state.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.common.codec import wire_enum, wire_type
from repro.common.logging_utils import get_logger
from repro.common.types import Configuration, ProcessId
from repro.core.scheme import ReconfigurationScheme
from repro.counters.counter import Counter, counter_less_than
from repro.counters.service import CounterService, IncrementOutcome
from repro.vs.smr import LogStateMachine, StateMachine
from repro.vs.view import View

_log = get_logger("vs")

SendFn = Callable[[ProcessId, Any], None]
DeliveryCallback = Callable[[int, View, List[Any]], None]
EvalConfigPolicy = Callable[[], bool]


@wire_enum
class VSStatus(enum.Enum):
    """The three statuses of Algorithm 4.7."""

    MULTICAST = "multicast"
    PROPOSE = "propose"
    INSTALL = "install"


@wire_type
@dataclass(frozen=True)
class VSState:
    """The per-participant state record exchanged by Algorithm 4.7."""

    sender: ProcessId
    view: Optional[View]
    status: VSStatus
    rnd: int
    prop_view: Optional[View]
    no_crd: bool
    suspend: bool
    input: Optional[Tuple[ProcessId, int, Any]]
    state_snapshot: Any = None
    delivered: Tuple = ()
    crd: Optional[ProcessId] = None


def _never_reconfigure() -> bool:
    """Default evalConfig policy — a module-level function (not a lambda) so
    live service instances stay picklable inside disk-backed snapshots."""
    return False


class VirtualSynchronyService:
    """Per-participant virtually synchronous SMR service."""

    def __init__(
        self,
        pid: ProcessId,
        scheme: ReconfigurationScheme,
        counters: CounterService,
        send: SendFn,
        state_machine: Optional[StateMachine] = None,
        eval_config: Optional[EvalConfigPolicy] = None,
        delivery_callback: Optional[DeliveryCallback] = None,
    ) -> None:
        self.pid = pid
        self.scheme = scheme
        self.counters = counters
        self.send = send
        self.machine: StateMachine = state_machine or LogStateMachine()
        self.eval_config: EvalConfigPolicy = eval_config or _never_reconfigure
        self.delivery_callback = delivery_callback

        # Algorithm 4.7 state.
        self.view: Optional[View] = None
        self.status: VSStatus = VSStatus.MULTICAST
        self.rnd: int = 0
        self.prop_view: Optional[View] = None
        self.no_crd: bool = True
        self.suspend: bool = False
        self.reconf_ready: bool = False

        # Received peer states.
        self.states: Dict[ProcessId, VSState] = {}

        # Client interaction.
        self._pending: List[Tuple[ProcessId, int, Any]] = []
        self._next_input_seq = 0
        self._delivered_history: List[Tuple[int, Any]] = []
        self._last_batch: Tuple = ()

        # Election bookkeeping.
        self._counter_pending = False
        self._last_coordinator: Optional[ProcessId] = None

        # Diagnostics.
        self.views_installed = 0
        self.rounds_completed = 0
        self.reconfigurations_requested = 0

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, command: Any) -> None:
        """Submit *command* for totally-ordered delivery in the current view."""
        self._pending.append((self.pid, self._next_input_seq, command))
        self._next_input_seq += 1

    def pending_count(self) -> int:
        """Commands submitted locally and not yet delivered."""
        return len(self._pending)

    def delivered_commands(self) -> List[Any]:
        """Every command this replica has applied, in application order."""
        return [cmd for _, cmd in self._delivered_history]

    def delivery_history(self) -> Tuple[Tuple[int, Any], ...]:
        """The totally-ordered ``(round, command)`` delivery record.

        The stable surface consistency checks compare across replicas: within
        one installed view every member's history evolves along the
        coordinator's chain, so any two same-view histories must be
        prefix-ordered (the ``smr_agreement`` audit invariant).
        """
        return tuple(self._delivered_history)

    def current_view(self) -> Optional[View]:
        """The installed view (None before the first installation)."""
        return self.view

    def is_coordinator(self) -> bool:
        """True when this participant currently leads the installed view."""
        return self._valid_coordinator() == self.pid

    # ------------------------------------------------------------------
    # Coordinator recognition (lines 6-8 of Algorithm 4.7)
    # ------------------------------------------------------------------
    def _own_state(self) -> VSState:
        return VSState(
            sender=self.pid,
            view=self.view,
            status=self.status,
            rnd=self.rnd,
            prop_view=self.prop_view,
            no_crd=self.no_crd,
            suspend=self.suspend,
            input=self._pending[0] if self._pending else None,
            state_snapshot=None,
            delivered=self._last_batch,
            crd=self._last_coordinator,
        )

    def _all_states(self) -> Dict[ProcessId, VSState]:
        states = dict(self.states)
        states[self.pid] = self._own_state()
        return states

    def _seeming_coordinators(self, config: Configuration) -> List[ProcessId]:
        trusted = self.scheme.recsa.trusted()
        majority = len(config) // 2 + 1
        seeming: List[ProcessId] = []
        for pid, state in self._all_states().items():
            if pid not in trusted or pid not in config:
                continue
            prop = state.prop_view
            if prop is None:
                continue
            if pid != prop.coordinator:
                continue
            if pid not in prop.members:
                continue
            if len(prop.members & config) < majority:
                continue
            if state.status is VSStatus.MULTICAST and (
                state.view is None or state.view != prop
            ):
                continue
            seeming.append(pid)
        return seeming

    def _valid_coordinator(self) -> Optional[ProcessId]:
        config = self.scheme.configuration()
        if config is None:
            return None
        seeming = self._seeming_coordinators(config)
        if not seeming:
            return None
        states = self._all_states()

        def key(pid: ProcessId):
            prop = states[pid].prop_view
            assert prop is not None
            return (prop.view_id.sort_key(), pid)

        # The largest proposal identifier wins.  After transient faults two
        # leading proposals can carry *incomparable* counters (their epoch
        # labels come from different corrupted label states); the
        # deterministic sort key then breaks the tie identically at every
        # processor, so the system still agrees on one coordinator and the
        # labeling scheme repairs the epoch ordering in the background.
        return max(seeming, key=key)

    # ------------------------------------------------------------------
    # The do-forever loop
    # ------------------------------------------------------------------
    def on_timer(self) -> None:
        """One iteration of the Algorithm 4.7 do-forever loop."""
        if not self.scheme.is_participant():
            return
        config = self.scheme.configuration()
        if config is None:
            self._broadcast()
            return

        coordinator = self._valid_coordinator()
        self._last_coordinator = coordinator
        self.no_crd = coordinator is None

        if not self.scheme.no_reco():
            # During a reconfiguration message delivery stays suspended.
            self.suspend = True
        elif coordinator is not None and coordinator != self.pid:
            state = self.states.get(coordinator)
            if state is not None and state.status in (VSStatus.PROPOSE, VSStatus.INSTALL):
                self.suspend = False
                self.reconf_ready = False

        if coordinator == self.pid:
            self._coordinator_step(config)
        elif coordinator is not None:
            self._follower_step(coordinator)
        else:
            self._election_step(config)

        self._broadcast()

    # -- election (line 10) -------------------------------------------------
    def _election_step(self, config: Configuration) -> None:
        if self.pid not in config:
            return
        trusted = self.scheme.recsa.trusted()
        majority = len(config) // 2 + 1
        if len(trusted & config) < majority:
            return
        if not self.scheme.no_reco():
            return
        states = self._all_states()
        no_crd_supporters = [
            pid
            for pid, state in states.items()
            if pid in trusted and state.no_crd
        ]
        i_lead_previous = (
            self.prop_view is not None
            and self.prop_view.coordinator == self.pid
        )
        if len(no_crd_supporters) < majority and not i_lead_previous:
            return
        if self._counter_pending:
            return
        # Obtain a fresh view identifier from the counter service.
        participants = frozenset(self.scheme.recsa.participants()) & trusted
        members = participants | {self.pid}
        self._counter_pending = True

        def _on_counter(outcome: IncrementOutcome) -> None:
            self._counter_pending = False
            if not outcome.success or outcome.counter is None:
                return
            self.prop_view = View(view_id=outcome.counter, members=members)
            self.status = VSStatus.PROPOSE
            self.suspend = False
            self.reconf_ready = False

        self.counters.increment(_on_counter)

    # -- coordinator (lines 11-17) -------------------------------------------
    def _coordinator_step(self, config: Configuration) -> None:
        states = self._all_states()
        assert self.prop_view is not None

        if self.status is VSStatus.PROPOSE:
            members = self.prop_view.members
            agreed = all(
                pid == self.pid
                or (
                    (state := states.get(pid)) is not None
                    and state.prop_view == self.prop_view
                    and state.status is VSStatus.PROPOSE
                    # The member's replica snapshot must have arrived so that
                    # synchState() can pick the most advanced state.
                    and state.state_snapshot is not None
                )
                for pid in members
            )
            if agreed:
                self._synchronize_state(members)
                self.status = VSStatus.INSTALL
            return

        if self.status is VSStatus.INSTALL:
            members = self.prop_view.members
            agreed = all(
                (state := states.get(pid)) is not None
                and state.prop_view == self.prop_view
                and state.status in (VSStatus.INSTALL, VSStatus.MULTICAST)
                for pid in members
            )
            if agreed:
                self.view = self.prop_view
                self.status = VSStatus.MULTICAST
                self.rnd = 0
                self.suspend = False
                self.reconf_ready = False
                self.views_installed += 1
            return

        # MULTICAST status.
        if self.view is None:
            return
        members = self.view.members
        in_sync = all(
            (state := states.get(pid)) is not None
            and state.view == self.view
            and state.status is VSStatus.MULTICAST
            and state.rnd == self.rnd
            for pid in members
        )
        if not in_sync:
            # A member stopped following (crash or FD change): propose a new
            # view over the processors still trusted.
            self._maybe_repropose(config)
            return

        if not self.scheme.no_reco():
            return

        # Coordinator-led delicate reconfiguration (Algorithm 4.6).
        if self.eval_config():
            self.suspend = True
        if self.suspend:
            all_suspended = all(
                (state := states.get(pid)) is not None and (state.suspend or pid == self.pid)
                for pid in members
            )
            self.reconf_ready = all_suspended
            if self.reconf_ready and self.eval_config():
                proposal = frozenset(self.scheme.recsa.participants())
                if self.scheme.request_reconfiguration(proposal):
                    self.reconfigurations_requested += 1
                    self.suspend = True
                    return
                if proposal == self.scheme.configuration():
                    # Nothing to change (the participants already are the
                    # configuration): resume instead of staying suspended.
                    self.suspend = False
                    self.reconf_ready = False
                return
            if self.reconf_ready:
                # The policy withdrew its request: resume normal operation.
                self.suspend = False
                self.reconf_ready = False
        if self.suspend:
            return

        # A multicast round: deliver one pending input per member.
        batch = []
        for pid in sorted(members):
            state = states.get(pid)
            if state is not None and state.input is not None:
                batch.append(state.input)
        self._apply_batch(batch)
        self.rnd += 1
        self.rounds_completed += 1

    def _maybe_repropose(self, config: Configuration) -> None:
        if self._counter_pending or not self.scheme.no_reco():
            return
        trusted = self.scheme.recsa.trusted()
        majority = len(config) // 2 + 1
        if len(trusted & config) < majority:
            return
        assert self.view is not None
        participants = frozenset(self.scheme.recsa.participants()) & trusted
        members = participants | {self.pid}
        if members == self.view.members:
            # Members report an older round or view; wait for them to catch up
            # instead of churning views.
            return
        self._counter_pending = True

        def _on_counter(outcome: IncrementOutcome) -> None:
            self._counter_pending = False
            if not outcome.success or outcome.counter is None:
                return
            self.prop_view = View(view_id=outcome.counter, members=members)
            self.status = VSStatus.PROPOSE
            self.suspend = False
            self.reconf_ready = False

        self.counters.increment(_on_counter)

    def _synchronize_state(self, members: FrozenSet[ProcessId]) -> None:
        """``synchState`` / ``synchMsgs``: adopt the most advanced replica."""
        states = self._all_states()
        best_snapshot = None
        best_key: Tuple = (-1, -1)
        best_history: List[Tuple[int, Any]] = self._delivered_history
        for pid in members:
            state = states.get(pid)
            if state is None or state.state_snapshot is None:
                continue
            snapshot, history = state.state_snapshot
            view_key = (
                state.view.view_id.sort_key() if state.view is not None else ((), -1, -1)
            )
            key = (len(history), state.rnd)
            if key > best_key:
                best_key = key
                best_snapshot = snapshot
                best_history = history
        own_key = (len(self._delivered_history), self.rnd)
        if best_snapshot is not None and best_key > own_key:
            self.machine.restore(best_snapshot)
            self._delivered_history = list(best_history)

    # -- follower (lines 18-23) ------------------------------------------------
    def _follower_step(self, coordinator: ProcessId) -> None:
        state = self.states.get(coordinator)
        if state is None:
            return
        if state.status is VSStatus.PROPOSE:
            if state.prop_view is not None and self.pid in state.prop_view.members:
                self.prop_view = state.prop_view
                self.status = VSStatus.PROPOSE
            return
        if state.status is VSStatus.INSTALL:
            if state.prop_view is not None and self.pid in state.prop_view.members:
                self.prop_view = state.prop_view
                self.view = state.prop_view
                self.status = VSStatus.INSTALL
                if state.state_snapshot is not None:
                    snapshot, history = state.state_snapshot
                    self.machine.restore(snapshot)
                    self._delivered_history = list(history)
                    self.rnd = state.rnd
            return
        # Coordinator is multicasting.
        if state.view is None or self.pid not in state.view.members:
            return
        if self.view != state.view or self.status is not VSStatus.MULTICAST:
            # A round counter restarts with every view, so a follower entering
            # an installed view must adopt the coordinator's round wholesale —
            # even *backwards*.  This covers two cases: the follower missed
            # the PROPOSE/INSTALL exchange entirely (lost or reordered
            # packets) and first sees the coordinator already multicasting,
            # and the follower left INSTALL carrying the coordinator's stale
            # pre-reset round (the coordinator only zeroes ``rnd`` on its own
            # INSTALL→MULTICAST transition).  Without the resync such a
            # follower's round can exceed the new view's round forever, so
            # ``state.rnd > self.rnd`` never fires again and the coordinator's
            # in-sync barrier wedges permanently.
            resync = self.view != state.view or self.status is VSStatus.INSTALL
            if resync:
                if state.state_snapshot is None:
                    # Adopting the round without the replica state would leave
                    # this follower silently diverged (it would report the
                    # coordinator's round while missing the batches behind
                    # it).  A multicasting coordinator includes its snapshot
                    # whenever it recognises itself, so simply wait for the
                    # next state message that carries one.
                    return
                self.view = state.view
                self.prop_view = state.prop_view
                self.status = VSStatus.MULTICAST
                snapshot, history = state.state_snapshot
                self.machine.restore(snapshot)
                self._replay_history(history)
                self.rnd = state.rnd
                self._consume_delivered(state.delivered)
                self.suspend = bool(state.suspend) or not self.scheme.no_reco()
                return
            self.view = state.view
            self.prop_view = state.prop_view
            self.status = VSStatus.MULTICAST
        if state.rnd > self.rnd:
            if state.state_snapshot is not None:
                snapshot, history = state.state_snapshot
                self.machine.restore(snapshot)
                self._replay_history(history)
            self.rnd = state.rnd
            self._consume_delivered(state.delivered)
        self.suspend = bool(state.suspend) or not self.scheme.no_reco()

    def _replay_history(self, history: List[Tuple[int, Any]]) -> None:
        known = len(self._delivered_history)
        self._delivered_history = list(history)
        for rnd, command in history[known:]:
            if self.delivery_callback is not None and self.view is not None:
                self.delivery_callback(rnd, self.view, [command])

    def _consume_delivered(self, delivered: Tuple) -> None:
        delivered_set = set(delivered)
        self._pending = [item for item in self._pending if tuple(item) not in delivered_set]

    # -- delivery --------------------------------------------------------------
    def _apply_batch(self, batch: List[Tuple[ProcessId, int, Any]]) -> None:
        ordered = sorted(batch, key=lambda item: (item[0], item[1]))
        applied: List[Any] = []
        for sender, seq, command in ordered:
            self.machine.apply(command)
            self._delivered_history.append((self.rnd, command))
            applied.append(command)
        self._last_batch = tuple(tuple(item) for item in ordered)
        self._consume_delivered(self._last_batch)
        if applied and self.delivery_callback is not None and self.view is not None:
            self.delivery_callback(self.rnd, self.view, applied)

    # ------------------------------------------------------------------
    # Gossip
    # ------------------------------------------------------------------
    def _broadcast(self) -> None:
        if not self.scheme.is_participant():
            return
        state = self._own_state()
        include_snapshot = self.is_coordinator() or self.status in (
            VSStatus.PROPOSE,
            VSStatus.INSTALL,
        )
        if include_snapshot:
            state = replace(
                state,
                state_snapshot=(self.machine.snapshot(), list(self._delivered_history)),
            )
        targets = frozenset(self.scheme.recsa.participants()) | (
            self.view.members if self.view is not None else frozenset()
        )
        for pid in targets:
            if pid != self.pid:
                self.send(pid, state)

    def on_message(self, sender: ProcessId, message: Any) -> bool:
        """Store a peer's VS state record; True when the message was ours."""
        if not isinstance(message, VSState):
            return False
        self.states[sender] = message
        return True
