"""Reusable convergence / consistency probes over a running cluster.

A :class:`Probe` is a named predicate over a :class:`~repro.sim.cluster.Cluster`
plus a simulated-time budget; :func:`wait_for` drives the simulation until the
predicate holds (or the budget elapses) and reports the outcome.  Probes are
what scenario specs declare instead of every example and test re-implementing
``wait_for_view`` / history-agreement loops with subtle drift.

The checks only rely on the stack-profile service names (``"vs"``,
``"register"``, ``"counters"``): a probe that needs a service a node does not
run simply ignores that node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cluster import Cluster

ProbeCheck = Callable[["Cluster"], bool]

DEFAULT_PROBE_TIMEOUT = 4_000.0


@dataclass(frozen=True)
class Probe:
    """A named condition to drive a cluster toward (within *timeout*)."""

    name: str
    check: ProbeCheck
    timeout: float = DEFAULT_PROBE_TIMEOUT

    def __call__(self, cluster: "Cluster") -> bool:
        return self.check(cluster)


@dataclass(frozen=True)
class ProbeResult:
    """The outcome of waiting for one probe."""

    name: str
    satisfied: bool
    time: float


def wait_for(cluster: "Cluster", probe: Probe) -> ProbeResult:
    """Run *cluster* until *probe* holds (budgeted from the current instant).

    ``Cluster.run_until`` treats its timeout as a budget relative to ``now``,
    so the probe's budget is passed through directly.
    """
    satisfied = cluster.run_until(lambda: probe.check(cluster), timeout=probe.timeout)
    return ProbeResult(name=probe.name, satisfied=satisfied, time=cluster.simulator.now)


@dataclass(frozen=True)
class Invariant:
    """A named safety predicate monitored after *every* executed event.

    Where a :class:`Probe` is a condition to drive the system *toward*, an
    invariant is a condition that must *hold throughout* — the scenario
    runner wires these into an
    :class:`~repro.sim.monitors.InvariantMonitor`, which records violation
    intervals; a violated invariant fails the run.

    ``arm_after`` delays enforcement until the given simulated time: the
    predicate is treated as holding before that instant.  The audit engine
    arms its invariants at corruption time so that a violation is
    attributable to the injected arbitrary state, not to the bootstrap
    (which legitimately passes through reset states).
    """

    name: str
    check: ProbeCheck
    arm_after: float = 0.0

    def __call__(self, cluster: "Cluster") -> bool:
        if self.arm_after > 0.0 and cluster.simulator.now < self.arm_after:
            return True
        return self.check(cluster)

    def armed_at(self, time: float) -> "Invariant":
        """A copy of this invariant armed at simulated *time*."""
        return Invariant(name=self.name, check=self.check, arm_after=time)


# ---------------------------------------------------------------------------
# Check functions (usable directly or through the probe factories below)
# ---------------------------------------------------------------------------
def is_converged(cluster: "Cluster") -> bool:
    """All alive participants agree on a configuration and report stability."""
    return cluster.is_converged()


def all_participating(cluster: "Cluster") -> bool:
    """Every alive node (including late joiners) has become a participant."""
    return cluster.all_nodes_participating()


def view_is_installed(cluster: "Cluster") -> bool:
    """An alive coordinator multicasts in a view of entirely alive members.

    The promoted form of the ``wait_for_view`` helper the examples used to
    each re-implement.
    """
    from repro.vs.virtual_synchrony import VSStatus

    for node in cluster.alive_nodes():
        vs = node.service_map.get("vs")
        if vs is None or vs.view is None:
            continue
        if vs.status is not VSStatus.MULTICAST or not vs.is_coordinator():
            continue
        members_alive = all(
            member in cluster.nodes and not cluster.nodes[member].crashed
            for member in vs.view.members
        )
        if members_alive:
            return True
    return False


def registers_agree(cluster: "Cluster") -> bool:
    """Alive replicas expose identical totally ordered write histories.

    Vacuously true before any write is delivered; combine with a workload
    that performs writes to make it a consistency check.
    """
    histories = {
        tuple(node.service_map["register"].history())
        for node in cluster.alive_nodes()
        if "register" in node.service_map
    }
    return len(histories) <= 1


def no_pending_writes(cluster: "Cluster") -> bool:
    """Every submitted write on an alive replica has been delivered."""
    services = [
        node.service_map["vs"]
        for node in cluster.alive_nodes()
        if "vs" in node.service_map
    ]
    return bool(services) and all(vs.pending_count() == 0 for vs in services)


def smr_states_agree(cluster: "Cluster") -> bool:
    """Alive replicas hold identical replicated-state snapshots."""
    snapshots: List[Any] = []
    for node in cluster.alive_nodes():
        vs = node.service_map.get("vs")
        if vs is not None:
            snapshots.append(vs.machine.snapshot())
    return len(snapshots) > 0 and all(s == snapshots[0] for s in snapshots[1:])


def smr_histories_agree(cluster: "Cluster") -> bool:
    """Same-view replicas expose prefix-ordered delivery histories.

    The safety core of virtual synchrony, stated so it holds *throughout* a
    run (unlike snapshot equality, which followers legitimately violate while
    they lag the coordinator by a round): group alive replicas by installed
    view; within one view every history must be a prefix of every longer one,
    because members only ever extend or adopt the coordinator's chain.
    Divergence at any index — two same-view replicas that applied *different*
    commands in the same position — is an agreement violation.  Replicas in
    different views are not compared (a stale member of a superseded view may
    hold a since-forked suffix; the view-install synchronization is what
    repairs it).
    """
    groups: Dict[Any, List[Any]] = {}
    for node in cluster.alive_nodes():
        vs = node.service_map.get("vs")
        if vs is None or vs.view is None:
            continue
        groups.setdefault(vs.view, []).append(vs.delivery_history())
    for histories in groups.values():
        if len(histories) < 2:
            continue
        histories.sort(key=len)
        for shorter, longer in zip(histories, histories[1:]):
            if longer[: len(shorter)] != shorter:
                return False
    return True


# ---------------------------------------------------------------------------
# Invariant checks (used by the audit engine; see repro.audit)
# ---------------------------------------------------------------------------
def channels_bounded(cluster: "Cluster") -> bool:
    """No channel ever holds more in-flight packets than its capacity.

    The paper bounds adversarial channel content by ``cap`` per channel
    (Section 2 / Lemma 3.18); the simulated channels enforce this, so the
    invariant doubles as a self-check of the fault-injection plumbing.
    """
    return all(
        chan.occupancy() <= chan.config.capacity
        for chan in cluster.simulator.network.channels()
    )


def no_reset_in_progress(cluster: "Cluster") -> bool:
    """No alive node's own config entry is ``⊥``.

    **Deliberately too strong**: a brute-force reset legitimately drives
    every config entry through ``⊥``, so any corruption that triggers a reset
    violates this.  It exists as the demonstration target for the audit
    engine's reproducer shrinking (``python -m repro.audit --demo-shrink``).
    """
    from repro.common.types import BOTTOM

    return all(
        node.recsa.config.get(node.pid) is not BOTTOM
        for node in cluster.alive_nodes()
    )


def _honest_rb_services(cluster: "Cluster"):
    """Yield ``(pid, rb_service)`` for every honest alive node running one.

    Nodes that have *ever* run a traitor program (``cluster.byzantine_pids``)
    are excluded: reliable-broadcast guarantees are stated over correct
    processors only, and a deactivated traitor's local tables carry no
    guarantees either.
    """
    byzantine = getattr(cluster, "byzantine_pids", frozenset())
    for node in cluster.alive_nodes():
        if node.pid in byzantine:
            continue
        rb = node.service_map.get("rb")
        if rb is not None:
            yield node.pid, rb


def rb_deliveries_agree(cluster: "Cluster") -> bool:
    """No two honest nodes deliver different payloads for one broadcast.

    The *agreement* half of reliable broadcast, checked over every message
    id — including ids originated by traitors: Bracha's echo quorums are
    exactly what extends agreement to equivocating origins, so a split
    delivery anywhere is a protocol violation (and on the naive baseline,
    the expected symptom of equivocation).
    """
    witnessed: Dict[Any, Any] = {}
    for _, rb in _honest_rb_services(cluster):
        for mid, payload in rb.delivered.items():
            if mid in witnessed:
                if witnessed[mid] != payload:
                    return False
            else:
                witnessed[mid] = payload
    return True


def rb_deliveries_valid(cluster: "Cluster") -> bool:
    """Every delivery attributed to an honest origin matches what it sent.

    The *validity/integrity* half: a delivered ``(origin, seq)`` whose origin
    is an honest alive node must appear in that origin's own send log with an
    identical payload — anything else means a forged or mutated broadcast was
    accepted in an honest processor's name.  Traitor-attributed and
    no-longer-checkable (crashed-origin) deliveries are skipped; reliable
    broadcast makes no promises about what traitors "sent".
    """
    sent_by = {pid: rb.sent for pid, rb in _honest_rb_services(cluster)}
    for _, rb in _honest_rb_services(cluster):
        for (origin, seq), payload in rb.delivered.items():
            sent = sent_by.get(origin)
            if sent is None:
                continue
            if seq not in sent or sent[seq] != payload:
                return False
    return True


def rb_all_delivered(cluster: "Cluster") -> bool:
    """Every honest broadcast has been delivered by every honest rb node.

    The *totality/liveness* side, used as a probe (driven toward), never as
    an invariant (it is legitimately false while echoes are in flight).
    """
    services = list(_honest_rb_services(cluster))
    if not services:
        return False
    for origin, rb in services:
        for seq in rb.sent:
            if any((origin, seq) not in other.delivered for _, other in services):
                return False
    return True


def bounded_channels_invariant() -> Invariant:
    return Invariant("channels_bounded", channels_bounded)


def no_reset_invariant() -> Invariant:
    return Invariant("no_reset_in_progress", no_reset_in_progress)


def smr_agreement_invariant() -> Invariant:
    """``smr_agreement`` armed as a safety property, not just a probe.

    Monitored after every executed event by the audit engine on the
    ``vs_smr`` / ``shared_register`` stacks: same-view replicas must never
    diverge on the content of their delivery histories, even while an
    arbitrary-state corruption is being repaired.
    """
    return Invariant("smr_agreement", smr_histories_agree)


def rb_agreement_invariant() -> Invariant:
    """``rb_agreement`` — honest nodes never split on a broadcast's payload."""
    return Invariant("rb_agreement", rb_deliveries_agree)


def rb_validity_invariant() -> Invariant:
    """``rb_validity`` — honest-origin deliveries match the origin's sends."""
    return Invariant("rb_validity", rb_deliveries_valid)


#: Named invariant factories — what corpus entries and CLI flags resolve
#: against (an :class:`Invariant` itself is not JSON-serializable).
INVARIANT_FACTORIES: Dict[str, Callable[[], Invariant]] = {
    "channels_bounded": bounded_channels_invariant,
    "no_reset_in_progress": no_reset_invariant,
    "smr_agreement": smr_agreement_invariant,
    "rb_agreement": rb_agreement_invariant,
    "rb_validity": rb_validity_invariant,
}


def invariant_by_name(name: str) -> Invariant:
    """Build the named invariant (corpus replay, CLI selection)."""
    try:
        return INVARIANT_FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown invariant {name!r}; available: {sorted(INVARIANT_FACTORIES)}"
        ) from None


# ---------------------------------------------------------------------------
# Probe factories
# ---------------------------------------------------------------------------
def converged(timeout: float = DEFAULT_PROBE_TIMEOUT) -> Probe:
    return Probe("converged", is_converged, timeout)


def participating(timeout: float = DEFAULT_PROBE_TIMEOUT) -> Probe:
    return Probe("all_participating", all_participating, timeout)


def view_installed(timeout: float = DEFAULT_PROBE_TIMEOUT) -> Probe:
    return Probe("view_installed", view_is_installed, timeout)


def register_agreement(timeout: float = DEFAULT_PROBE_TIMEOUT) -> Probe:
    return Probe("register_agreement", registers_agree, timeout)


def writes_delivered(timeout: float = DEFAULT_PROBE_TIMEOUT) -> Probe:
    return Probe("writes_delivered", no_pending_writes, timeout)


def smr_agreement(timeout: float = DEFAULT_PROBE_TIMEOUT) -> Probe:
    return Probe("smr_agreement", smr_states_agree, timeout)


def rb_delivered(timeout: float = DEFAULT_PROBE_TIMEOUT) -> Probe:
    return Probe("rb_delivered", rb_all_delivered, timeout)
