"""Small result-table helpers used by the benchmark harness.

The paper's evaluation is a set of theorems rather than tables of numbers, so
each benchmark produces a :class:`ResultTable` whose rows are the measured
quantities the corresponding theorem bounds (convergence time, triggering
counts, label creations, ...).  The tables render as aligned text so the
benchmark output can be pasted directly into EXPERIMENTS.md.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence


@dataclass
class ExperimentResult:
    """One measured row of an experiment: a parameter point plus metrics."""

    parameters: Dict[str, Any]
    metrics: Dict[str, Any]

    def as_row(self, columns: Sequence[str]) -> List[Any]:
        merged = {**self.parameters, **self.metrics}
        return [merged.get(column, "") for column in columns]


@dataclass
class ResultTable:
    """A titled collection of :class:`ExperimentResult` rows."""

    title: str
    columns: List[str]
    results: List[ExperimentResult] = field(default_factory=list)

    def add(self, parameters: Dict[str, Any], metrics: Dict[str, Any]) -> ExperimentResult:
        result = ExperimentResult(parameters=parameters, metrics=metrics)
        self.results.append(result)
        return result

    def rows(self) -> List[List[Any]]:
        return [result.as_row(self.columns) for result in self.results]

    def render(self) -> str:
        """Render the table as aligned plain text."""
        rows = [self.columns] + [
            [_format_cell(cell) for cell in row] for row in self.rows()
        ]
        widths = [max(len(str(row[i])) for row in rows) for i in range(len(self.columns))]
        lines = [self.title, "-" * len(self.title)]
        for index, row in enumerate(rows):
            line = "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))
            lines.append(line)
            if index == 0:
                lines.append("  ".join("-" * widths[i] for i in range(len(widths))))
        return "\n".join(lines)

    def column(self, name: str) -> List[Any]:
        """Every value of one column, in row order."""
        return [
            {**result.parameters, **result.metrics}.get(name) for result in self.results
        ]


def _format_cell(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def summarize(values: Iterable[float]) -> Dict[str, float]:
    """Mean / median / min / max summary of a sequence of measurements."""
    data = [float(v) for v in values]
    if not data:
        return {"mean": 0.0, "median": 0.0, "min": 0.0, "max": 0.0, "count": 0}
    return {
        "mean": statistics.fmean(data),
        "median": statistics.median(data),
        "min": min(data),
        "max": max(data),
        "count": len(data),
    }
