"""Metrics collection and reporting helpers for the benchmark harness."""

from repro.analysis.metrics import ExperimentResult, ResultTable, summarize

__all__ = ["ExperimentResult", "ResultTable", "summarize"]
