"""Metrics, probes and reporting helpers for scenarios and benchmarks."""

from repro.analysis.metrics import ExperimentResult, ResultTable, summarize
from repro.analysis.probes import Invariant, Probe, ProbeResult, wait_for

__all__ = [
    "ExperimentResult",
    "ResultTable",
    "summarize",
    "Invariant",
    "Probe",
    "ProbeResult",
    "wait_for",
]
