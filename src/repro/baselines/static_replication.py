"""A static (non-reconfigurable) majority-replication baseline.

Used by the availability experiments: a fixed configuration replicated with
majority quorums simply loses liveness forever once a majority of its members
crash, whereas the paper's scheme reconfigures onto the surviving
participants.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.common.types import Configuration, ProcessId, make_config


class StaticMajorityReplication:
    """A closed-world majority-quorum replica group (no reconfiguration).

    The class is deliberately simple — it is an analytical stand-in rather
    than a message-passing protocol: operations succeed while a majority of
    the *fixed* configuration is alive and fail forever afterwards.
    """

    def __init__(self, members: Iterable[ProcessId]) -> None:
        self.members: Configuration = make_config(members)
        self.crashed: set = set()
        self.value: Optional[object] = None
        self.completed_operations = 0
        self.failed_operations = 0

    def crash(self, pid: ProcessId) -> None:
        """Record the crash of a member."""
        if pid in self.members:
            self.crashed.add(pid)

    def alive_members(self) -> FrozenSet[ProcessId]:
        """Members that have not crashed."""
        return frozenset(self.members - self.crashed)

    def has_majority(self) -> bool:
        """True while a majority of the fixed configuration is alive."""
        return len(self.alive_members()) >= len(self.members) // 2 + 1

    def write(self, value: object) -> bool:
        """Attempt a majority write; returns whether it completed."""
        if not self.has_majority():
            self.failed_operations += 1
            return False
        self.value = value
        self.completed_operations += 1
        return True

    def read(self) -> Optional[object]:
        """Attempt a majority read; returns None when unavailable."""
        if not self.has_majority():
            self.failed_operations += 1
            return None
        self.completed_operations += 1
        return self.value
