"""A classical (non-self-stabilizing) reconfiguration baseline.

The related-work systems the paper contrasts itself with (RAMBO-style
reconfigurable storage, dynamic atomic storage without consensus) assume a
*coherent start*: every processor boots with the same initial configuration,
configuration changes are totally ordered by unbounded sequence numbers, and
a new configuration is only adopted when proposed by a member of the previous
one.  Under those assumptions the baseline below is perfectly correct — but a
single transient fault (a corrupted configuration field or sequence number,
or a stale packet carrying one) can leave replicas permanently disagreeing,
because nothing ever audits the agreement again.

Experiment E9 runs the same transient-fault campaign against this baseline
and against the paper's scheme to reproduce the introduction's claim: the
self-stabilizing scheme re-converges, the baseline does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, Optional

from repro.common.codec import wire_type
from repro.common.types import Configuration, ProcessId, make_config
from repro.sim.process import Process


@wire_type
@dataclass(frozen=True)
class CoherentStartMessage:
    """Gossip of the baseline's ``(sequence, configuration)`` pair."""

    sender: ProcessId
    sequence: int
    config: Configuration


class CoherentStartNode(Process):
    """A processor of the coherent-start reconfiguration baseline.

    The node adopts any ``(sequence, configuration)`` pair with a sequence
    number higher than its own — the standard "latest configuration wins"
    rule.  There is no conflict detection for equal sequence numbers and no
    recovery path: exactly the behaviour of a correct-under-assumptions but
    non-self-stabilizing protocol.
    """

    def __init__(
        self,
        pid: ProcessId,
        peers: Iterable[ProcessId],
        initial_config: Iterable[ProcessId],
        step_interval: float = 1.0,
    ) -> None:
        super().__init__(pid=pid, step_interval=step_interval)
        self.peers = [p for p in peers if p != pid]
        self.sequence = 0
        self.config: Configuration = make_config(initial_config)
        self.reconfigurations = 0

    # ------------------------------------------------------------------
    # Reconfiguration API (what an administrator would call)
    # ------------------------------------------------------------------
    def propose_reconfiguration(self, members: Iterable[ProcessId]) -> None:
        """Install a new configuration with the next sequence number."""
        self.sequence += 1
        self.config = make_config(members)
        self.reconfigurations += 1

    # ------------------------------------------------------------------
    # Process hooks
    # ------------------------------------------------------------------
    def on_timer(self) -> None:
        message = CoherentStartMessage(
            sender=self.pid, sequence=self.sequence, config=self.config
        )
        for peer in self.peers:
            if self.context is not None:
                self.context.send(peer, message)

    def on_receive(self, sender: ProcessId, payload: Any) -> None:
        if not isinstance(payload, CoherentStartMessage):
            return
        if payload.sequence > self.sequence:
            self.sequence = payload.sequence
            self.config = payload.config
        # Equal sequence numbers with different configurations are silently
        # ignored: under the coherent-start assumption they cannot happen, so
        # the baseline has no rule for them — which is precisely why it never
        # recovers from a transient fault that creates such a split.
