"""Non-self-stabilizing baselines used for comparison (experiment E9)."""

from repro.baselines.coherent_start import CoherentStartNode, CoherentStartMessage
from repro.baselines.static_replication import StaticMajorityReplication

__all__ = ["CoherentStartNode", "CoherentStartMessage", "StaticMajorityReplication"]
