"""The real-runtime backend: the middleware off the simulator, onto sockets.

This package runs the *same* protocol stack the simulator drives —
:class:`~repro.sim.cluster.ClusterNode` with its data link, failure
detector, recSA/recMA, joining, and application services, unmodified —
as live asyncio tasks exchanging UDP datagrams on localhost:

* :class:`~repro.runtime.transport.AsyncioTransport` — the
  :class:`~repro.transport.base.Transport` backend: per-node UDP
  endpoints, the :mod:`repro.common.codec` wire format, wall-clock
  timers rescaled to sim-time units.
* :class:`~repro.runtime.cluster.RuntimeCluster` — the harness: builds
  and boots an n-node localhost cluster, polls convergence, kills and
  restarts nodes.
* :mod:`repro.runtime.loadgen` — the closed-loop load generator
  (``python -m repro.runtime.loadgen``): K concurrent client sessions
  driving counter increments / SMR commands, latency percentiles,
  convergence-after-kill probes.
* ``python -m repro.runtime --smoke`` — the CI smoke: n=8 bootstraps,
  converges, survives a kill/restart inside a 60 s wall budget.
"""

from repro.runtime.transport import AsyncioTransport
from repro.runtime.cluster import RuntimeCluster

__all__ = ["AsyncioTransport", "RuntimeCluster"]
