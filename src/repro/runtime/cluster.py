"""``RuntimeCluster``: a live localhost cluster of the full protocol stack.

The runtime analogue of :func:`repro.sim.cluster.build_cluster` +
:class:`~repro.sim.cluster.Cluster`: it builds the *same*
:class:`~repro.sim.cluster.ClusterNode` objects (heartbeat link layer,
NTheta failure detector, recSA/recMA/joining, the configured
:class:`~repro.sim.stacks.StackProfile` services) and hosts them on an
:class:`~repro.runtime.transport.AsyncioTransport` instead of a simulator.

Convergence has no incremental ledger here (there is no single event stream
to piggyback on), so :meth:`wait_converged` polls the shared full-scan
oracle :func:`repro.sim.cluster.converged_scan` on a wall-clock cadence —
n=8 scans are microseconds, and the poll runs in the same loop thread as
the protocol, so each answer is a consistent atomic snapshot.

Node failure and recovery mirror the paper's churn story: :meth:`kill` is a
stop-fail (endpoint torn down, packets to it become losses), and
:meth:`restart` brings the pid back as a **joiner** — a fresh node with no
configuration that must be admitted through the joining mechanism, exactly
like a simulator ``add_joiner``.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Union

from repro.common.types import BOTTOM, Configuration, ProcessId, make_config
from repro.sim.cluster import ClusterNode, converged_scan
from repro.sim.config import ClusterConfig, preset
from repro.sim.stacks import StackProfile, get_stack
from repro.runtime.transport import AsyncioTransport, DEFAULT_TICK_SECONDS

#: ``tick_seconds="auto"`` fast-tick scale: once bootstrap converges the
#: wall-clock/sim-unit scale drops to DEFAULT_TICK_SECONDS / this factor,
#: so steady-state protocol rounds are not pinned to the conservative 50 ms
#: bootstrap pace.  4× keeps an n=8 stack's timer+fan-out load well inside
#: one core while quartering round-paced client latency.
FAST_TICK_FACTOR = 4.0


class RuntimeCluster:
    """An n-node live cluster over UDP/localhost.

    Usage (inside a coroutine)::

        cluster = RuntimeCluster(n=8, seed=7, stack="counters")
        await cluster.start()
        assert await cluster.wait_converged(timeout_s=30.0)
        cluster.kill(3)
        ...
        await cluster.shutdown()
    """

    def __init__(
        self,
        n: int,
        seed: int = 0,
        config: Union[str, ClusterConfig] = "fast_sim",
        stack: Union[str, StackProfile, None] = None,
        tick_seconds: Union[float, str] = DEFAULT_TICK_SECONDS,
    ) -> None:
        if n < 1:
            raise ValueError("a cluster needs at least one node")
        base = preset(config) if isinstance(config, str) else config
        base = base.with_overrides(stack=stack)
        self.n = n
        self.seed = seed
        self.config = base.resolve(n)
        self.stack: StackProfile = get_stack(self.config.stack)
        if isinstance(tick_seconds, str):
            if tick_seconds != "auto":
                raise ValueError(
                    f"tick_seconds must be a float or 'auto', got {tick_seconds!r}"
                )
            self.auto_tick = True
            self.tick_seconds: float = DEFAULT_TICK_SECONDS
        else:
            self.auto_tick = False
            self.tick_seconds = tick_seconds
        self.fast_tick_engaged = False
        self.nodes: Dict[ProcessId, ClusterNode] = {}
        self.transport: Optional[AsyncioTransport] = None

    # --------------------------------------------------------------- boot
    async def start(self) -> "RuntimeCluster":
        """Open every endpoint and start every node (pids ``0..n-1``)."""
        if self.transport is not None:
            raise RuntimeError("cluster already started")
        self.transport = AsyncioTransport(
            seed=self.seed, tick_seconds=self.tick_seconds
        )
        pids = list(range(self.n))
        initial = make_config(pids) if self.config.coherent_start else BOTTOM
        for pid in pids:
            node = ClusterNode(
                pid=pid,
                peers=pids,
                config=self.config,
                initial_config=initial,
                stack=self.stack,
            )
            self.nodes[pid] = node
            await self.transport.start_node(node)
        return self

    async def shutdown(self) -> None:
        """Tear the whole cluster down."""
        if self.transport is not None:
            await self.transport.close()
            self.transport = None

    async def __aenter__(self) -> "RuntimeCluster":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.shutdown()

    # ------------------------------------------------------------ queries
    def alive_nodes(self) -> List[ClusterNode]:
        return [n for n in self.nodes.values() if n.started and not n.crashed]

    def is_converged(self) -> bool:
        """The full-scan convergence oracle over the live nodes."""
        return converged_scan(self.nodes.values())

    def agreed_configuration(self) -> Optional[Configuration]:
        """The single real configuration all alive participants hold."""
        agreed = None
        for node in self.alive_nodes():
            if not node.scheme.is_participant():
                continue
            value = node.scheme.configuration()
            if value is None:
                return None
            if agreed is None:
                agreed = value
            elif value != agreed:
                return None
        return agreed

    def service(self, pid: ProcessId, name: str) -> Any:
        """The *name* stack service of node *pid* (e.g. ``"counters"``)."""
        return self.nodes[pid].service(name)

    async def wait_converged(
        self, timeout_s: float, poll_s: float = 0.05
    ) -> bool:
        """Poll the convergence oracle until it holds or *timeout_s* passes.

        Under ``tick_seconds="auto"`` the first successful wait engages the
        fast tick (see :meth:`engage_fast_tick`): bootstrap runs at the
        conservative default pace, steady state at ``FAST_TICK_FACTOR``×.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while True:
            if self.is_converged():
                if self.auto_tick and not self.fast_tick_engaged:
                    self.engage_fast_tick()
                return True
            if loop.time() >= deadline:
                return False
            await asyncio.sleep(poll_s)

    def engage_fast_tick(self, factor: float = FAST_TICK_FACTOR) -> None:
        """Shorten the wall-clock/sim-unit scale by *factor* (idempotent)."""
        if self.transport is None:
            raise RuntimeError("cluster not started")
        if self.fast_tick_engaged:
            return
        self.tick_seconds = self.tick_seconds / factor
        self.transport.set_tick_seconds(self.tick_seconds)
        self.fast_tick_engaged = True

    # ------------------------------------------------------------- churn
    def kill(self, pid: ProcessId) -> None:
        """Stop-fail node *pid* (endpoint closed, timers cancelled)."""
        if self.transport is None:
            raise RuntimeError("cluster not started")
        self.transport.crash_node(pid)

    async def restart(self, pid: ProcessId) -> ClusterNode:
        """Bring *pid* back as a joiner (fresh state, joining protocol).

        The old crashed node object is replaced; the new one must be
        admitted by the current configuration's members before it counts as
        a participant again.
        """
        if self.transport is None:
            raise RuntimeError("cluster not started")
        peers = [p for p, node in self.nodes.items()
                 if p != pid and node.started and not node.crashed]
        node = ClusterNode(
            pid=pid,
            peers=peers,
            config=self.config,
            initial_config=None,
            stack=self.stack,
        )
        self.nodes[pid] = node
        await self.transport.start_node(node)
        return node

    # -------------------------------------------------------- inspection
    def statistics(self) -> Dict[str, Any]:
        stats: Dict[str, Any] = {
            "n": self.n,
            "seed": self.seed,
            "alive": len(self.alive_nodes()),
            "converged": self.is_converged(),
            "tick_seconds": self.tick_seconds,
        }
        if self.transport is not None:
            stats.update(self.transport.statistics())
        return stats
