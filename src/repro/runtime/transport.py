"""``AsyncioTransport``: the protocol stack over real UDP sockets.

Each node owns a UDP endpoint on ``127.0.0.1`` (ephemeral port) inside one
asyncio event loop; a datagram carries an 8-byte source-pid header followed
by **one or more** :func:`repro.common.codec.frame` bodies.  Frames queued
to the same destination within one event-loop turn are *coalesced* into a
single datagram (up to ``MAX_DATAGRAM_BYTES``), mirroring the simulator's
``send_many`` batching: a protocol round that fans out heartbeat + gossip +
token to the same peer pays one syscall and one header instead of three.
Timers are ``loop.call_later`` with simulated-time delays rescaled by
``tick_seconds`` (wall seconds per sim-time unit); the scale can be changed
live via :meth:`AsyncioTransport.set_tick_seconds` (the clock is rebased so
``now()`` stays continuous and monotone).  Because the loop is
single-threaded, every timer callback and every datagram delivery runs as
one atomic step — the same interleaving model the simulator enforces, just
scheduled by the kernel instead of an event queue.

Fidelity to the model, not to the simulator: there is no channel-delay or
loss shaping here (localhost UDP is the channel — unreliable in principle,
fast in practice), so runtime trajectories are *not* byte-identical to
simulator ones and never claim to be.  What is identical: the per-process
RNG streams (same ``make_rng(seed, "process", pid)`` derivation) and the
protocol semantics the transport conformance suite pins on both backends.

Hostile input never crashes a node: any datagram that fails to parse
(truncated header, bad frame, unknown wire tag — i.e. anything a Byzantine
peer could spray at a port) is counted in ``quarantined_datagrams`` and
dropped, mirroring the inbound validation of the reliable-broadcast layer.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.common.codec import CodecError, frame, unframe
from repro.common.logging_utils import get_logger
from repro.common.rng import make_rng
from repro.common.types import ProcessId
from repro.sim.process import Process, ProcessContext

_log = get_logger("runtime.transport")

#: Datagram header: the sender's pid, 8-byte big-endian signed.
_HEADER = struct.Struct(">q")

#: Practical UDP payload ceiling on loopback; larger frames are dropped like
#: any other lost packet (honest messages are a few KiB even at large n).
MAX_DATAGRAM_BYTES = 60_000

#: Default wall seconds per simulated-time unit.  At the stack's default
#: step_interval of 1.0 this paces each node's do-forever loop at 20 Hz —
#: fast enough that an n=8 bootstrap converges in a few wall seconds, slow
#: enough that n nodes' timers plus their message fan-out stay far below a
#: single core's capacity.
DEFAULT_TICK_SECONDS = 0.05


class _Timer:
    """A pending timer: wraps the loop handle so cancellation is idempotent
    and per-pid cleanup on crash/stop can find it."""

    __slots__ = ("handle", "pid", "transport")

    def __init__(self, transport: "AsyncioTransport", pid: ProcessId) -> None:
        self.transport = transport
        self.pid = pid
        self.handle: Optional[asyncio.TimerHandle] = None

    def cancel(self) -> None:
        if self.handle is not None:
            self.handle.cancel()
            self.handle = None
        self.transport._timers.get(self.pid, set()).discard(self)


class _NodeEndpoint(asyncio.DatagramProtocol):
    """The per-node UDP protocol: parses datagrams, delivers to the process."""

    def __init__(self, transport: "AsyncioTransport", process: Process) -> None:
        self.owner = transport
        self.process = process
        self.udp: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.udp = transport  # type: ignore[assignment]

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        owner = self.owner
        try:
            if len(data) <= _HEADER.size:
                raise CodecError("datagram shorter than its header")
            (source,) = _HEADER.unpack_from(data)
            # A datagram may coalesce several frames; unframe them in order
            # so per-destination FIFO is preserved within the batch.  A bad
            # frame anywhere quarantines the whole datagram *before* any
            # delivery — a Byzantine sender cannot smuggle a valid prefix.
            payloads: List[Any] = []
            offset = _HEADER.size
            while offset < len(data):
                payload, consumed = unframe(data[offset:])
                payloads.append(payload)
                offset += consumed
        except CodecError as exc:
            owner.quarantined_datagrams += 1
            _log.debug("pid %s quarantined datagram from %s: %s",
                       self.process.pid, addr, exc)
            return
        owner.delivered_datagrams += 1
        owner.delivered_frames += len(payloads)
        for payload in payloads:
            try:
                self.process.deliver(source, payload)
            except Exception:  # noqa: BLE001 - a node bug must not kill the loop
                owner.delivery_errors += 1
                _log.exception("pid %s handler failed on message from %s",
                               self.process.pid, source)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        _log.debug("pid %s endpoint error: %s", self.process.pid, exc)


class AsyncioTransport:
    """A :class:`~repro.transport.base.Transport` over asyncio + UDP.

    Construct inside a running event loop; then :meth:`start_node` each
    process, and :meth:`close` when done (``async with`` does both ends).
    """

    def __init__(self, seed: int = 0, tick_seconds: float = DEFAULT_TICK_SECONDS) -> None:
        if tick_seconds <= 0:
            raise ValueError("tick_seconds must be positive")
        self.seed = seed
        self.tick_seconds = tick_seconds
        self._loop = asyncio.get_running_loop()
        self._epoch = self._loop.time()
        self._epoch_sim = 0.0  # sim-time at the last tick rebase
        self._endpoints: Dict[ProcessId, _NodeEndpoint] = {}
        self._addrs: Dict[ProcessId, Tuple[str, int]] = {}
        self._timers: Dict[ProcessId, Set[_Timer]] = {}
        # Coalescing state: per-(source, dest) queues of encoded frames,
        # flushed once per event-loop turn.
        self._outbox: Dict[Tuple[ProcessId, ProcessId], List[bytes]] = {}
        self._flush_scheduled = False
        # Wire statistics (mirrors the simulator's counters loosely).
        self.sent_datagrams = 0
        self.dropped_datagrams = 0
        self.delivered_datagrams = 0
        self.quarantined_datagrams = 0
        self.delivery_errors = 0
        self.sent_frames = 0
        self.dropped_frames = 0
        self.delivered_frames = 0

    # ------------------------------------------------------- Transport API
    def now(self) -> float:
        """Wall time since transport creation, in sim-time units (metrics
        only — see :mod:`repro.transport.base` for the contract)."""
        return self._epoch_sim + (self._loop.time() - self._epoch) / self.tick_seconds

    def set_tick_seconds(self, tick_seconds: float) -> None:
        """Change the wall-clock/sim-unit scale live (the fast-tick lever).

        The clock is rebased so :meth:`now` stays continuous and monotone
        across the change.  Timers already pending keep the wall delay they
        were armed with; every timer set *after* the change uses the new
        scale — the protocol layers re-arm their round timers each
        iteration, so the whole stack converges onto the new pace within
        one round.
        """
        if tick_seconds <= 0:
            raise ValueError("tick_seconds must be positive")
        if tick_seconds == self.tick_seconds:
            return
        wall = self._loop.time()
        self._epoch_sim += (wall - self._epoch) / self.tick_seconds
        self._epoch = wall
        self.tick_seconds = tick_seconds

    def _enqueue_frame(
        self, source: ProcessId, destination: ProcessId, body: bytes
    ) -> bool:
        """Queue one encoded frame for coalesced delivery; True if accepted."""
        if self._addrs.get(destination) is None or source not in self._endpoints:
            # Sender gone or receiver unknown/down: the unreliable-channel
            # model says this is simply a lost packet.
            self.dropped_frames += 1
            return False
        if _HEADER.size + len(body) > MAX_DATAGRAM_BYTES:
            self.dropped_frames += 1
            return False
        self._outbox.setdefault((source, destination), []).append(body)
        self.sent_frames += 1
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self._loop.call_soon(self._flush_outbox)
        return True

    def _flush_outbox(self) -> None:
        """Send every queued frame, coalescing per (source, dest) pair.

        Frames to the same destination are packed greedily into datagrams
        under ``MAX_DATAGRAM_BYTES``, in enqueue order — per-destination
        FIFO within a turn is preserved both here and in the receiver's
        unframe loop.  Quarantine rules are untouched: coalescing changes
        how many frames share a header, never what a receiver accepts.
        """
        self._flush_scheduled = False
        outbox, self._outbox = self._outbox, {}
        for (source, destination), frames in outbox.items():
            endpoint = self._endpoints.get(source)
            addr = self._addrs.get(destination)
            if endpoint is None or endpoint.udp is None or addr is None:
                # Torn down between enqueue and flush: late losses.
                self.sent_frames -= len(frames)
                self.dropped_frames += len(frames)
                continue
            header = _HEADER.pack(source)
            batch: List[bytes] = []
            size = _HEADER.size
            for body in frames:
                if batch and size + len(body) > MAX_DATAGRAM_BYTES:
                    self._sendto(endpoint, header, batch, addr)
                    batch = []
                    size = _HEADER.size
                batch.append(body)
                size += len(body)
            if batch:
                self._sendto(endpoint, header, batch, addr)

    def _sendto(
        self,
        endpoint: _NodeEndpoint,
        header: bytes,
        batch: List[bytes],
        addr: Tuple[str, int],
    ) -> None:
        assert endpoint.udp is not None
        try:
            endpoint.udp.sendto(header + b"".join(batch), addr)
            self.sent_datagrams += 1
        except OSError:
            self.dropped_datagrams += 1
            self.sent_frames -= len(batch)
            self.dropped_frames += len(batch)

    def send(self, source: ProcessId, destination: ProcessId, payload: Any) -> None:
        try:
            body = frame(payload)
        except CodecError:
            # An unregistered payload type is a programming error on the
            # sending node, not line noise — surface it.
            raise
        self._enqueue_frame(source, destination, body)

    def send_many(
        self, source: ProcessId, payloads: Iterable[Tuple[ProcessId, Any]]
    ) -> int:
        # Broadcasts send one object to many peers: encode each distinct
        # payload once and fan the bytes out.
        encoded: Dict[int, bytes] = {}
        accepted = 0
        for destination, payload in payloads:
            body = encoded.get(id(payload))
            if body is None:
                body = encoded[id(payload)] = frame(payload)
            if self._enqueue_frame(source, destination, body):
                accepted += 1
        return accepted

    def set_timer(
        self,
        pid: ProcessId,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> _Timer:
        if delay < 0:
            raise ValueError("timer delay must be non-negative")
        timer = _Timer(self, pid)

        def fire() -> None:
            timer.handle = None
            self._timers.get(pid, set()).discard(timer)
            callback()

        timer.handle = self._loop.call_later(delay * self.tick_seconds, fire)
        self._timers.setdefault(pid, set()).add(timer)
        return timer

    def cancel_timer(self, handle: Optional[_Timer]) -> None:
        if handle is not None:
            handle.cancel()

    def make_process_rng(self, pid: ProcessId):
        # Identical derivation to SimTransport: a node's local coin flips do
        # not depend on which backend hosts it.
        return make_rng(self.seed, "process", pid)

    # ------------------------------------------------------ node lifecycle
    async def start_node(self, process: Process) -> Process:
        """Open *process*'s UDP endpoint, bind its context, and start it."""
        pid = process.pid
        if pid in self._endpoints:
            raise RuntimeError(f"pid {pid} already has a live endpoint")
        endpoint = _NodeEndpoint(self, process)
        udp, _ = await self._loop.create_datagram_endpoint(
            lambda: endpoint, local_addr=("127.0.0.1", 0)
        )
        assert endpoint.udp is udp
        self._endpoints[pid] = endpoint
        self._addrs[pid] = udp.get_extra_info("sockname")[:2]
        process.bind(
            ProcessContext(pid=pid, transport=self, rng=self.make_process_rng(pid))
        )
        process.start()
        return process

    def stop_node(self, pid: ProcessId) -> None:
        """Tear down *pid*'s endpoint and pending timers (graceful stop).

        The process object is left as-is; a stopped pid's address vanishes
        from the registry, so in-flight packets to it become losses.
        """
        for timer in list(self._timers.pop(pid, ())):
            timer.cancel()
        endpoint = self._endpoints.pop(pid, None)
        self._addrs.pop(pid, None)
        if endpoint is not None and endpoint.udp is not None:
            endpoint.udp.close()

    def crash_node(self, pid: ProcessId) -> None:
        """Stop-fail *pid*: mark the process crashed, then tear it down."""
        endpoint = self._endpoints.get(pid)
        if endpoint is not None:
            endpoint.process.crash()
        self.stop_node(pid)

    def live_pids(self) -> List[ProcessId]:
        """Pids with an open endpoint."""
        return sorted(self._endpoints)

    async def close(self) -> None:
        """Tear down every endpoint and cancel every pending timer."""
        for pid in list(self._endpoints):
            self.stop_node(pid)
        # Let transport close callbacks run before the loop goes away.
        await asyncio.sleep(0)

    async def __aenter__(self) -> "AsyncioTransport":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    def statistics(self) -> Dict[str, Any]:
        """Wire counters, shaped like the simulator's ``statistics()``."""
        return {
            "time": self.now(),
            "live_nodes": len(self._endpoints),
            "sent_datagrams": self.sent_datagrams,
            "dropped_datagrams": self.dropped_datagrams,
            "delivered_datagrams": self.delivered_datagrams,
            "quarantined_datagrams": self.quarantined_datagrams,
            "delivery_errors": self.delivery_errors,
            "sent_frames": self.sent_frames,
            "dropped_frames": self.dropped_frames,
            "delivered_frames": self.delivered_frames,
        }
