"""CLI entry: ``python -m repro.runtime --smoke``.

The CI runtime smoke: boot an n=8 asyncio cluster on localhost, require
self-organized convergence, stop-fail one node, require the survivors'
failure detectors to evict it, restart it as a joiner and require it to be
re-admitted as a participant — all within a single wall-clock budget
(default 60 s).  Exit 0 on success, 1 on any missed milestone, so the CI
job fails loudly instead of timing out silently.

For the load generator (throughput + latency percentiles), use
``python -m repro.runtime.loadgen``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from typing import List, Optional

from repro.runtime.cluster import RuntimeCluster
from repro.runtime.loadgen import _kill_probe
from repro.runtime.transport import DEFAULT_TICK_SECONDS


async def smoke(n: int, seed: int, budget_s: float, tick_seconds: float) -> int:
    start = time.perf_counter()

    def remaining() -> float:
        return budget_s - (time.perf_counter() - start)

    def report(line: str) -> None:
        print(f"[runtime-smoke] t={time.perf_counter() - start:.2f}s {line}")

    async with RuntimeCluster(
        n=n, seed=seed, stack="counters", tick_seconds=tick_seconds
    ) as cluster:
        if not await cluster.wait_converged(timeout_s=max(1.0, remaining())):
            report("FAIL: bootstrap did not converge")
            return 1
        config = cluster.agreed_configuration()
        report(f"bootstrap converged on {sorted(config or ())}")
        if config != frozenset(range(n)):
            report(f"FAIL: unexpected configuration {config}")
            return 1

        probe = await _kill_probe(
            cluster, victim=n - 1, timeout_s=max(1.0, remaining())
        )
        report(
            f"kill probe: suspected_by_all={probe['suspected_by_all_s']}s "
            f"rejoined={probe['rejoined_s']}s"
        )
        if probe["suspected_by_all_s"] is None:
            report("FAIL: survivors never evicted the killed node")
            return 1
        if probe["rejoined_s"] is None:
            report("FAIL: restarted node never rejoined")
            return 1

        stats = cluster.statistics()
        report(
            f"OK: {stats['sent_datagrams']} datagrams sent, "
            f"{stats['quarantined_datagrams']} quarantined, "
            f"{stats['delivery_errors']} handler errors"
        )
        return 0 if stats["delivery_errors"] == 0 else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.runtime")
    parser.add_argument("--smoke", action="store_true",
                        help="run the bootstrap/kill/recover CI smoke")
    parser.add_argument("--n", type=int, default=8)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--budget", type=float, default=60.0,
                        help="wall-clock budget in seconds")
    parser.add_argument("--tick", type=float, default=DEFAULT_TICK_SECONDS)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("nothing to do: pass --smoke (or use repro.runtime.loadgen)")
    return asyncio.run(smoke(args.n, args.seed, args.budget, args.tick))


if __name__ == "__main__":
    sys.exit(main())
