"""Closed-loop load generator for the live runtime cluster.

``python -m repro.runtime.loadgen`` boots an n-node asyncio cluster on
localhost, waits for self-organized convergence, then drives it with K
concurrent closed-loop client sessions — each session issues one operation,
awaits its completion, and immediately issues the next.  Two workload
modes, matching the paper's two application layers:

``counters``
    Each operation is a two-phase quorum counter increment
    (:meth:`repro.counters.service.CounterService.increment`, Algorithms
    4.4/4.5); completion is the service's callback firing after the write
    quorum acknowledges.
``smr``
    Each operation is a state-machine command submitted to the virtually
    synchronous SMR layer (:meth:`repro.vs.virtual_synchrony
    .VirtualSynchronyService.submit`, Algorithm 4.7); completion is the
    submitting replica *applying* the command — i.e. full total-order
    delivery, observed through ``delivery_callback``.

Failure accounting distinguishes *kinds* (PR 9): ``abort_reconfig`` means
the paper's immediate ``⊥`` return — the service refused to even start the
op because a reconfiguration was in progress; ``abort_quorum`` means the op
started and a member's aborted reply killed it mid-flight; ``timeout`` is
the client's patience expiring.  Aborts are retried with bounded jittered
backoff (a real client re-issues after the reconfiguration window passes),
so only retry-exhausted aborts count as failures.

Latency is recorded in a **mergeable log-bucketed histogram**
(:class:`LatencyHistogram`), which is what makes the multi-process driver
possible: ``--workers K`` forks K shared-nothing worker processes, each
hosting its own full n-node cluster plus client cohort inside its own
asyncio event loop (clients call node services in-process, so scaling past
one event loop means scaling whole cells).  Worker reports — histograms,
op/failure counts, wire statistics — merge exactly; per-worker accounting
is preserved under ``per_worker``.

Results are written as JSON (default ``BENCH_dev_loadgen.json`` — see
``benchmarks/README.md`` for the artifact convention), keyed per mode, with
the cluster and wire statistics embedded.  ``--sweep-clients`` adds a
clients-axis scaling curve; ``--baseline`` soft-gates counters throughput
against a checked-in reference (same pattern as the audit gate).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import multiprocessing
import random
import sys
import time
from collections import Counter
from typing import Any, Dict, List, Optional, Union

from repro.runtime.cluster import RuntimeCluster
from repro.runtime.transport import DEFAULT_TICK_SECONDS

#: Bounded retry budget per operation: enough to ride out one
#: reconfiguration window (a handful of protocol rounds) without letting a
#: dead cluster spin forever.
MAX_OP_RETRIES = 8

#: Throughput floor for the ``--baseline`` soft gate: fail when counters
#: ops/s drops below this fraction of the checked-in reference (same >25%
#: regression threshold as the audit stabilization gate).
BASELINE_FLOOR = 0.75


def percentile(samples: List[float], fraction: float) -> Optional[float]:
    """The *fraction* quantile of *samples* (nearest-rank; None when empty)."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


def _ms(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else round(seconds * 1000.0, 3)


class LatencyHistogram:
    """A mergeable log-bucketed latency histogram.

    Buckets are geometric: sample ``s`` lands in bucket
    ``floor(log(s / BASE) / log(RATIO))``, so quantiles carry a bounded
    ~``RATIO - 1`` relative error while two histograms recorded in
    different processes merge by summing bucket counts — the property the
    multi-process driver needs (exact sample lists don't merge into exact
    quantiles without shipping every sample).  The maximum is tracked
    exactly.
    """

    BASE = 1e-4  # 0.1 ms resolution floor
    RATIO = 1.07
    _LOG_RATIO = math.log(RATIO)

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.max_s = 0.0

    def record(self, seconds: float) -> None:
        if seconds <= self.BASE:
            index = 0
        else:
            index = int(math.log(seconds / self.BASE) / self._LOG_RATIO) + 1
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        if seconds > self.max_s:
            self.max_s = seconds

    def merge(self, other: "LatencyHistogram") -> None:
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.count += other.count
        if other.max_s > self.max_s:
            self.max_s = other.max_s

    def quantile(self, fraction: float) -> Optional[float]:
        if not self.count:
            return None
        rank = min(self.count - 1, max(0, int(fraction * self.count)))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen > rank:
                if index == 0:
                    return self.BASE
                # Geometric bucket midpoint.
                return self.BASE * self.RATIO ** (index - 0.5)
        return self.max_s  # pragma: no cover - rank always found above

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "p50_ms": _ms(self.quantile(0.50)),
            "p95_ms": _ms(self.quantile(0.95)),
            "p99_ms": _ms(self.quantile(0.99)),
            "max_ms": _ms(self.max_s) if self.count else None,
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base_s": self.BASE,
            "ratio": self.RATIO,
            "count": self.count,
            "max_s": self.max_s,
            "buckets": {str(k): v for k, v in self.buckets.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LatencyHistogram":
        hist = cls()
        hist.count = int(data["count"])
        hist.max_s = float(data["max_s"])
        hist.buckets = {int(k): int(v) for k, v in data["buckets"].items()}
        return hist


# ---------------------------------------------------------------------------
# Client sessions
# ---------------------------------------------------------------------------
async def _counter_session(
    cluster: RuntimeCluster,
    client_id: int,
    stop_at: float,
    op_timeout_s: float,
    hist: LatencyHistogram,
    failures: Counter,
    retries: Counter,
    rng: random.Random,
) -> None:
    """One closed-loop client driving counter increments (with retry)."""
    loop = asyncio.get_running_loop()
    pids = sorted(cluster.nodes)
    target = pids[client_id % len(pids)]

    def live_target(current: int) -> int:
        node = cluster.nodes.get(current)
        if node is not None and not node.crashed:
            return current
        # The kill probe took our target down: fail over to another node,
        # like a real client re-resolving its endpoint.
        return next((p for p in pids if not cluster.nodes[p].crashed), current)

    while loop.time() < stop_at:
        target = live_target(target)
        node = cluster.nodes.get(target)
        if node is None or node.crashed:
            await asyncio.sleep(0.01)
            continue
        t0 = loop.time()
        attempt = 0
        while True:
            service = cluster.nodes[target].service("counters")
            future: asyncio.Future = loop.create_future()

            def complete(outcome: Any, future: asyncio.Future = future) -> None:
                if not future.done():
                    future.set_result(outcome)

            op_id = service.increment(complete)
            try:
                outcome = await asyncio.wait_for(future, timeout=op_timeout_s)
            except asyncio.TimeoutError:
                failures["timeout"] += 1
                break
            if outcome.success:
                hist.record(loop.time() - t0)
                if attempt:
                    retries["ops_recovered"] += 1
                break
            # The service distinguishes the two abort shapes for us:
            # increment() returning None is the paper's immediate ⊥ (a
            # reconfiguration is in progress, nothing was sent); a started
            # op that still aborted lost its quorum mid-flight.
            kind = "abort_reconfig" if op_id is None else "abort_quorum"
            if attempt >= MAX_OP_RETRIES or loop.time() >= stop_at:
                failures[kind] += 1
                break
            attempt += 1
            retries["attempts"] += 1
            # Jittered linear backoff in ticks: reconfiguration windows are
            # a few protocol rounds, and de-synchronizing the retrying
            # cohort avoids an abort stampede the instant the window ends.
            await asyncio.sleep(
                cluster.tick_seconds * attempt * (0.5 + rng.random())
            )
            target = live_target(target)


async def _smr_session(
    cluster: RuntimeCluster,
    client_id: int,
    stop_at: float,
    op_timeout_s: float,
    hist: LatencyHistogram,
    failures: Counter,
    applied_futures: Dict[Any, asyncio.Future],
) -> None:
    """One closed-loop client driving totally-ordered SMR commands."""
    loop = asyncio.get_running_loop()
    pids = sorted(cluster.nodes)
    target = pids[client_id % len(pids)]
    seq = 0
    while loop.time() < stop_at:
        node = cluster.nodes.get(target)
        if node is None or node.crashed:
            target = next(
                (p for p in pids if not cluster.nodes[p].crashed), target
            )
            await asyncio.sleep(0.01)
            continue
        service = node.service("vs")
        command = ("loadgen", client_id, seq)
        seq += 1
        future = loop.create_future()
        applied_futures[command] = future
        t0 = loop.time()
        service.submit(command)
        try:
            await asyncio.wait_for(future, timeout=op_timeout_s)
            hist.record(loop.time() - t0)
        except asyncio.TimeoutError:
            failures["timeout"] += 1
        finally:
            applied_futures.pop(command, None)


def _install_smr_taps(
    cluster: RuntimeCluster, applied_futures: Dict[Any, asyncio.Future]
) -> None:
    """Resolve a command's future when any replica applies it.

    Total order means first application == delivery; resolving on the first
    replica to apply (rather than specifically the submitter) measures
    commit latency without assuming which replica reports first.
    """

    def tap(rnd: Any, view: Any, commands: List[Any]) -> None:
        for command in commands:
            future = applied_futures.get(command)
            if future is not None and not future.done():
                future.set_result(True)

    for node in cluster.nodes.values():
        node.service("vs").delivery_callback = tap


# ---------------------------------------------------------------------------
# The kill/recover probe
# ---------------------------------------------------------------------------
async def _kill_probe(
    cluster: RuntimeCluster, victim: int, timeout_s: float
) -> Dict[str, Any]:
    """Stop-fail *victim*, time suspicion + rejoin, report both."""
    loop = asyncio.get_running_loop()
    report: Dict[str, Any] = {"victim": victim}

    t0 = loop.time()
    cluster.kill(victim)
    deadline = t0 + timeout_s
    suspected_s = None
    while loop.time() < deadline:
        survivors = [n for n in cluster.alive_nodes() if n.pid != victim]
        if survivors and all(
            victim not in node.trusted() for node in survivors
        ):
            suspected_s = loop.time() - t0
            break
        await asyncio.sleep(0.05)
    report["suspected_by_all_s"] = (
        round(suspected_s, 3) if suspected_s is not None else None
    )

    t0 = loop.time()
    await cluster.restart(victim)
    rejoined_s = None
    deadline = t0 + timeout_s
    while loop.time() < deadline:
        node = cluster.nodes[victim]
        if node.scheme.is_participant() and cluster.is_converged():
            rejoined_s = loop.time() - t0
            break
        await asyncio.sleep(0.05)
    report["rejoined_s"] = round(rejoined_s, 3) if rejoined_s is not None else None
    return report


# ---------------------------------------------------------------------------
# One loadgen run (one process, one cluster)
# ---------------------------------------------------------------------------
async def run_loadgen(
    n: int = 8,
    clients: int = 16,
    duration_s: float = 5.0,
    mode: str = "counters",
    seed: int = 7,
    tick_seconds: Union[float, str] = DEFAULT_TICK_SECONDS,
    kill_probe: bool = False,
    bootstrap_timeout_s: float = 60.0,
    op_timeout_s: float = 10.0,
) -> Dict[str, Any]:
    """Boot a cluster, drive it with *clients* sessions, return the report."""
    if mode not in ("counters", "smr"):
        raise ValueError(f"unknown loadgen mode {mode!r}")
    stack = "counters" if mode == "counters" else "vs_smr"
    loop = asyncio.get_running_loop()
    wall_start = time.perf_counter()
    async with RuntimeCluster(
        n=n, seed=seed, stack=stack, tick_seconds=tick_seconds
    ) as cluster:
        t0 = loop.time()
        if not await cluster.wait_converged(timeout_s=bootstrap_timeout_s):
            return {
                "mode": mode,
                "n": n,
                "error": f"cluster failed to converge within {bootstrap_timeout_s}s",
                "statistics": cluster.statistics(),
            }
        bootstrap_s = loop.time() - t0

        hist = LatencyHistogram()
        failures: Counter = Counter()
        retries: Counter = Counter()
        stop_at = loop.time() + duration_s
        if mode == "counters":
            sessions = [
                _counter_session(
                    cluster, c, stop_at, op_timeout_s, hist, failures,
                    retries, random.Random((seed << 16) ^ c),
                )
                for c in range(clients)
            ]
        else:
            applied_futures: Dict[Any, asyncio.Future] = {}
            _install_smr_taps(cluster, applied_futures)
            sessions = [
                _smr_session(
                    cluster, c, stop_at, op_timeout_s, hist, failures,
                    applied_futures,
                )
                for c in range(clients)
            ]

        probe_task = None
        if kill_probe:
            # Fire mid-run against the highest pid: never the coordinator
            # (coordinator selection favors the minimum trusted id), so load
            # keeps flowing while the membership machinery works.
            async def delayed_probe() -> Dict[str, Any]:
                await asyncio.sleep(duration_s / 2)
                return await _kill_probe(
                    cluster, victim=n - 1, timeout_s=bootstrap_timeout_s
                )

            probe_task = asyncio.ensure_future(delayed_probe())

        await asyncio.gather(*sessions)
        probe_report = await probe_task if probe_task is not None else None

        completed = hist.count
        report = {
            "mode": mode,
            "n": n,
            "clients": clients,
            "seed": seed,
            "tick_seconds": cluster.tick_seconds,
            "auto_tick": cluster.auto_tick,
            "duration_s": duration_s,
            "wall_s": round(time.perf_counter() - wall_start, 3),
            "bootstrap_s": round(bootstrap_s, 3),
            "ops_completed": completed,
            "ops_failed": sum(failures.values()),
            "failures": dict(sorted(failures.items())),
            "failure_kinds": sorted(failures),
            "retries": dict(sorted(retries.items())),
            "throughput_ops_s": round(completed / duration_s, 1),
            "latency": hist.summary(),
            "latency_histogram": hist.to_dict(),
            "kill_probe": probe_report,
            "statistics": cluster.statistics(),
        }
        return report


# ---------------------------------------------------------------------------
# Multi-process drivers: K shared-nothing worker cells
# ---------------------------------------------------------------------------
def _worker_main(conn: Any, kwargs: Dict[str, Any]) -> None:
    """Worker-process entry: run one loadgen cell, ship the report back."""
    try:
        report = asyncio.run(run_loadgen(**kwargs))
    except Exception as exc:  # noqa: BLE001 - report, don't hang the parent
        report = {
            "mode": kwargs.get("mode"),
            "error": f"worker crashed: {type(exc).__name__}: {exc}",
        }
    try:
        conn.send(report)
    finally:
        conn.close()


def _merge_worker_reports(
    reports: List[Dict[str, Any]], duration_s: float
) -> Dict[str, Any]:
    """Merge K worker-cell reports into one `meta.sweep`-style report."""
    errors = [r["error"] for r in reports if "error" in r]
    if errors:
        return {"error": "; ".join(errors), "per_worker": reports}
    hist = LatencyHistogram()
    failures: Counter = Counter()
    retries: Counter = Counter()
    wire: Counter = Counter()
    per_worker = []
    for index, report in enumerate(reports):
        hist.merge(LatencyHistogram.from_dict(report["latency_histogram"]))
        failures.update(report["failures"])
        retries.update(report["retries"])
        for key in (
            "sent_datagrams", "delivered_datagrams", "dropped_datagrams",
            "quarantined_datagrams", "delivery_errors",
            "sent_frames", "delivered_frames", "dropped_frames",
        ):
            wire[key] += report["statistics"].get(key, 0)
        per_worker.append({
            "worker": index,
            "clients": report["clients"],
            "seed": report["seed"],
            "ops_completed": report["ops_completed"],
            "ops_failed": report["ops_failed"],
            "throughput_ops_s": report["throughput_ops_s"],
            "p50_ms": report["latency"]["p50_ms"],
            "bootstrap_s": report["bootstrap_s"],
        })
    first = reports[0]
    completed = hist.count
    return {
        "mode": first["mode"],
        "n": first["n"],
        "clients": sum(r["clients"] for r in reports),
        "workers": len(reports),
        "seed": first["seed"],
        "tick_seconds": first["tick_seconds"],
        "auto_tick": first["auto_tick"],
        "duration_s": duration_s,
        "ops_completed": completed,
        "ops_failed": sum(failures.values()),
        "failures": dict(sorted(failures.items())),
        "failure_kinds": sorted(failures),
        "retries": dict(sorted(retries.items())),
        "throughput_ops_s": round(completed / duration_s, 1),
        "latency": hist.summary(),
        "latency_histogram": hist.to_dict(),
        "kill_probe": first.get("kill_probe"),
        "per_worker": per_worker,
        "statistics": dict(wire),
    }


def run_loadgen_workers(
    workers: int,
    n: int = 8,
    clients: int = 16,
    duration_s: float = 5.0,
    mode: str = "counters",
    seed: int = 7,
    tick_seconds: Union[float, str] = DEFAULT_TICK_SECONDS,
    kill_probe: bool = False,
    bootstrap_timeout_s: float = 60.0,
    op_timeout_s: float = 10.0,
) -> Dict[str, Any]:
    """Drive *clients* total sessions split across *workers* processes.

    Each worker is a shared-nothing cell: its own forked process, its own
    asyncio loop, its own full n-node cluster, its own client cohort (the
    clients call node services in-process, so offered load scales past one
    event loop only by scaling whole cells).  Worker seeds are distinct, so
    the cells are independent trials; the kill probe (if any) runs in cell
    0 only.  Reports merge exactly via the bucketed histograms.
    """
    if workers <= 1:
        return asyncio.run(run_loadgen(
            n=n, clients=clients, duration_s=duration_s, mode=mode,
            seed=seed, tick_seconds=tick_seconds, kill_probe=kill_probe,
            bootstrap_timeout_s=bootstrap_timeout_s,
            op_timeout_s=op_timeout_s,
        ))
    context = multiprocessing.get_context("fork")
    share = [
        clients // workers + (1 if i < clients % workers else 0)
        for i in range(workers)
    ]
    procs = []
    for index, cohort in enumerate(share):
        if cohort == 0:
            continue
        recv_end, send_end = context.Pipe(duplex=False)
        kwargs = dict(
            n=n, clients=cohort, duration_s=duration_s, mode=mode,
            seed=seed + 1009 * index, tick_seconds=tick_seconds,
            kill_probe=kill_probe and index == 0,
            bootstrap_timeout_s=bootstrap_timeout_s,
            op_timeout_s=op_timeout_s,
        )
        proc = context.Process(target=_worker_main, args=(send_end, kwargs))
        proc.start()
        send_end.close()
        procs.append((proc, recv_end))
    reports = []
    for proc, recv_end in procs:
        try:
            reports.append(recv_end.recv())
        except EOFError:
            reports.append({"error": f"worker pid {proc.pid} died silently"})
        recv_end.close()
        proc.join()
    return _merge_worker_reports(reports, duration_s)


# ---------------------------------------------------------------------------
# Suite: modes + optional clients-axis sweep + baseline gate
# ---------------------------------------------------------------------------
def _auto_workers(clients: int) -> int:
    """Default worker count for a sweep point: one cell per 32 clients."""
    return min(8, max(1, clients // 32))


def run_suite(args: argparse.Namespace) -> Dict[str, Any]:
    """Run every requested mode (fresh cluster per mode), then the sweep."""
    modes = ["counters", "smr"] if args.mode == "both" else [args.mode]
    results: Dict[str, Any] = {
        "bench": "loadgen",
        "tag": args.tag,
        "modes": {},
    }
    for mode in modes:
        results["modes"][mode] = run_loadgen_workers(
            workers=args.workers,
            n=args.n,
            clients=args.clients,
            duration_s=args.duration,
            mode=mode,
            seed=args.seed,
            tick_seconds=args.tick,
            kill_probe=args.kill_probe,
        )
    if args.sweep_clients:
        points = []
        for clients in args.sweep_clients:
            workers = _auto_workers(clients)
            print(
                f"[loadgen] sweep point: clients={clients} workers={workers}",
                flush=True,
            )
            points.append(run_loadgen_workers(
                workers=workers,
                n=args.n,
                clients=clients,
                duration_s=args.duration,
                mode="counters",
                seed=args.seed,
                tick_seconds=args.tick,
                kill_probe=False,
            ))
        results["sweep"] = {
            "meta": {
                "axis": "clients",
                "mode": "counters",
                "workers_rule": "min(8, max(1, clients // 32))",
            },
            "points": points,
        }
    return results


def _check_baseline(results: Dict[str, Any], baseline_path: str) -> int:
    """Soft throughput gate: counters ops/s must stay within BASELINE_FLOOR."""
    with open(baseline_path, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    reference = baseline.get("counters_ops_s")
    if reference is None:
        reference = (
            baseline.get("modes", {}).get("counters", {})
            .get("throughput_ops_s")
        )
    if not reference:
        print(f"[loadgen] baseline {baseline_path} has no counters ops/s")
        return 2
    current = results["modes"].get("counters", {}).get("throughput_ops_s")
    if current is None:
        print("[loadgen] gate needs a counters-mode run")
        return 2
    floor = reference * BASELINE_FLOOR
    if current < floor:
        print(
            f"[loadgen] GATE FAILED: counters {current} ops/s is below "
            f"{floor:.1f} ({BASELINE_FLOOR:.0%} of baseline {reference})"
        )
        return 1
    print(
        f"[loadgen] gate ok: counters {current} ops/s >= {floor:.1f} "
        f"({BASELINE_FLOOR:.0%} of baseline {reference})"
    )
    return 0


def _parse_tick(text: str) -> Union[float, str]:
    if text == "auto":
        return "auto"
    return float(text)


def _parse_sweep(text: str) -> List[int]:
    return [int(item) for item in text.split(",") if item.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.loadgen",
        description="Closed-loop load generator for the live asyncio cluster.",
    )
    parser.add_argument("--n", type=int, default=8, help="cluster size")
    parser.add_argument("--clients", type=int, default=16,
                        help="concurrent closed-loop client sessions (total)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes; each hosts its own cluster "
                             "cell and a share of the clients")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="measured load window per mode (seconds)")
    parser.add_argument("--mode", choices=["counters", "smr", "both"],
                        default="both")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--tick", type=_parse_tick, default=DEFAULT_TICK_SECONDS,
                        help="wall seconds per simulated-time unit, or "
                             "'auto' (bootstrap at the default, then engage "
                             "the fast tick once converged)")
    parser.add_argument("--kill-probe", action="store_true",
                        help="stop-fail one node mid-run and time recovery")
    parser.add_argument("--sweep-clients", type=_parse_sweep, default=None,
                        metavar="N,N,...",
                        help="clients-axis scaling sweep (counters mode), "
                             "e.g. 16,32,64,128,256")
    parser.add_argument("--baseline", default=None,
                        help="soft throughput gate against a checked-in "
                             "reference (benchmarks/loadgen_baseline.json)")
    parser.add_argument("--output", default="BENCH_dev_loadgen.json")
    parser.add_argument("--tag", default="dev")
    args = parser.parse_args(argv)

    results = run_suite(args)
    results["argv"] = list(argv) if argv is not None else sys.argv[1:]
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")

    failed = False
    for mode, report in results["modes"].items():
        if "error" in report:
            print(f"[loadgen] {mode}: FAILED — {report['error']}")
            failed = True
            continue
        lat = report["latency"]
        workers = report.get("workers", 1)
        print(
            f"[loadgen] {mode}: n={report['n']} clients={report['clients']} "
            f"workers={workers} "
            f"{report['throughput_ops_s']} ops/s  "
            f"p50={lat['p50_ms']}ms p95={lat['p95_ms']}ms p99={lat['p99_ms']}ms "
            f"({report['ops_completed']} ok / {report['ops_failed']} failed "
            f"{report['failures']})"
        )
        probe = report.get("kill_probe")
        if probe:
            print(
                f"[loadgen]   kill probe: pid {probe['victim']} suspected in "
                f"{probe['suspected_by_all_s']}s, rejoined in "
                f"{probe['rejoined_s']}s"
            )
    for point in results.get("sweep", {}).get("points", []):
        if "error" in point:
            print(f"[loadgen] sweep: FAILED — {point['error']}")
            failed = True
            continue
        print(
            f"[loadgen] sweep clients={point['clients']} "
            f"workers={point.get('workers', 1)}: "
            f"{point['throughput_ops_s']} ops/s "
            f"p50={point['latency']['p50_ms']}ms "
            f"({point['ops_completed']} ok / {point['ops_failed']} failed)"
        )
    print(f"[loadgen] wrote {args.output}")
    if failed:
        return 1
    if args.baseline:
        return _check_baseline(results, args.baseline)
    return 0


if __name__ == "__main__":
    sys.exit(main())
