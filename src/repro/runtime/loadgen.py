"""Closed-loop load generator for the live runtime cluster.

``python -m repro.runtime.loadgen`` boots an n-node asyncio cluster on
localhost, waits for self-organized convergence, then drives it with K
concurrent closed-loop client sessions — each session issues one operation,
awaits its completion, and immediately issues the next.  Two workload
modes, matching the paper's two application layers:

``counters``
    Each operation is a two-phase quorum counter increment
    (:meth:`repro.counters.service.CounterService.increment`, Algorithms
    4.4/4.5); completion is the service's callback firing after the write
    quorum acknowledges.
``smr``
    Each operation is a state-machine command submitted to the virtually
    synchronous SMR layer (:meth:`repro.vs.virtual_synchrony
    .VirtualSynchronyService.submit`, Algorithm 4.7); completion is the
    submitting replica *applying* the command — i.e. full total-order
    delivery, observed through ``delivery_callback``.

Latency is measured per operation (submit → completion callback) on the
event-loop clock; the report carries throughput plus p50/p95/p99
percentiles.  An optional convergence-after-kill probe stop-fails one
non-coordinator node mid-run and measures (a) how long until every
surviving failure detector stops trusting it and (b) how long until a
restarted joiner with the same pid is a participant again.

Results are written as JSON (default ``BENCH_pr8.json``), keyed per mode,
with the cluster and wire statistics embedded.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from typing import Any, Dict, List, Optional

from repro.runtime.cluster import RuntimeCluster
from repro.runtime.transport import DEFAULT_TICK_SECONDS


def percentile(samples: List[float], fraction: float) -> Optional[float]:
    """The *fraction* quantile of *samples* (nearest-rank; None when empty)."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


def _latency_summary(latencies_s: List[float]) -> Dict[str, Any]:
    return {
        "count": len(latencies_s),
        "p50_ms": _ms(percentile(latencies_s, 0.50)),
        "p95_ms": _ms(percentile(latencies_s, 0.95)),
        "p99_ms": _ms(percentile(latencies_s, 0.99)),
        "max_ms": _ms(max(latencies_s)) if latencies_s else None,
    }


def _ms(seconds: Optional[float]) -> Optional[float]:
    return None if seconds is None else round(seconds * 1000.0, 3)


# ---------------------------------------------------------------------------
# Client sessions
# ---------------------------------------------------------------------------
async def _counter_session(
    cluster: RuntimeCluster,
    client_id: int,
    stop_at: float,
    op_timeout_s: float,
    latencies: List[float],
    failures: List[str],
) -> None:
    """One closed-loop client driving counter increments."""
    loop = asyncio.get_running_loop()
    pids = sorted(cluster.nodes)
    target = pids[client_id % len(pids)]
    while loop.time() < stop_at:
        node = cluster.nodes.get(target)
        if node is None or node.crashed:
            # The kill probe took our target down: fail over to another node,
            # like a real client re-resolving its endpoint.
            target = next(
                (p for p in pids if not cluster.nodes[p].crashed), target
            )
            await asyncio.sleep(0.01)
            continue
        service = node.service("counters")
        future: asyncio.Future = loop.create_future()

        def complete(outcome: Any, future: asyncio.Future = future) -> None:
            if not future.done():
                future.set_result(outcome)

        t0 = loop.time()
        service.increment(complete)
        try:
            outcome = await asyncio.wait_for(future, timeout=op_timeout_s)
        except asyncio.TimeoutError:
            failures.append("timeout")
            continue
        if outcome.success:
            latencies.append(loop.time() - t0)
        else:
            failures.append("aborted")
            # Reconfiguration in progress: back off one tick instead of
            # hammering the abort path.
            await asyncio.sleep(cluster.tick_seconds)


async def _smr_session(
    cluster: RuntimeCluster,
    client_id: int,
    stop_at: float,
    op_timeout_s: float,
    latencies: List[float],
    failures: List[str],
    applied_futures: Dict[Any, asyncio.Future],
) -> None:
    """One closed-loop client driving totally-ordered SMR commands."""
    loop = asyncio.get_running_loop()
    pids = sorted(cluster.nodes)
    target = pids[client_id % len(pids)]
    seq = 0
    while loop.time() < stop_at:
        node = cluster.nodes.get(target)
        if node is None or node.crashed:
            target = next(
                (p for p in pids if not cluster.nodes[p].crashed), target
            )
            await asyncio.sleep(0.01)
            continue
        service = node.service("vs")
        command = ("loadgen", client_id, seq)
        seq += 1
        future = loop.create_future()
        applied_futures[command] = future
        t0 = loop.time()
        service.submit(command)
        try:
            await asyncio.wait_for(future, timeout=op_timeout_s)
            latencies.append(loop.time() - t0)
        except asyncio.TimeoutError:
            failures.append("timeout")
        finally:
            applied_futures.pop(command, None)


def _install_smr_taps(
    cluster: RuntimeCluster, applied_futures: Dict[Any, asyncio.Future]
) -> None:
    """Resolve a command's future when any replica applies it.

    Total order means first application == delivery; resolving on the first
    replica to apply (rather than specifically the submitter) measures
    commit latency without assuming which replica reports first.
    """

    def tap(rnd: Any, view: Any, commands: List[Any]) -> None:
        for command in commands:
            future = applied_futures.get(command)
            if future is not None and not future.done():
                future.set_result(True)

    for node in cluster.nodes.values():
        node.service("vs").delivery_callback = tap


# ---------------------------------------------------------------------------
# The kill/recover probe
# ---------------------------------------------------------------------------
async def _kill_probe(
    cluster: RuntimeCluster, victim: int, timeout_s: float
) -> Dict[str, Any]:
    """Stop-fail *victim*, time suspicion + rejoin, report both."""
    loop = asyncio.get_running_loop()
    report: Dict[str, Any] = {"victim": victim}

    t0 = loop.time()
    cluster.kill(victim)
    deadline = t0 + timeout_s
    suspected_s = None
    while loop.time() < deadline:
        survivors = [n for n in cluster.alive_nodes() if n.pid != victim]
        if survivors and all(
            victim not in node.trusted() for node in survivors
        ):
            suspected_s = loop.time() - t0
            break
        await asyncio.sleep(0.05)
    report["suspected_by_all_s"] = (
        round(suspected_s, 3) if suspected_s is not None else None
    )

    t0 = loop.time()
    await cluster.restart(victim)
    rejoined_s = None
    deadline = t0 + timeout_s
    while loop.time() < deadline:
        node = cluster.nodes[victim]
        if node.scheme.is_participant() and cluster.is_converged():
            rejoined_s = loop.time() - t0
            break
        await asyncio.sleep(0.05)
    report["rejoined_s"] = round(rejoined_s, 3) if rejoined_s is not None else None
    return report


# ---------------------------------------------------------------------------
# One loadgen run
# ---------------------------------------------------------------------------
async def run_loadgen(
    n: int = 8,
    clients: int = 16,
    duration_s: float = 5.0,
    mode: str = "counters",
    seed: int = 7,
    tick_seconds: float = DEFAULT_TICK_SECONDS,
    kill_probe: bool = False,
    bootstrap_timeout_s: float = 60.0,
    op_timeout_s: float = 10.0,
) -> Dict[str, Any]:
    """Boot a cluster, drive it with *clients* sessions, return the report."""
    if mode not in ("counters", "smr"):
        raise ValueError(f"unknown loadgen mode {mode!r}")
    stack = "counters" if mode == "counters" else "vs_smr"
    loop = asyncio.get_running_loop()
    wall_start = time.perf_counter()
    async with RuntimeCluster(
        n=n, seed=seed, stack=stack, tick_seconds=tick_seconds
    ) as cluster:
        t0 = loop.time()
        if not await cluster.wait_converged(timeout_s=bootstrap_timeout_s):
            return {
                "mode": mode,
                "n": n,
                "error": f"cluster failed to converge within {bootstrap_timeout_s}s",
                "statistics": cluster.statistics(),
            }
        bootstrap_s = loop.time() - t0

        latencies: List[float] = []
        failures: List[str] = []
        stop_at = loop.time() + duration_s
        if mode == "counters":
            sessions = [
                _counter_session(
                    cluster, c, stop_at, op_timeout_s, latencies, failures
                )
                for c in range(clients)
            ]
        else:
            applied_futures: Dict[Any, asyncio.Future] = {}
            _install_smr_taps(cluster, applied_futures)
            sessions = [
                _smr_session(
                    cluster, c, stop_at, op_timeout_s, latencies, failures,
                    applied_futures,
                )
                for c in range(clients)
            ]

        probe_task = None
        if kill_probe:
            # Fire mid-run against the highest pid: never the coordinator
            # (coordinator selection favors the minimum trusted id), so load
            # keeps flowing while the membership machinery works.
            async def delayed_probe() -> Dict[str, Any]:
                await asyncio.sleep(duration_s / 2)
                return await _kill_probe(
                    cluster, victim=n - 1, timeout_s=bootstrap_timeout_s
                )

            probe_task = asyncio.ensure_future(delayed_probe())

        await asyncio.gather(*sessions)
        probe_report = await probe_task if probe_task is not None else None

        measured_s = duration_s
        completed = len(latencies)
        report = {
            "mode": mode,
            "n": n,
            "clients": clients,
            "seed": seed,
            "tick_seconds": tick_seconds,
            "duration_s": duration_s,
            "wall_s": round(time.perf_counter() - wall_start, 3),
            "bootstrap_s": round(bootstrap_s, 3),
            "ops_completed": completed,
            "ops_failed": len(failures),
            "failure_kinds": sorted(set(failures)),
            "throughput_ops_s": round(completed / measured_s, 1),
            "latency": _latency_summary(latencies),
            "kill_probe": probe_report,
            "statistics": cluster.statistics(),
        }
        return report


async def run_suite(args: argparse.Namespace) -> Dict[str, Any]:
    """Run every requested mode sequentially (fresh cluster per mode)."""
    modes = ["counters", "smr"] if args.mode == "both" else [args.mode]
    results: Dict[str, Any] = {
        "bench": "loadgen",
        "tag": args.tag,
        "modes": {},
    }
    for mode in modes:
        results["modes"][mode] = await run_loadgen(
            n=args.n,
            clients=args.clients,
            duration_s=args.duration,
            mode=mode,
            seed=args.seed,
            tick_seconds=args.tick,
            kill_probe=args.kill_probe,
        )
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.loadgen",
        description="Closed-loop load generator for the live asyncio cluster.",
    )
    parser.add_argument("--n", type=int, default=8, help="cluster size")
    parser.add_argument("--clients", type=int, default=16,
                        help="concurrent closed-loop client sessions")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="measured load window per mode (seconds)")
    parser.add_argument("--mode", choices=["counters", "smr", "both"],
                        default="both")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--tick", type=float, default=DEFAULT_TICK_SECONDS,
                        help="wall seconds per simulated-time unit")
    parser.add_argument("--kill-probe", action="store_true",
                        help="stop-fail one node mid-run and time recovery")
    parser.add_argument("--output", default="BENCH_pr8.json")
    parser.add_argument("--tag", default="pr8")
    args = parser.parse_args(argv)

    results = asyncio.run(run_suite(args))
    results["argv"] = list(argv) if argv is not None else sys.argv[1:]
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")

    failed = False
    for mode, report in results["modes"].items():
        if "error" in report:
            print(f"[loadgen] {mode}: FAILED — {report['error']}")
            failed = True
            continue
        lat = report["latency"]
        print(
            f"[loadgen] {mode}: n={report['n']} clients={report['clients']} "
            f"{report['throughput_ops_s']} ops/s  "
            f"p50={lat['p50_ms']}ms p95={lat['p95_ms']}ms p99={lat['p99_ms']}ms "
            f"({report['ops_completed']} ok / {report['ops_failed']} failed)"
        )
        probe = report.get("kill_probe")
        if probe:
            print(
                f"[loadgen]   kill probe: pid {probe['victim']} suspected in "
                f"{probe['suspected_by_all_s']}s, rejoined in "
                f"{probe['rejoined_s']}s"
            )
    print(f"[loadgen] wrote {args.output}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
