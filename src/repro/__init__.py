"""Self-stabilizing reconfiguration for dynamic distributed systems.

This package reproduces the system described in *"Self-Stabilizing
Reconfiguration"* (Dolev, Georgiou, Marcoullis, Schiller — MIDDLEWARE 2016).
It provides:

* a deterministic discrete-event simulation substrate for asynchronous
  message-passing systems with bounded, lossy, duplicating, reordering
  channels (:mod:`repro.sim`),
* self-stabilizing data links and an (N, Theta)-failure detector
  (:mod:`repro.datalink`, :mod:`repro.failure_detector`),
* the self-stabilizing reconfiguration scheme itself — recSA, recMA and the
  joining mechanism (:mod:`repro.core`),
* the applications built on top of the scheme: bounded labels, practically
  unbounded counters, virtually-synchronous state-machine replication and a
  shared-memory emulation (:mod:`repro.labels`, :mod:`repro.counters`,
  :mod:`repro.vs`),
* non-self-stabilizing baselines used for comparison
  (:mod:`repro.baselines`), and
* workload generators and analysis helpers used by the benchmark harness
  (:mod:`repro.workloads`, :mod:`repro.analysis`).

Quickstart
----------

>>> from repro import build_cluster
>>> cluster = build_cluster(n=5, seed=1)
>>> cluster.run(until=200.0)
>>> cluster.agreed_configuration() is not None
True
"""

from repro.common.types import ProcessId, Configuration, NOT_PARTICIPANT
from repro.sim.simulator import Simulator
from repro.sim.config import ClusterConfig, fast_sim, paper_faithful, preset
from repro.sim.stacks import StackProfile, get_stack, stack
from repro.sim.cluster import Cluster, ClusterNode, build_cluster

__all__ = [
    "ProcessId",
    "Configuration",
    "NOT_PARTICIPANT",
    "Simulator",
    "ClusterConfig",
    "fast_sim",
    "paper_faithful",
    "preset",
    "StackProfile",
    "get_stack",
    "stack",
    "Cluster",
    "ClusterNode",
    "build_cluster",
    "__version__",
]

__version__ = "1.0.0"
