"""(N, Theta)-failure detector (Section 2 of the paper)."""

from repro.failure_detector.ntheta import NThetaFailureDetector, FailureDetectorView

__all__ = ["NThetaFailureDetector", "FailureDetectorView"]
