"""The (N, Theta)-failure detector.

Section 2 of the paper: every processor ``pi`` keeps an ordered heartbeat-count
vector ``nonCrashed`` with one entry per processor that exchanges the token
with ``pi``.  Whenever ``pi`` receives the token from ``pj`` it sets ``pj``'s
count to zero and increments every other count by one.  Processors are then
ranked by how recently they communicated; a crashed processor's count grows
without bound, opening an ever-expanding *gap* in the sorted counts.  The
position of the gap yields an estimate ``ni <= N`` of the number of active
processors, and everything ranked past ``min(ni, N)`` — or past the gap — is
suspected.

The detector exposes:

* ``trusted()`` — the set of processors currently trusted (including self),
* ``estimate_active()`` — the gap-based estimate of the active count,
* ``view()`` — an immutable snapshot shipped inside recSA messages (the
  ``FD[]`` field of Algorithm 3.1).
"""

from __future__ import annotations

from collections.abc import MutableMapping
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.common.types import ProcessId


class _CountsView(MutableMapping):
    """Keyed, writable view over the offset-encoded heartbeat vector.

    The detector stores each processor's count as ``raw[pid] + shift`` so a
    heartbeat can "increment everyone else" by bumping the single shared
    ``shift`` in O(1) instead of walking the vector (Θ(n) per received
    token, the second-hottest cost of an n=128 bootstrap).  This view keeps
    the public ``counts`` surface a real mapping of *effective* counts:
    reads decode, writes encode, so fault-injection atoms that assign
    ``counts[pid] = value`` and diagnostics that copy the vector behave
    exactly as they did when ``counts`` was a plain dict — including the
    seed behaviour that a direct external write does *not* invalidate the
    ``trusted()`` cache (the corrupted value becomes visible at the next
    vector update, as before).
    """

    __slots__ = ("_fd",)

    def __init__(self, fd: "NThetaFailureDetector") -> None:
        self._fd = fd

    def __getitem__(self, pid: ProcessId) -> int:
        fd = self._fd
        return fd._raw[pid] + fd._shift

    def __setitem__(self, pid: ProcessId, value: int) -> None:
        fd = self._fd
        fd._raw[pid] = value - fd._shift

    def __delitem__(self, pid: ProcessId) -> None:
        del self._fd._raw[pid]

    def __iter__(self) -> Iterator[ProcessId]:
        return iter(self._fd._raw)

    def __len__(self) -> int:
        return len(self._fd._raw)

    def __contains__(self, pid: object) -> bool:
        return pid in self._fd._raw

    def __repr__(self) -> str:
        return f"_CountsView({dict(self)!r})"


@dataclass(frozen=True)
class FailureDetectorView:
    """Immutable snapshot of a failure detector's trusted set.

    ``trusted`` always contains the owner.  The view is what travels inside
    protocol messages (the paper's ``FD[i]``), so it must be hashable and
    comparable.
    """

    owner: ProcessId
    trusted: FrozenSet[ProcessId]

    def __contains__(self, pid: ProcessId) -> bool:
        return pid in self.trusted

    def __iter__(self):
        return iter(sorted(self.trusted))

    def __len__(self) -> int:
        return len(self.trusted)


class NThetaFailureDetector:
    """Heartbeat-count based failure detector with gap estimation.

    Parameters
    ----------
    pid:
        Owning processor.
    upper_bound_n:
        The known upper bound ``N`` on the number of simultaneously active
        processors.
    gap_factor:
        Multiplicative threshold used to detect the gap in the sorted
        heartbeat counts: a processor is suspected when its count exceeds
        ``gap_factor * (median count of better-ranked processors) +
        gap_slack``.
    gap_slack:
        Additive slack so that small absolute differences between freshly
        started processors do not cause suspicion.
    """

    #: Only every k-th heartbeat of an uninterrupted run from the same
    #: already-freshest sender ages the vector (see :meth:`heartbeat`).
    INFLATION_CLAMP = 4

    def __init__(
        self,
        pid: ProcessId,
        upper_bound_n: int,
        gap_factor: float = 4.0,
        gap_slack: int = 16,
    ) -> None:
        self.pid = pid
        self.upper_bound_n = upper_bound_n
        self.gap_factor = gap_factor
        self.gap_slack = gap_slack
        # The paper's nonCrashed heartbeat-count vector, offset-encoded:
        # the effective count of ``pid`` is ``_raw[pid] + _shift``.  A
        # heartbeat ages every other processor by bumping ``_shift`` once
        # (O(1)) instead of incrementing each entry (Θ(n)); ``counts`` is a
        # mapping view presenting the effective values.
        self._raw: Dict[ProcessId, int] = {}
        self._shift = 0
        self.counts: MutableMapping = _CountsView(self)
        self.heartbeats_received = 0
        # Anti-inflation clamp state: length of the current run of
        # heartbeats from a sender that was already the freshest entry.
        self._zero_streak = 0
        # ``trusted()`` is a pure function of ``counts`` and is queried many
        # times between heartbeats (every convergence-predicate evaluation
        # walks it); the result is cached until the vector next changes.
        self._counts_version = 0
        self._trusted_cache_version = -1
        self._trusted_cache: FrozenSet[ProcessId] = frozenset({pid})

    # ------------------------------------------------------------ heartbeats
    def heartbeat(self, sender: ProcessId) -> None:
        """Record a token exchange (heartbeat) from *sender*.

        Sets the sender's count to zero and increments every other known
        processor's count by one — exactly the update rule of Section 2.

        Inflation clamp: a run of heartbeats from the sender that is
        *already* the freshest entry (count zero) carries almost no new
        ordering information, so only every
        ``INFLATION_CLAMP``-th heartbeat of such a run ages the other
        processors.  Without this, a Byzantine processor spamming junk
        packets would ratchet every honest peer's count past the suspicion
        gap between their legitimate heartbeats — one traitor could
        permanently poison ``trusted()``.  Interleaved honest traffic resets
        the run, so multi-peer operation is unaffected; and when a single
        live peer really is the only traffic source (everyone else crashed),
        aging still proceeds at the reduced rate, preserving crash
        detection.
        """
        if sender == self.pid:
            return
        self.heartbeats_received += 1
        raw = self._raw
        entry = raw.get(sender)
        if entry is not None and entry + self._shift == 0:
            self._zero_streak += 1
            if self._zero_streak % self.INFLATION_CLAMP != 0:
                return
        else:
            self._zero_streak = 0
        self._counts_version += 1
        # Age everyone by one through the shared shift, then pin the sender
        # back to an effective count of zero — O(1) for any vector size.
        self._shift += 1
        raw[sender] = -self._shift

    def forget(self, pid: ProcessId) -> None:
        """Drop a processor from the vector (used when links are torn down)."""
        self._counts_version += 1
        self._raw.pop(pid, None)

    def known(self) -> FrozenSet[ProcessId]:
        """Every processor that has ever exchanged a token with the owner."""
        return frozenset(self._raw) | {self.pid}

    # -------------------------------------------------------------- ranking
    def ranked(self) -> List[Tuple[ProcessId, int]]:
        """Processors ordered by recency of communication (best first).

        Ties are broken by identifier so the ranking is deterministic.
        """
        shift = self._shift
        return sorted(
            ((pid, raw + shift) for pid, raw in self._raw.items()),
            key=lambda item: (item[1], item[0]),
        )

    def estimate_active(self) -> int:
        """Gap-based estimate ``ni`` of the number of active processors.

        Walks the ranked vector and stops at the first entry whose count is
        "far" above the counts seen so far (the ever-expanding gap of a
        crashed processor); the number of entries before the gap — plus one
        for the owner — capped at ``N`` is the estimate.
        """
        ranked = self.ranked()
        if not ranked:
            return 1
        active = 0
        reference = 0.0
        for index, (_, count) in enumerate(ranked):
            if index == 0:
                reference = float(count)
                threshold = self.gap_factor * max(reference, 1.0) + self.gap_slack
            else:
                threshold = self.gap_factor * max(reference, 1.0) + self.gap_slack
            if count > threshold:
                break
            active += 1
            # Reference tracks the running mean of accepted counts so the
            # gap grows with the crashed processor's count, not with noise.
            reference = (reference * index + count) / (index + 1)
        return min(active + 1, self.upper_bound_n)

    def trusted(self) -> FrozenSet[ProcessId]:
        """The set of processors the owner currently trusts (including self).

        Cached between heartbeat-vector updates: the computation is pure in
        ``counts``, so the cache can never observe a stale vector.
        """
        if self._trusted_cache_version == self._counts_version:
            return self._trusted_cache
        result = self._compute_trusted()
        self._trusted_cache = result
        self._trusted_cache_version = self._counts_version
        return result

    def _compute_trusted(self) -> FrozenSet[ProcessId]:
        ranked = self.ranked()
        limit = self.estimate_active()
        trusted = {self.pid}
        reference: Optional[float] = None
        for index, (pid, count) in enumerate(ranked):
            if len(trusted) >= min(limit, self.upper_bound_n):
                # Everything ranked past the estimate is ignored (paper:
                # "we can ignore any processors that rank below the Nth
                # vector entry").
                break
            if reference is None:
                reference = float(count)
            threshold = self.gap_factor * max(reference, 1.0) + self.gap_slack
            if count > threshold:
                break
            trusted.add(pid)
            reference = (reference * index + count) / (index + 1)
        return frozenset(trusted)

    def suspects(self) -> FrozenSet[ProcessId]:
        """Processors known to the detector but not currently trusted."""
        return frozenset(self._raw) - self.trusted()

    def view(self) -> FailureDetectorView:
        """Immutable snapshot used inside protocol messages (``FD[i]``)."""
        return FailureDetectorView(owner=self.pid, trusted=self.trusted())

    # ---------------------------------------------------------- diagnostics
    def snapshot_counts(self) -> Dict[ProcessId, int]:
        """Copy of the effective heartbeat-count vector (for tests/traces)."""
        shift = self._shift
        return {pid: raw + shift for pid, raw in self._raw.items()}
