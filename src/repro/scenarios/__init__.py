"""Declarative scenario engine: specs, workloads, probes, parallel sweeps.

The experiment layer on top of the simulation stack.  A scenario is::

    ScenarioSpec(
        name="churny",
        n=5,
        stack="counters",                      # StackProfile per node
        workloads=(ChurnWorkload(...), ScrambleWorkload(at=35.0)),
        probes=(probes.converged(8_000),),
    )

and runs with ``run_scenario(spec, seed=3)`` — or, for the built-in library,
from the command line::

    python -m repro.scenarios --list
    python -m repro.scenarios --smoke
    python -m repro.scenarios partition_heal --seeds 0:8 --workers 4
"""

from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.workloads import (
    ArbitraryStateWorkload,
    ChurnWorkload,
    CrashWorkload,
    FlashJoinWorkload,
    PartitionWorkload,
    QuorumEdgeCrashWorkload,
    RegisterWriteWorkload,
    ScrambleWorkload,
    SMRCommandWorkload,
    StaleMessageWorkload,
    Workload,
)
from repro.scenarios.library import (
    available_scenarios,
    get_scenario,
    register_scenario,
)
from repro.scenarios.runner import (
    ScenarioRun,
    drive,
    execute,
    finalize,
    prepare,
    run_matrix,
    run_scenario,
)

__all__ = [
    "ScenarioSpec",
    "Workload",
    "ArbitraryStateWorkload",
    "ChurnWorkload",
    "CrashWorkload",
    "FlashJoinWorkload",
    "PartitionWorkload",
    "QuorumEdgeCrashWorkload",
    "RegisterWriteWorkload",
    "ScrambleWorkload",
    "SMRCommandWorkload",
    "StaleMessageWorkload",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
    "ScenarioRun",
    "prepare",
    "drive",
    "finalize",
    "execute",
    "run_scenario",
    "run_matrix",
]
