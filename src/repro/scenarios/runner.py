"""Scenario execution: single runs and parallel seed sweeps.

:func:`run_scenario` turns ``(spec, seed)`` into a plain, JSON-serializable
result dictionary that is a *pure function of the seed* — two runs of the
same scenario and seed produce identical dictionaries (the determinism
guarantee the test-suite pins).  Wall-clock timing and worker identity are
added only by the sweep envelope, never to the scenario result itself.

:func:`run_matrix` executes a ``scenarios × seeds`` grid.  With
``workers > 1`` the jobs are split round-robin into exactly that many chunks
and each chunk is handed to its own ``multiprocessing.Process`` — every
configured worker runs, and only ``(scenario name, seed)`` pairs cross the
process boundary (workers re-resolve specs from the registry, so probes and
workload callables never need to be pickled).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from queue import Empty
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.scenarios.spec import ScenarioSpec
from repro.sim.cluster import Cluster, build_cluster
from repro.sim.config import ClusterConfig, preset
from repro.sim.monitors import ConvergenceTracker, InvariantMonitor
from repro.analysis.probes import wait_for


@dataclass
class ScenarioRun:
    """A prepared scenario: cluster built, workloads installed, not yet run.

    Benchmarks use this to interleave their own measurements with the
    scenario engine's phases without hand-wiring any services.  ``monitor``
    and ``tracker`` are populated when the spec declares invariants /
    convergence tracking (the audit engine's certification hooks).
    """

    spec: ScenarioSpec
    seed: int
    cluster: Cluster
    monitor: Optional[InvariantMonitor] = None
    tracker: Optional[ConvergenceTracker] = None


def prepare(spec_or_name: Union[str, ScenarioSpec], seed: int = 0) -> ScenarioRun:
    """Build the cluster for a scenario and install its workloads.

    Order matters: the adversarial scheduler (if the spec names one) shapes
    the channels before any workload schedules its disturbances, and the
    monitors attach before the first event executes.
    """
    from repro.scenarios.library import get_scenario

    spec = get_scenario(spec_or_name)
    config = spec.config if isinstance(spec.config, ClusterConfig) else preset(spec.config)
    cluster = build_cluster(n=spec.n, seed=seed, config=config, stack=spec.stack)
    if spec.scheduler is not None:
        from repro.audit.schedulers import get_scheduler

        get_scheduler(spec.scheduler).install(cluster, **dict(spec.scheduler_params))
    monitor: Optional[InvariantMonitor] = None
    if spec.invariants:
        monitor = InvariantMonitor(cluster.simulator)
        for invariant in spec.invariants:
            monitor.add_invariant(
                invariant.name,
                lambda invariant=invariant: invariant(cluster),
            )
    tracker: Optional[ConvergenceTracker] = None
    if spec.track_convergence:
        tracker = ConvergenceTracker(
            cluster.simulator, cluster.is_converged, name="cluster_converged"
        )
    for workload in spec.workloads:
        workload.install(cluster)
    return ScenarioRun(
        spec=spec, seed=seed, cluster=cluster, monitor=monitor, tracker=tracker
    )


def execute(run: ScenarioRun) -> Dict[str, Any]:
    """Drive a prepared scenario through its phases; return the result dict."""
    spec, cluster = run.spec, run.cluster
    result: Dict[str, Any] = {
        "scenario": spec.name,
        "seed": run.seed,
        "n": spec.n,
        "stack": cluster.stack.name,
    }
    if spec.require_bootstrap:
        result["bootstrapped"] = cluster.run_until_converged(timeout=spec.bootstrap_timeout)
    else:
        result["bootstrapped"] = None
    if spec.horizon > 0:
        cluster.run(until=cluster.simulator.now + spec.horizon)
    probe_results: Dict[str, Dict[str, Any]] = {}
    all_satisfied = True
    for probe in spec.probes:
        outcome = wait_for(cluster, probe)
        all_satisfied = all_satisfied and outcome.satisfied
        # A repeated probe name (e.g. converged() before and after a
        # disturbance) gets a distinct key so no outcome is overwritten.
        key, suffix = probe.name, 2
        while key in probe_results:
            key = f"{probe.name}#{suffix}"
            suffix += 1
        probe_results[key] = {
            "satisfied": outcome.satisfied,
            "time": outcome.time,
        }
    result["probes"] = probe_results
    result["ok"] = result["bootstrapped"] is not False and all_satisfied
    if run.tracker is not None:
        result["convergence"] = run.tracker.summary()
    if run.monitor is not None:
        result["invariants"] = run.monitor.summary()
        result["ok"] = result["ok"] and run.monitor.ok()
    if cluster.workload_reports:
        result["workload_reports"] = list(cluster.workload_reports)
    # What the environment did and when: partition/heal/overlay transitions
    # of the installed environment program (deterministic, so part of the
    # reproducible result surface).
    environment = cluster.environment
    if spec.scheduler is not None or environment.transition_count:
        result["environment"] = environment.summary()
    if spec.measure_window > 0:
        before = cluster.statistics()
        start = cluster.simulator.now
        wall_start = time.perf_counter()
        cluster.run(until=start + spec.measure_window)
        window_wall = time.perf_counter() - wall_start
        after = cluster.statistics()
        result["window"] = {
            "horizon": spec.measure_window,
            "executed_events": after["executed_events"] - before["executed_events"],
            "delivered_messages": after["delivered_messages"]
            - before["delivered_messages"],
            # Wall-clock is reported for benchmarks but is NOT part of the
            # deterministic surface; determinism tests must exclude it.
            "wall_seconds": window_wall,
        }
    result["statistics"] = cluster.statistics()
    return result


def run_scenario(spec_or_name: Union[str, ScenarioSpec], seed: int = 0) -> Dict[str, Any]:
    """Prepare and execute one scenario run."""
    return execute(prepare(spec_or_name, seed=seed))


# ---------------------------------------------------------------------------
# Parallel seed sweeps
# ---------------------------------------------------------------------------
def _run_job(job: Sequence[Any]) -> Dict[str, Any]:
    name, seed = job
    wall_start = time.perf_counter()
    result = run_scenario(name, seed=seed)
    return {
        **result,
        "wall_seconds": time.perf_counter() - wall_start,
        "worker_pid": os.getpid(),
    }


def _unfinished_jobs(
    jobs: Sequence[Sequence[Any]], results: Sequence[Dict[str, Any]]
) -> List[Sequence[Any]]:
    """The ``(scenario, seed)`` jobs with no collected result yet.

    Used to name the lost jobs when a worker dies without reporting.
    """
    done = {(entry.get("scenario"), entry.get("seed")) for entry in results}
    return [job for job in jobs if (job[0], job[1]) not in done]


def _reap_workers(processes: List[Any], timeout: float = 5.0) -> None:
    """Join every worker, terminating any that outlives *timeout* seconds."""
    for process in processes:
        process.join(timeout=timeout)
        if process.is_alive():
            process.terminate()
            process.join(timeout=timeout)


def _worker(jobs: List[Sequence[Any]], queue: "multiprocessing.Queue") -> None:
    for job in jobs:
        try:
            queue.put(_run_job(job))
        except Exception as exc:  # surface worker failures instead of hanging
            queue.put(
                {
                    "scenario": job[0],
                    "seed": job[1],
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "worker_pid": os.getpid(),
                }
            )


def run_matrix(
    scenarios: Sequence[Union[str, ScenarioSpec]],
    seeds: Sequence[int],
    workers: int = 1,
) -> Dict[str, Any]:
    """Run every ``scenario × seed`` combination, optionally in parallel.

    Returns ``{"meta": ..., "results": [...]}`` with results sorted by
    ``(scenario, seed)`` regardless of completion order.  Scenario *specs*
    (not just names) are accepted with ``workers == 1``; a parallel sweep
    requires registered names so workers can resolve them locally.
    """
    from repro.scenarios.library import get_scenario

    names = [ref if isinstance(ref, str) else ref.name for ref in scenarios]
    jobs: List[Sequence[Any]] = [(name, seed) for name in names for seed in seeds]
    effective_workers = max(1, min(workers, len(jobs)))
    for ref in scenarios:
        if isinstance(ref, str):
            get_scenario(ref)  # fail fast on unknown names
        elif effective_workers > 1:
            # Workers resolve jobs by name from the registry; an unregistered
            # spec object would fail remotely on every job, so fail fast here.
            try:
                registered = get_scenario(ref.name)
            except KeyError:
                registered = None
            if registered is not ref:
                raise ValueError(
                    f"parallel sweeps require registered scenario names; "
                    f"register_scenario({ref.name!r}) first or use workers=1"
                )
    if effective_workers == 1:
        by_ref = {(ref if isinstance(ref, str) else ref.name): ref for ref in scenarios}
        results = []
        for name, seed in jobs:
            wall_start = time.perf_counter()
            result = run_scenario(by_ref[name], seed=seed)
            results.append(
                {
                    **result,
                    "wall_seconds": time.perf_counter() - wall_start,
                    "worker_pid": os.getpid(),
                }
            )
    else:
        chunks = [jobs[index::effective_workers] for index in range(effective_workers)]
        # Prefer fork so workers inherit runtime-registered scenarios; under
        # spawn (Windows) workers re-import only the built-in library, so
        # names registered at runtime would not resolve there.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform without fork
            context = multiprocessing.get_context()
        queue = context.Queue()
        processes = [
            context.Process(target=_worker, args=(chunk, queue), daemon=True)
            for chunk in chunks
        ]
        for process in processes:
            process.start()
        results = []
        while len(results) < len(jobs):
            try:
                results.append(queue.get(timeout=1.0))
                continue
            except Empty:
                pass
            # Only an Exception inside a job is reported via the queue; a
            # worker killed outright (OOM, SIGKILL) would otherwise leave
            # this collection loop blocked forever.
            if any(process.is_alive() for process in processes):
                continue
            # Every worker has exited.  Drain whatever is still buffered in
            # the queue (``queue.empty()`` alone is racy against the feeder
            # threads) before deciding results really are missing.
            try:
                while len(results) < len(jobs):
                    results.append(queue.get(timeout=0.25))
            except Empty:
                missing = _unfinished_jobs(jobs, results)
                _reap_workers(processes)
                raise RuntimeError(
                    f"worker process died before finishing its jobs; "
                    f"collected {len(results)}/{len(jobs)} results; "
                    f"missing (scenario, seed) pairs: {missing}"
                )
        _reap_workers(processes)
    results.sort(key=lambda entry: (entry["scenario"], entry["seed"]))
    return {
        "meta": {
            "scenarios": names,
            "seeds": list(seeds),
            "workers": effective_workers,
            "jobs": len(jobs),
        },
        "results": results,
    }
