"""Scenario execution: single runs, resumable phases and parallel sweeps.

:func:`run_scenario` turns ``(spec, seed)`` into a plain, JSON-serializable
result dictionary that is a *pure function of the seed* — two runs of the
same scenario and seed produce identical dictionaries (the determinism
guarantee the test-suite pins).  Wall-clock timing and worker identity are
added only by the sweep envelope, never to the scenario result itself.

Execution is split into a **resumable phase machine**:

* :func:`drive` advances a prepared run through its simulated phases
  (bootstrap, horizon).  An optional ``stop_before`` boundary pauses the run
  right before the first event at or past that simulated time — with every
  phase's absolute deadline persisted on the :class:`ScenarioRun` — which is
  what lets the audit harness snapshot a bootstrapped prefix
  (:mod:`repro.sim.snapshot`) and resume restored copies later, byte-identically
  to an uninterrupted run.
* :func:`finalize` evaluates probes, collects monitor/tracker summaries and
  assembles the result dictionary.
* :func:`execute` is simply ``drive`` + ``finalize``.

:func:`run_matrix` executes a ``scenarios × seeds`` grid.  With
``workers > 1`` a persistent pool of forked worker processes pulls jobs from
one shared queue (work stealing: a slow job never strands the other jobs
that a static chunking would have pinned to the same worker), and only
``(scenario name, seed)`` pairs cross the process boundary — workers
re-resolve specs from the registry, so probes and workload callables never
need to be pickled.  Each result records its own wall time and worker pid;
the sweep meta reports per-worker utilization so scheduling regressions are
visible in every sweep artifact.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from queue import Empty
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.scenarios.spec import ScenarioSpec
from repro.sim.cluster import Cluster, build_cluster
from repro.sim.config import ClusterConfig, preset
from repro.sim.events import Action
from repro.sim.monitors import ConvergenceTracker, InvariantMonitor
from repro.sim.simulator import PAUSED
from repro.analysis.probes import wait_for


@dataclass
class ScenarioRun:
    """A prepared scenario: cluster built, workloads installed, not yet run.

    Benchmarks use this to interleave their own measurements with the
    scenario engine's phases without hand-wiring any services.  ``monitor``
    and ``tracker`` are populated when the spec declares invariants /
    convergence tracking (the audit engine's certification hooks).

    ``phase`` / ``phase_deadline`` / ``bootstrapped`` are the phase machine's
    persisted state: a run paused by :func:`drive` carries everything needed
    to resume (absolute deadlines survive a snapshot/restore round-trip
    because the simulated clock does too).
    """

    spec: ScenarioSpec
    seed: int
    cluster: Cluster
    monitor: Optional[InvariantMonitor] = None
    tracker: Optional[ConvergenceTracker] = None
    phase: str = "bootstrap"
    phase_deadline: Optional[float] = None
    bootstrapped: Optional[bool] = None


def prepare(spec_or_name: Union[str, ScenarioSpec], seed: int = 0) -> ScenarioRun:
    """Build the cluster for a scenario and install its workloads.

    Order matters: the adversarial scheduler (if the spec names one) shapes
    the channels before any workload schedules its disturbances, and the
    monitors attach before the first event executes.
    """
    from repro.scenarios.library import get_scenario

    spec = get_scenario(spec_or_name)
    config = spec.config if isinstance(spec.config, ClusterConfig) else preset(spec.config)
    cluster = build_cluster(n=spec.n, seed=seed, config=config, stack=spec.stack)
    if spec.scheduler is not None:
        from repro.audit.schedulers import get_scheduler

        get_scheduler(spec.scheduler).install(cluster, **dict(spec.scheduler_params))
    monitor: Optional[InvariantMonitor] = None
    if spec.invariants:
        monitor = InvariantMonitor(cluster.simulator)
        for invariant in spec.invariants:
            # An Action (not a closure) so that snapshot/restore remaps the
            # cluster reference along with the rest of the graph.
            monitor.add_invariant(invariant.name, Action(invariant, cluster))
    tracker: Optional[ConvergenceTracker] = None
    if spec.track_convergence:
        tracker = ConvergenceTracker(
            cluster.simulator,
            cluster.is_converged,
            name="cluster_converged",
            poll_interval=spec.convergence_poll,
        )
    for workload in spec.workloads:
        workload.install(cluster)
    return ScenarioRun(
        spec=spec, seed=seed, cluster=cluster, monitor=monitor, tracker=tracker
    )


def drive(run: ScenarioRun, stop_before: Optional[float] = None) -> bool:
    """Advance *run* through its simulated phases (bootstrap, then horizon).

    Returns ``True`` when every phase completed.  With *stop_before* set, the
    run pauses — returning ``False`` — before executing the first event at
    ``time >= stop_before``; phase progress (including the current phase's
    absolute deadline) is persisted on the run, so a later ``drive(run)``
    resumes exactly where a cold, uninterrupted run would be.
    """
    spec, cluster = run.spec, run.cluster
    simulator = cluster.simulator
    while True:
        if run.phase == "bootstrap":
            if not spec.require_bootstrap:
                run.bootstrapped = None
                run.phase, run.phase_deadline = "horizon", None
                continue
            if run.phase_deadline is None:
                run.phase_deadline = simulator.now + spec.bootstrap_timeout
            outcome = simulator.run_until(
                cluster.is_converged,
                timeout=run.phase_deadline,
                stop_before=stop_before,
            )
            if outcome is PAUSED:
                return False
            run.bootstrapped = outcome
            run.phase, run.phase_deadline = "horizon", None
            continue
        if run.phase == "horizon":
            if spec.horizon <= 0:
                run.phase = "done"
                continue
            if run.phase_deadline is None:
                run.phase_deadline = simulator.now + spec.horizon
            outcome = simulator.run(run.phase_deadline, stop_before=stop_before)
            if outcome is PAUSED:
                return False
            run.phase, run.phase_deadline = "done", None
            continue
        return True


def finalize(run: ScenarioRun) -> Dict[str, Any]:
    """Evaluate probes and assemble the result dict of a driven run."""
    spec, cluster = run.spec, run.cluster
    result: Dict[str, Any] = {
        "scenario": spec.name,
        "seed": run.seed,
        "n": spec.n,
        "stack": cluster.stack.name,
    }
    result["bootstrapped"] = run.bootstrapped if spec.require_bootstrap else None
    probe_results: Dict[str, Dict[str, Any]] = {}
    all_satisfied = True
    for probe in spec.probes:
        outcome = wait_for(cluster, probe)
        all_satisfied = all_satisfied and outcome.satisfied
        # A repeated probe name (e.g. converged() before and after a
        # disturbance) gets a distinct key so no outcome is overwritten.
        key, suffix = probe.name, 2
        while key in probe_results:
            key = f"{probe.name}#{suffix}"
            suffix += 1
        probe_results[key] = {
            "satisfied": outcome.satisfied,
            "time": outcome.time,
        }
    result["probes"] = probe_results
    result["ok"] = result["bootstrapped"] is not False and all_satisfied
    if run.tracker is not None:
        result["convergence"] = run.tracker.summary()
    if run.monitor is not None:
        result["invariants"] = run.monitor.summary()
        result["ok"] = result["ok"] and run.monitor.ok()
    if cluster.workload_reports:
        result["workload_reports"] = list(cluster.workload_reports)
    # What the environment did and when: partition/heal/overlay transitions
    # of the installed environment program (deterministic, so part of the
    # reproducible result surface).
    environment = cluster.environment
    if spec.scheduler is not None or environment.transition_count:
        result["environment"] = environment.summary()
    if spec.measure_window > 0:
        before = cluster.statistics()
        start = cluster.simulator.now
        wall_start = time.perf_counter()
        cluster.run(until=start + spec.measure_window)
        window_wall = time.perf_counter() - wall_start
        after = cluster.statistics()
        result["window"] = {
            "horizon": spec.measure_window,
            "executed_events": after["executed_events"] - before["executed_events"],
            "delivered_messages": after["delivered_messages"]
            - before["delivered_messages"],
            # Wall-clock is reported for benchmarks but is NOT part of the
            # deterministic surface; determinism tests must exclude it.
            "wall_seconds": window_wall,
        }
    result["statistics"] = cluster.statistics()
    return result


def execute(run: ScenarioRun) -> Dict[str, Any]:
    """Drive a prepared scenario through its phases; return the result dict."""
    drive(run)
    return finalize(run)


def run_scenario(spec_or_name: Union[str, ScenarioSpec], seed: int = 0) -> Dict[str, Any]:
    """Prepare and execute one scenario run."""
    return execute(prepare(spec_or_name, seed=seed))


# ---------------------------------------------------------------------------
# Parallel seed sweeps
# ---------------------------------------------------------------------------
#: A job runner maps ``(scenario name, seed)`` to a result dictionary.  The
#: default resolves the name through the registry and runs it cold; the audit
#: harness substitutes a runner that resumes warm prefix snapshots.  Custom
#: runners must be module-level callables when sweeps may run under a spawn
#: start method (fork inherits anything).
JobRunner = Callable[[str, int], Dict[str, Any]]


def _run_job(job: Sequence[Any], job_runner: Optional[JobRunner] = None) -> Dict[str, Any]:
    name, seed = job
    wall_start = time.perf_counter()
    result = job_runner(name, seed) if job_runner is not None else run_scenario(name, seed=seed)
    return {
        **result,
        "wall_seconds": time.perf_counter() - wall_start,
        "worker_pid": os.getpid(),
    }


def _unfinished_jobs(
    jobs: Sequence[Sequence[Any]], results: Sequence[Dict[str, Any]]
) -> List[Sequence[Any]]:
    """The ``(scenario, seed)`` jobs with no collected result yet.

    Used to name the lost jobs when a worker dies without reporting.
    """
    done = {(entry.get("scenario"), entry.get("seed")) for entry in results}
    return [job for job in jobs if (job[0], job[1]) not in done]


def _reap_workers(processes: List[Any], timeout: float = 5.0) -> None:
    """Join every worker, terminating any that outlives *timeout* seconds."""
    for process in processes:
        process.join(timeout=timeout)
        if process.is_alive():
            process.terminate()
            process.join(timeout=timeout)


def _pool_worker(
    task_queue: "multiprocessing.Queue",
    result_queue: "multiprocessing.Queue",
    job_runner: Optional[JobRunner],
) -> None:
    """One persistent worker: pull jobs until the ``None`` sentinel arrives."""
    while True:
        job = task_queue.get()
        if job is None:
            return
        try:
            result_queue.put(_run_job(job, job_runner))
        except Exception as exc:  # surface worker failures instead of hanging
            result_queue.put(
                {
                    "scenario": job[0],
                    "seed": job[1],
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "worker_pid": os.getpid(),
                }
            )


def _sweep_summary(
    results: Sequence[Dict[str, Any]], workers: int, wall_seconds: float
) -> Dict[str, Any]:
    """Per-worker load/busy accounting for a finished sweep.

    ``utilization`` is the busy fraction of the pool: the sum of per-job wall
    times divided by ``workers × sweep wall``.  A straggler-bound sweep (one
    worker grinding while the rest idle) shows up as a low utilization even
    when every job individually looks cheap — exactly the regression the old
    round-robin chunking hid.
    """
    by_worker: Dict[str, Dict[str, Any]] = {}
    busy_total = 0.0
    for entry in results:
        pid = str(entry.get("worker_pid", "?"))
        wall = float(entry.get("wall_seconds", 0.0) or 0.0)
        slot = by_worker.setdefault(pid, {"jobs": 0, "busy_seconds": 0.0})
        slot["jobs"] += 1
        slot["busy_seconds"] += wall
        busy_total += wall
    capacity = workers * wall_seconds
    return {
        "wall_seconds": wall_seconds,
        "busy_seconds": busy_total,
        "utilization": (busy_total / capacity) if capacity > 0 else None,
        "max_job_seconds": max(
            (float(e.get("wall_seconds", 0.0) or 0.0) for e in results), default=0.0
        ),
        "by_worker": {pid: by_worker[pid] for pid in sorted(by_worker)},
    }


def run_matrix(
    scenarios: Sequence[Union[str, ScenarioSpec]],
    seeds: Sequence[int],
    workers: int = 1,
    job_runner: Optional[JobRunner] = None,
    jobs: Optional[Sequence[Sequence[Any]]] = None,
) -> Dict[str, Any]:
    """Run every ``scenario × seed`` combination, optionally in parallel.

    Returns ``{"meta": ..., "results": [...]}`` with results sorted by
    ``(scenario, seed)`` regardless of completion order.  Scenario *specs*
    (not just names) are accepted with ``workers == 1``; a parallel sweep
    requires registered names so workers can resolve them locally.

    An explicit *jobs* list of ``(scenario name, seed)`` pairs replaces the
    full cross product — the persistent sweep cache dispatches only its
    cache *misses* this way, which are a sparse subset of the grid.  Every
    job's scenario must still appear in *scenarios* (validation and
    name-resolution run over the declared scenario list either way).

    Parallel sweeps use a persistent pool of forked workers pulling from one
    shared work queue — a slow job delays only itself, not a statically
    assigned chunk.  ``meta["sweep"]`` reports per-worker job counts, busy
    seconds and overall pool utilization; each result entry carries its own
    ``wall_seconds`` and ``worker_pid``.
    """
    from repro.scenarios.library import get_scenario

    names = [ref if isinstance(ref, str) else ref.name for ref in scenarios]
    if jobs is None:
        jobs = [(name, seed) for name in names for seed in seeds]
    else:
        jobs = [tuple(job) for job in jobs]
        unknown = sorted({job[0] for job in jobs} - set(names))
        if unknown:
            raise ValueError(
                f"explicit jobs name scenarios not in the declared list: {unknown}"
            )
    effective_workers = max(1, min(workers, len(jobs)))
    for ref in scenarios:
        if isinstance(ref, str):
            get_scenario(ref)  # fail fast on unknown names
        elif effective_workers > 1 or job_runner is not None:
            # Workers (and custom job runners) resolve jobs by name from the
            # registry; an unregistered spec object would fail remotely on
            # every job, so fail fast here.
            try:
                registered = get_scenario(ref.name)
            except KeyError:
                registered = None
            if registered is not ref:
                raise ValueError(
                    f"parallel sweeps require registered scenario names; "
                    f"register_scenario({ref.name!r}) first or use workers=1"
                )
    sweep_start = time.perf_counter()
    if effective_workers == 1:
        by_ref = {(ref if isinstance(ref, str) else ref.name): ref for ref in scenarios}
        results = []
        for name, seed in jobs:
            if job_runner is not None:
                results.append(_run_job((name, seed), job_runner))
            else:
                results.append(_run_job((by_ref[name], seed)))
    else:
        # Prefer fork so workers inherit runtime-registered scenarios (and
        # the audit harness's warm prefix snapshots, copy-on-write); under
        # spawn (Windows) workers re-import only the built-in library, so
        # names registered at runtime would not resolve there.
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform without fork
            context = multiprocessing.get_context()
        task_queue = context.Queue()
        result_queue = context.Queue()
        for job in jobs:
            task_queue.put(tuple(job))
        for _ in range(effective_workers):
            task_queue.put(None)  # one shutdown sentinel per worker
        processes = [
            context.Process(
                target=_pool_worker,
                args=(task_queue, result_queue, job_runner),
                daemon=True,
            )
            for _ in range(effective_workers)
        ]
        for process in processes:
            process.start()
        results = []
        while len(results) < len(jobs):
            try:
                results.append(result_queue.get(timeout=1.0))
                continue
            except Empty:
                pass
            # Only an Exception inside a job is reported via the queue; a
            # worker killed outright (OOM, SIGKILL) would otherwise leave
            # this collection loop blocked forever.
            if any(process.is_alive() for process in processes):
                continue
            # Every worker has exited.  Drain whatever is still buffered in
            # the queue (``queue.empty()`` alone is racy against the feeder
            # threads) before deciding results really are missing.
            try:
                while len(results) < len(jobs):
                    results.append(result_queue.get(timeout=0.25))
            except Empty:
                missing = _unfinished_jobs(jobs, results)
                _reap_workers(processes)
                raise RuntimeError(
                    f"worker process died before finishing its jobs; "
                    f"collected {len(results)}/{len(jobs)} results; "
                    f"missing (scenario, seed) pairs: {missing}"
                )
        _reap_workers(processes)
    wall_seconds = time.perf_counter() - sweep_start
    results.sort(key=lambda entry: (entry["scenario"], entry["seed"]))
    return {
        "meta": {
            "scenarios": names,
            "seeds": list(seeds),
            "workers": effective_workers,
            "jobs": len(jobs),
            "sweep": _sweep_summary(results, effective_workers, wall_seconds),
        },
        "results": results,
    }
