"""Composable workloads: everything installs through one protocol.

The scenario layer's contract is a single method::

    workload.install(cluster)   # before the run starts

Each workload schedules its disturbance(s) on the cluster's simulator; a
scenario composes several (churn *while* corrupting *while* partitioned) by
listing them.  :class:`~repro.workloads.churn.ChurnTrace` and
:class:`~repro.sim.faults.TransientFaultCampaign` already satisfy the
protocol natively; the wrappers below cover the remaining disturbance types
(state corruption, stale-packet stuffing, partitions, crash storms, join
waves, register writes) with seeded, reproducible parameters.

Workloads that draw randomness default their seed to the cluster's simulator
seed, so a seed sweep varies the disturbances together with the rest of the
run while two runs of the same seed stay identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Protocol, Tuple, runtime_checkable

from repro.audit.arbitrary_state import (
    DEFAULT_PROFILE,
    CorruptionProfile,
    apply_plan,
    generate_plan,
    plan_summary,
)
from repro.common.types import ProcessId
from repro.sim.events import Action
from repro.workloads.churn import generate_churn_trace
from repro.workloads.corruption import scramble_cluster, stuff_stale_recma_packets

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cluster import Cluster


@runtime_checkable
class Workload(Protocol):
    """Anything that can schedule its disturbances on a cluster."""

    def install(self, cluster: "Cluster") -> None:  # pragma: no cover - protocol
        ...


def _seed_for(workload_seed: Optional[int], cluster: "Cluster") -> int:
    return workload_seed if workload_seed is not None else cluster.simulator.seed


@dataclass(frozen=True)
class ChurnWorkload:
    """Random crashes and joins generated at install time.

    A thin declarative front for :func:`generate_churn_trace` — the initial
    membership is read off the cluster, so the same workload value composes
    with any topology size.
    """

    start: float = 0.0
    duration: float = 100.0
    crash_rate: float = 0.0
    join_rate: float = 0.0
    max_crashes: Optional[int] = None
    first_new_pid: int = 1000
    seed: Optional[int] = None

    def install(self, cluster: "Cluster") -> None:
        trace = generate_churn_trace(
            initial_members=list(cluster.nodes.keys()),
            duration=self.duration,
            crash_rate=self.crash_rate,
            join_rate=self.join_rate,
            seed=_seed_for(self.seed, cluster),
            max_crashes=self.max_crashes,
            first_new_pid=self.first_new_pid,
            start_time=self.start,
        )
        trace.install(cluster)


@dataclass(frozen=True)
class ScrambleWorkload:
    """Transient fault at time *at*: corrupt recSA/recMA state of a fraction
    of the alive nodes (the paper's arbitrary-starting-state model)."""

    at: float
    fraction: float = 1.0
    seed: Optional[int] = None

    def install(self, cluster: "Cluster") -> None:
        cluster.simulator.call_at(
            self.at, Action(ScrambleWorkload._fire, self, cluster), label="workload:scramble"
        )

    def _fire(self, cluster: "Cluster") -> None:
        scramble_cluster(
            cluster, seed=_seed_for(self.seed, cluster), fraction=self.fraction
        )


@dataclass(frozen=True)
class ArbitraryStateWorkload:
    """The paper's *full* transient-fault model as one workload.

    At time *at*, generate a seeded corruption plan over every protocol-state
    field of the cluster (recSA, recMA, failure detector, stack services)
    plus bounded channel stuffing — see
    :mod:`repro.audit.arbitrary_state` — and apply it.

    ``include`` restricts application to the given indices of the (always
    fully generated, deterministic) plan; the audit harness uses this to
    shrink a violating run to a minimal reproducer.  ``record_atoms`` adds
    the applied atoms' descriptions to the workload report (reproducer
    output; off by default to keep sweep results small).
    """

    at: float
    seed: Optional[int] = None
    profile: CorruptionProfile = DEFAULT_PROFILE
    include: Optional[Tuple[int, ...]] = None
    record_atoms: bool = False

    def install(self, cluster: "Cluster") -> None:
        cluster.simulator.call_at(
            self.at,
            Action(ArbitraryStateWorkload._fire, self, cluster),
            label="workload:arbitrary-state",
        )

    def _fire(self, cluster: "Cluster") -> None:
        # Every corruption-shaping field (seed, profile, include,
        # record_atoms) is read *here*, at fire time, not at install time:
        # the audit harness's warm path snapshots a bootstrapped prefix with
        # this event still pending and patches those fields before resuming,
        # which must be indistinguishable from a cold run.
        plan = generate_plan(
            cluster, seed=_seed_for(self.seed, cluster), profile=self.profile
        )
        if self.include is None:
            selected = plan
        else:
            selected = [plan[i] for i in self.include if 0 <= i < len(plan)]
        report = apply_plan(cluster, selected)
        entry = {
            "workload": "arbitrary_state",
            "time": self.at,
            "atoms_total": len(plan),
            "atoms_selected": len(selected),
            "by_kind": plan_summary(selected),
            **report,
        }
        if self.record_atoms:
            entry["atoms"] = [atom.describe() for atom in selected]
        cluster.workload_reports.append(entry)


@dataclass(frozen=True)
class StaleMessageWorkload:
    """Stuff channels toward *target* with stale recMA trigger packets."""

    at: float
    target: ProcessId = 0
    count: int = 50
    seed: Optional[int] = None

    def install(self, cluster: "Cluster") -> None:
        cluster.simulator.call_at(
            self.at,
            Action(StaleMessageWorkload._fire, self, cluster),
            label="workload:stale-packets",
        )

    def _fire(self, cluster: "Cluster") -> None:
        if self.target in cluster.nodes:
            stuff_stale_recma_packets(
                cluster, self.target, self.count, seed=_seed_for(self.seed, cluster)
            )


@dataclass(frozen=True)
class CrashWorkload:
    """Crash specific pids at specific times (``((time, pid), ...)``)."""

    schedule: Tuple[Tuple[float, ProcessId], ...]

    def install(self, cluster: "Cluster") -> None:
        for time, pid in self.schedule:
            cluster.simulator.call_at(
                time,
                Action(type(cluster).try_crash, cluster, pid),
                label=f"workload:crash:{pid}",
            )


@dataclass(frozen=True)
class QuorumEdgeCrashWorkload:
    """Simultaneously crash the largest survivable minority of the agreed
    configuration — the crash storm right at the quorum edge.

    The victim count is ``ceil(|config|/2) - 1`` (a majority must survive for
    delicate reconfiguration); victims are the lowest member ids, so the
    storm is deterministic given the agreed configuration.
    """

    at: float

    def install(self, cluster: "Cluster") -> None:
        cluster.simulator.call_at(
            self.at, Action(QuorumEdgeCrashWorkload._fire, cluster), label="workload:quorum-edge"
        )

    @staticmethod
    def _fire(cluster: "Cluster") -> None:
        config = cluster.agreed_configuration()
        if config is None:
            members = sorted(node.pid for node in cluster.alive_nodes())
        else:
            members = sorted(config)
        victims = members[: (len(members) - 1) // 2]
        for pid in victims:
            cluster.try_crash(pid)


@dataclass(frozen=True)
class FlashJoinWorkload:
    """A wave of *count* joiners arriving at the same instant."""

    at: float
    count: int = 4
    first_pid: int = 500

    def install(self, cluster: "Cluster") -> None:
        cluster.simulator.call_at(
            self.at, Action(FlashJoinWorkload._fire, self, cluster), label="workload:flash-join"
        )

    def _fire(self, cluster: "Cluster") -> None:
        for pid in range(self.first_pid, self.first_pid + self.count):
            if pid not in cluster.nodes:
                cluster.add_joiner(pid)


@dataclass(frozen=True)
class PartitionWorkload:
    """Split the alive nodes into two halves at *at*; heal at *heal_at*."""

    at: float
    heal_at: float

    def install(self, cluster: "Cluster") -> None:
        if self.heal_at <= self.at:
            raise ValueError("heal_at must be after the partition time")
        cluster.simulator.call_at(
            self.at, Action(PartitionWorkload._split, cluster), label="workload:partition"
        )
        cluster.simulator.call_at(
            self.heal_at, Action(PartitionWorkload._heal, cluster), label="workload:heal"
        )

    @staticmethod
    def _split(cluster: "Cluster") -> None:
        alive = sorted(node.pid for node in cluster.alive_nodes())
        half = len(alive) // 2
        if half and len(alive) - half:
            cluster.simulator.network.partition(alive[:half], alive[half:])

    @staticmethod
    def _heal(cluster: "Cluster") -> None:
        cluster.simulator.network.heal_partitions()


@dataclass(frozen=True)
class SMRCommandWorkload:
    """Submit a command to *submitter*'s VS layer for totally-ordered delivery.

    The replicated-state counterpart of :class:`RegisterWriteWorkload` for
    stacks that expose the raw ``"vs"`` service (``vs_smr``): delivered
    commands land in every replica's delivery history, which is what makes
    the ``smr_agreement`` invariant check something real instead of holding
    vacuously over empty histories.
    """

    at: float
    submitter: ProcessId
    command: Any

    def install(self, cluster: "Cluster") -> None:
        cluster.simulator.call_at(
            self.at,
            Action(SMRCommandWorkload._fire, self, cluster),
            label=f"workload:smr-command:{self.submitter}",
        )

    def _fire(self, cluster: "Cluster") -> None:
        node = cluster.nodes.get(self.submitter)
        if node is None or node.crashed:
            return
        vs = node.service_map.get("vs")
        if vs is not None:
            vs.submit(self.command)


@dataclass(frozen=True)
class RBBroadcastWorkload:
    """Reliably broadcast *payload* from *origin* at time *at*.

    Requires a stack exposing the ``"rb"`` service (``rb_bracha`` /
    ``rb_dolev`` / ``rb_naive`` / ``vs_smr_rb``).  Broadcasts are what turn
    the ``rb_agreement`` / ``rb_validity`` invariants and the
    ``rb_delivered`` probe into real checks instead of vacuous truths over
    empty delivery tables.
    """

    at: float
    origin: ProcessId
    payload: Any

    def install(self, cluster: "Cluster") -> None:
        cluster.simulator.call_at(
            self.at,
            Action(RBBroadcastWorkload._fire, self, cluster),
            label=f"workload:rb-broadcast:{self.origin}",
        )

    def _fire(self, cluster: "Cluster") -> None:
        node = cluster.nodes.get(self.origin)
        if node is None or node.crashed:
            return
        rb = node.service_map.get("rb")
        if rb is not None:
            rb.broadcast(self.payload)


@dataclass(frozen=True)
class RegisterWriteWorkload:
    """Submit a shared-register write from *writer* at time *at*.

    Requires the ``shared_register`` stack; a write submitted while the view
    is down or a reconfiguration is in flight is queued by the VS layer and
    delivered later — which is exactly the suspension behaviour scenarios
    want to exercise.
    """

    at: float
    writer: ProcessId
    value: Any

    def install(self, cluster: "Cluster") -> None:
        cluster.simulator.call_at(
            self.at,
            Action(RegisterWriteWorkload._fire, self, cluster),
            label=f"workload:write:{self.writer}",
        )

    def _fire(self, cluster: "Cluster") -> None:
        node = cluster.nodes.get(self.writer)
        if node is None or node.crashed:
            return
        register = node.service_map.get("register")
        if register is not None:
            register.write(self.value)
