"""The built-in scenario library.

Every scenario here is a few declarative lines — topology, stack profile,
composed workloads, probes — where the pre-scenario harness needed a
hand-written script per experiment.  All of them are registered by name so
the CLI (``python -m repro.scenarios``) and the multiprocessing seed sweep
can resolve them inside worker processes without pickling closures.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.analysis import probes
from repro.audit.byzantine import ByzantineSpec, ByzantineWorkload
from repro.scenarios.spec import ScenarioSpec
from repro.sim.config import fast_sim
from repro.scenarios.workloads import (
    ArbitraryStateWorkload,
    ChurnWorkload,
    CrashWorkload,
    FlashJoinWorkload,
    PartitionWorkload,
    QuorumEdgeCrashWorkload,
    RBBroadcastWorkload,
    RegisterWriteWorkload,
    ScrambleWorkload,
    SMRCommandWorkload,
    StaleMessageWorkload,
)

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add *spec* to the named-scenario registry (unique name required).

    *replace* overwrites an existing registration — used by generated
    scenario families (the audit harness re-registers its cases per sweep).
    """
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(ref: Union[str, ScenarioSpec]) -> ScenarioSpec:
    """Resolve a scenario by name (specs pass through unchanged)."""
    if isinstance(ref, ScenarioSpec):
        return ref
    try:
        return _REGISTRY[ref]
    except KeyError:
        raise KeyError(
            f"unknown scenario {ref!r}; available: {available_scenarios()}"
        ) from None


def available_scenarios() -> List[str]:
    """Sorted names of every registered scenario."""
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Baseline scenarios
# ---------------------------------------------------------------------------
register_scenario(
    ScenarioSpec(
        name="bootstrap",
        description="Self-organizing bootstrap from a brute-force reset.",
        n=5,
        probes=(probes.converged(2_000), probes.participating(2_000)),
    )
)

register_scenario(
    ScenarioSpec(
        name="coherent_start",
        description="Classical-assumption boot: configuration pre-installed.",
        n=5,
        config="coherent_start",
        probes=(probes.converged(2_000),),
    )
)

# ---------------------------------------------------------------------------
# Composed scenarios
# ---------------------------------------------------------------------------
register_scenario(
    ScenarioSpec(
        name="churn_during_corruption",
        description=(
            "Random crashes and joins while a transient fault scrambles 60% "
            "of the nodes mid-churn; the scheme must still converge with "
            "every survivor participating."
        ),
        n=5,
        stack="counters",
        workloads=(
            ChurnWorkload(start=10.0, duration=80.0, crash_rate=0.02, join_rate=0.03, first_new_pid=100),
            ScrambleWorkload(at=35.0, fraction=0.6),
        ),
        horizon=110.0,
        probes=(probes.converged(8_000), probes.participating(8_000)),
    )
)

register_scenario(
    ScenarioSpec(
        name="quorum_edge_crash_storm",
        description=(
            "Simultaneous crash of the largest survivable minority of the "
            "configuration plus a burst of stale recMA trigger packets."
        ),
        n=6,
        workloads=(
            QuorumEdgeCrashWorkload(at=20.0),
            StaleMessageWorkload(at=22.0, target=5, count=64),
        ),
        horizon=40.0,
        probes=(probes.converged(10_000), probes.participating(10_000)),
    )
)

register_scenario(
    ScenarioSpec(
        name="flash_join_wave",
        description="Six joiners arrive at the same instant on a 4-node system.",
        n=4,
        # The wave outgrows the derived N = max(2n, n+2); size the failure
        # detector for the post-wave system explicitly.
        config=fast_sim(upper_bound_n=20),
        workloads=(FlashJoinWorkload(at=15.0, count=6, first_pid=200),),
        horizon=30.0,
        probes=(probes.participating(10_000), probes.converged(10_000)),
    )
)

register_scenario(
    ScenarioSpec(
        name="partition_heal",
        description=(
            "The network splits into two halves (neither holds a majority "
            "alone) and heals later; the scheme must re-converge after the "
            "heal without a permanent split-brain."
        ),
        n=6,
        workloads=(PartitionWorkload(at=20.0, heal_at=90.0),),
        horizon=100.0,
        probes=(probes.converged(10_000), probes.participating(10_000)),
    )
)

# ---------------------------------------------------------------------------
# Audit scenarios (the adversarial self-stabilization engine, repro.audit)
# ---------------------------------------------------------------------------
register_scenario(
    ScenarioSpec(
        name="arbitrary_state_recovery",
        description=(
            "Full transient-fault model: every protocol-state field of every "
            "node corrupted type-correctly + channels stuffed with stale "
            "packets; the scheme must re-converge from the arbitrary state."
        ),
        n=5,
        workloads=(ArbitraryStateWorkload(at=30.0),),
        horizon=35.0,
        track_convergence=True,
        probes=(probes.converged(6_000), probes.participating(6_000)),
    )
)

register_scenario(
    ScenarioSpec(
        name="arbitrary_state_reorder",
        description=(
            "Arbitrary-state corruption under the reorder-heavy adversarial "
            "scheduler (8x delay variance + duplication), on the counters "
            "stack."
        ),
        n=5,
        stack="counters",
        scheduler="reorder_heavy",
        workloads=(ArbitraryStateWorkload(at=40.0),),
        horizon=45.0,
        track_convergence=True,
        probes=(probes.converged(10_000), probes.participating(10_000)),
    )
)

# ---------------------------------------------------------------------------
# Environment-driven scenarios (time-varying adversaries, repro.sim.environment)
# ---------------------------------------------------------------------------
register_scenario(
    ScenarioSpec(
        name="coordinator_hunt",
        description=(
            "The adaptive adversary re-reads the VS coordinator each epoch "
            "and slows its links while replicas keep multicasting commands; "
            "same-view delivery histories must never diverge."
        ),
        n=5,
        stack="vs_smr",
        scheduler="target_coordinator",
        scheduler_params=(("start", 30.0), ("period", 30.0), ("epochs", 4)),
        workloads=(
            SMRCommandWorkload(at=40.0, submitter=0, command=("hunt", 1)),
            SMRCommandWorkload(at=70.0, submitter=2, command=("hunt", 2)),
            SMRCommandWorkload(at=110.0, submitter=4, command=("hunt", 3)),
        ),
        horizon=160.0,
        invariants=(probes.smr_agreement_invariant(),),
        track_convergence=True,
        probes=(probes.converged(8_000), probes.participating(8_000)),
    )
)

register_scenario(
    ScenarioSpec(
        name="partition_leak_recovery",
        description=(
            "A one-way partition with a small leak splits the system, flips "
            "its blocked direction mid-run and heals; the scheme must ride "
            "out asymmetric reachability without a permanent split-brain."
        ),
        n=6,
        scheduler="partition_leak",
        scheduler_params=(
            ("at", 20.0), ("flip_at", 60.0), ("heal_at", 100.0), ("leak", 0.1),
        ),
        horizon=110.0,
        track_convergence=True,
        probes=(probes.converged(10_000), probes.participating(10_000)),
    )
)

register_scenario(
    ScenarioSpec(
        name="crash_recovery_pulse",
        description=(
            "Per-epoch link blackouts make one victim appear to crash and "
            "recover right at the failure-detector threshold, on the "
            "counters stack over ambient loss (degraded_net)."
        ),
        n=5,
        stack="counters",
        config="degraded_net",
        scheduler="crash_recovery",
        scheduler_params=(
            ("start", 20.0), ("period", 30.0), ("outage", 12.0), ("epochs", 3),
        ),
        horizon=120.0,
        track_convergence=True,
        probes=(probes.converged(10_000), probes.participating(10_000)),
    )
)

# ---------------------------------------------------------------------------
# Byzantine scenarios (active adversaries, repro.audit.byzantine)
# ---------------------------------------------------------------------------
register_scenario(
    ScenarioSpec(
        name="byzantine_storm",
        description=(
            "One traitor runs every registered Byzantine behavior (forge, "
            "mutate, drop, equivocate, inflate) against the Bracha "
            "reliable-broadcast stack; honest nodes must still agree on and "
            "validate every delivered broadcast, and the system must "
            "converge once the traitor window closes."
        ),
        n=5,
        stack="rb_bracha",
        workloads=(
            ByzantineWorkload(
                at=25.0,
                spec=ByzantineSpec(
                    behaviors=("forge", "mutate", "drop", "equivocate", "inflate"),
                    traitors=1,
                    duration=60.0,
                ),
            ),
            RBBroadcastWorkload(at=20.0, origin=1, payload=("storm", 1)),
            RBBroadcastWorkload(at=40.0, origin=2, payload=("storm", 2)),
            RBBroadcastWorkload(at=70.0, origin=3, payload=("storm", 3)),
        ),
        horizon=140.0,
        invariants=(
            probes.rb_agreement_invariant(),
            probes.rb_validity_invariant(),
        ),
        track_convergence=True,
        probes=(probes.rb_delivered(8_000), probes.converged(8_000)),
    )
)

register_scenario(
    ScenarioSpec(
        name="equivocating_coordinator",
        description=(
            "The adaptive traitor-selection policy re-reads the VS "
            "coordinator and turns it into an equivocating/inflating traitor "
            "while the target_coordinator scheduler slows its links; SMR "
            "histories and RB delivery tables of the honest replicas must "
            "never diverge."
        ),
        n=5,
        stack="vs_smr_rb",
        scheduler="target_coordinator",
        scheduler_params=(("start", 30.0), ("period", 30.0), ("epochs", 3)),
        workloads=(
            ByzantineWorkload(
                at=35.0,
                spec=ByzantineSpec(
                    behaviors=("equivocate", "mutate", "inflate"),
                    traitors=1,
                    selection="coordinator",
                    duration=60.0,
                ),
            ),
            SMRCommandWorkload(at=40.0, submitter=1, command=("coup", 1)),
            SMRCommandWorkload(at=75.0, submitter=3, command=("coup", 2)),
            RBBroadcastWorkload(at=45.0, origin=2, payload=("coup-rb", 1)),
            RBBroadcastWorkload(at=105.0, origin=4, payload=("coup-rb", 2)),
        ),
        horizon=170.0,
        invariants=(
            probes.smr_agreement_invariant(),
            probes.rb_agreement_invariant(),
            probes.rb_validity_invariant(),
        ),
        track_convergence=True,
        probes=(probes.rb_delivered(10_000), probes.converged(10_000)),
    )
)

register_scenario(
    ScenarioSpec(
        name="traitor_during_recovery",
        description=(
            "Full arbitrary-state corruption lands while a traitor is "
            "actively forging and equivocating: the self-stabilizing scheme "
            "must recover from the transient fault despite a live Byzantine "
            "adversary inside its f < n/3 resilience bound."
        ),
        n=5,
        stack="rb_bracha",
        workloads=(
            ByzantineWorkload(
                at=30.0,
                spec=ByzantineSpec(
                    behaviors=("forge", "equivocate"),
                    traitors=1,
                    duration=50.0,
                ),
            ),
            ArbitraryStateWorkload(at=45.0),
            RBBroadcastWorkload(at=25.0, origin=1, payload=("recovery", 1)),
            RBBroadcastWorkload(at=95.0, origin=2, payload=("recovery", 2)),
        ),
        horizon=150.0,
        invariants=(
            probes.rb_agreement_invariant(),
            probes.rb_validity_invariant(),
        ),
        track_convergence=True,
        probes=(probes.rb_delivered(10_000), probes.converged(10_000)),
    )
)

register_scenario(
    ScenarioSpec(
        name="register_under_churn",
        description=(
            "MWMR register writes interleaved with a replica crash and a "
            "late write; histories must agree across all alive replicas."
        ),
        n=4,
        stack="shared_register",
        workloads=(
            RegisterWriteWorkload(at=30.0, writer=0, value="w1"),
            RegisterWriteWorkload(at=45.0, writer=2, value="w2"),
            CrashWorkload(schedule=((60.0, 1),)),
            RegisterWriteWorkload(at=90.0, writer=3, value="w3"),
        ),
        horizon=110.0,
        probes=(
            probes.view_installed(10_000),
            probes.writes_delivered(8_000),
            probes.register_agreement(6_000),
            probes.converged(8_000),
        ),
    )
)
