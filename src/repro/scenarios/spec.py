"""Declarative experiment specifications.

A :class:`ScenarioSpec` names everything one experiment needs — topology
size, cluster configuration (a preset name or a concrete
:class:`~repro.sim.config.ClusterConfig`), the stack profile every node runs,
a composable schedule of workloads (anything with ``install(cluster)``), and
the probes that define success.  The runner (:mod:`repro.scenarios.runner`)
turns a spec plus a seed into a deterministic statistics dictionary.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional, Tuple, Union

from repro.analysis.probes import Invariant, Probe
from repro.sim.config import ClusterConfig


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment.

    Attributes
    ----------
    config:
        A preset name (``"fast_sim"``, ``"paper_faithful"``,
        ``"coherent_start"``) or a :class:`ClusterConfig` instance.
    stack:
        Stack-profile name or :class:`~repro.sim.stacks.StackProfile`;
        ``None`` uses whatever the cluster config declares.
    workloads:
        Objects satisfying the ``Workload`` protocol
        (:mod:`repro.scenarios.workloads`); installed before the run starts,
        so their events interleave with bootstrap and each other.
    probes:
        Waited for *in order* after bootstrap + horizon; each probe's
        ``timeout`` is its own budget of simulated time.
    scheduler:
        Name of an adversarial scheduler (:mod:`repro.audit.schedulers`)
        installed right after the cluster is built — an *environment
        program* over the :class:`~repro.sim.environment.NetworkEnvironment`:
        static shapes (delay skew, heavy reordering, burst delivery, a slow
        node) or time-varying adversaries (crash-recovery blackouts, leaky
        one-way partitions, adaptive coordinator targeting).  ``None`` keeps
        the config's uniform channel behaviour.
    scheduler_params:
        Program-specific knobs forwarded to the scheduler's installer, as a
        tuple of ``(name, value)`` pairs (kept hashable so specs stay
        frozen): ``(("epochs", 5), ("leak", 0.1))``.
    invariants:
        :class:`~repro.analysis.probes.Invariant` predicates monitored after
        every executed event; any recorded violation interval fails the run
        (reported under ``"invariants"``).
    track_convergence:
        When True, a :class:`~repro.sim.monitors.ConvergenceTracker` watches
        ``cluster.is_converged`` for the whole run and its summary is
        reported under ``"convergence"`` (stabilization time, transitions).
    convergence_poll:
        Sim-time cadence at which the tracker samples the predicate.  The
        default ``0.0`` evaluates after every executed event (exact
        transition times — the seed behaviour); a positive cadence
        coarsens every reported transition time by at most one interval
        but removes the per-event predicate cost, which at n >= 128 is
        the difference between a tractable audit tier and a ~300 us/event
        monitor tax.
    bootstrap_timeout:
        Simulated-time budget for the initial self-organization phase
        (skipped when ``require_bootstrap`` is False).
    horizon:
        Extra simulated time to run after bootstrap — typically sized so the
        installed workloads have fully played out before probing.
    measure_window:
        When positive, a post-probe steady-state window: statistics deltas
        over this much simulated time are reported under ``"window"``.
    """

    name: str
    description: str = ""
    n: int = 5
    config: Union[str, ClusterConfig] = "fast_sim"
    stack: Any = None
    workloads: Tuple[Any, ...] = ()
    probes: Tuple[Probe, ...] = field(default_factory=tuple)
    scheduler: Optional[str] = None
    scheduler_params: Tuple[Tuple[str, Any], ...] = ()
    invariants: Tuple[Invariant, ...] = ()
    track_convergence: bool = False
    convergence_poll: float = 0.0
    bootstrap_timeout: float = 4_000.0
    horizon: float = 0.0
    measure_window: float = 0.0
    require_bootstrap: bool = True

    def with_overrides(self, **overrides: Any) -> "ScenarioSpec":
        """A copy of the spec with the given fields replaced."""
        return replace(self, **overrides)
