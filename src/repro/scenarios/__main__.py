"""CLI: run scenario matrices across seeds with parallel workers.

Examples::

    python -m repro.scenarios --list
    python -m repro.scenarios --smoke
    python -m repro.scenarios partition_heal flash_join_wave --seeds 0:4
    python -m repro.scenarios --seeds 0,7,13 --workers 4 --output sweep.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List

from repro.analysis.metrics import ResultTable
from repro.scenarios.library import available_scenarios, get_scenario
from repro.scenarios.runner import run_matrix


def parse_seeds(spec: str) -> List[int]:
    """Parse ``"0,1,2"``, ``"0:8"`` (half-open range) or a single integer."""
    spec = spec.strip()
    if ":" in spec:
        lo, hi = spec.split(":", 1)
        return list(range(int(lo), int(hi)))
    if "," in spec:
        return [int(part) for part in spec.split(",") if part.strip()]
    return [int(spec)]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios", description=__doc__
    )
    parser.add_argument(
        "scenarios",
        nargs="*",
        help="scenario names to run (default: every registered scenario)",
    )
    parser.add_argument("--list", action="store_true", help="list scenarios and exit")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run every scenario once with seed 0 (CI gate; nonzero exit on failure)",
    )
    parser.add_argument("--seeds", default="0", help='seed spec: "0,1,2", "0:8" or "7"')
    parser.add_argument("--workers", type=int, default=1, help="worker processes")
    parser.add_argument("--output", default=None, help="write the sweep JSON here")
    args = parser.parse_args(argv)

    if args.list:
        for name in available_scenarios():
            spec = get_scenario(name)
            stack = getattr(spec.stack, "name", spec.stack) or "bare"
            print(f"{name:26s} n={spec.n:<3d} stack={stack:16s} {spec.description}")
        return 0

    names = args.scenarios or available_scenarios()
    for name in names:
        get_scenario(name)  # fail fast with the available-scenario list
    seeds = [0] if args.smoke else parse_seeds(args.seeds)
    workers = 1 if args.smoke else args.workers

    sweep = run_matrix(names, seeds=seeds, workers=workers)

    table = ResultTable(
        title=f"scenario sweep ({len(sweep['results'])} runs, "
        f"{sweep['meta']['workers']} worker(s))",
        columns=["scenario", "seed", "ok", "sim_time", "delivered", "wall_s"],
    )
    for entry in sweep["results"]:
        stats = entry.get("statistics", {})
        table.add(
            {"scenario": entry["scenario"], "seed": entry["seed"]},
            {
                "ok": entry.get("ok"),
                "sim_time": stats.get("time"),
                "delivered": stats.get("delivered_messages"),
                "wall_s": entry.get("wall_seconds"),
            },
        )
    print(table.render())

    if args.output:
        path = Path(args.output)
        path.write_text(json.dumps(sweep, indent=2, sort_keys=True, default=str) + "\n")
        print(f"wrote {path}")

    failures = [
        f"{entry['scenario']}@{entry['seed']}"
        for entry in sweep["results"]
        if not entry.get("ok")
    ]
    if failures:
        print(f"FAILED: {failures}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
