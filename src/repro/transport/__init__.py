"""Transport abstraction: the capability boundary under every process.

The protocol layers (data link, failure detector, recSA/recMA, joining, VS,
SMR, applications) interact with the outside world exclusively through a
:class:`~repro.sim.process.ProcessContext`, which in turn delegates to a
:class:`~repro.transport.base.Transport`.  Two conforming backends exist:

* :class:`~repro.transport.sim.SimTransport` — the deterministic
  discrete-event simulator (byte-identical seed trajectories, snapshots,
  sharding, audit warm prefixes).
* :class:`~repro.runtime.transport.AsyncioTransport` — the real runtime:
  each node an asyncio task, messages over UDP/localhost with the
  :mod:`repro.common.codec` wire format, wall-clock timers.

The same protocol code runs unmodified on both; the transport conformance
suite (``tests/test_transport_conformance.py``) pins the shared semantics.
"""

from repro.transport.base import Transport, TimerHandle
from repro.transport.sim import SimTransport

__all__ = ["Transport", "TimerHandle", "SimTransport"]
