"""The ``Transport`` protocol: every capability a processor may use.

The paper's system model (Section 2) gives a processor exactly four
abilities: take a step when its periodic timer fires, receive a packet,
send packets over unreliable channels, and draw local randomness.  This
protocol is that model as an interface.  A backend supplies the mechanics —
event queue or event loop, in-memory channels or UDP sockets — and the
protocol layers cannot tell the difference.

Time contract
-------------
``now()`` returns the transport's clock: the deterministic simulated clock
under :class:`~repro.transport.sim.SimTransport`, a monotonic wall-clock
reading (in sim-time units) under the asyncio runtime.  **No protocol layer
reads it** — an audit of the stack (PR 8) found zero call sites: the
heartbeat service paces itself by iteration count
(``idle_resend_interval``), the reliable-broadcast services by
``_rounds % resend_interval``, and the failure detector is heartbeat-count
based by construction.  That is deliberate: the paper's algorithms are
*time-free* (self-stabilization may not assume synchronized or even
monotonic local clocks after a transient fault), so ``now()`` exists for
metrics, traces and harness instrumentation only.  Keep it that way — a
protocol layer that starts branching on ``now()`` silently forfeits the
byte-identical trajectory guarantee *and* the time-free stabilization
argument.

Timers are the one sanctioned contact with time: ``set_timer`` models the
"periodic timer triggering p_i" input event, and the scheduling *order* of
timers (not their absolute instants) is what the algorithms rely on.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, Protocol, Tuple, runtime_checkable

from repro.common.types import ProcessId

#: Opaque timer handle: whatever ``set_timer`` returns is valid input to
#: ``cancel_timer`` of the same backend, and nothing else may be assumed.
TimerHandle = Any


@runtime_checkable
class Transport(Protocol):
    """Backend capabilities behind :class:`~repro.sim.process.ProcessContext`.

    All methods take the acting process id explicitly — one transport
    instance serves every node of a cluster, and per-process facades
    (``ProcessContext``) curry their own pid in.
    """

    def now(self) -> float:
        """The transport clock, in simulated-time units (metrics only —
        see the module docstring for the full contract)."""
        ...

    def send(self, source: ProcessId, destination: ProcessId, payload: Any) -> None:
        """Send one packet over the unreliable network (may be lost)."""
        ...

    def send_many(
        self, source: ProcessId, payloads: Iterable[Tuple[ProcessId, Any]]
    ) -> int:
        """Send a burst of ``(destination, payload)`` pairs; returns the
        number of packets accepted onto the wire."""
        ...

    def set_timer(
        self,
        pid: ProcessId,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> TimerHandle:
        """Arm a one-shot timer firing after *delay* simulated-time units."""
        ...

    def cancel_timer(self, handle: TimerHandle) -> None:
        """Cancel a timer; cancelling an already-fired timer is a no-op."""
        ...

    def make_process_rng(self, pid: ProcessId) -> random.Random:
        """The per-process randomness stream.

        Backends must derive it from ``(root seed, "process", pid)`` via
        :func:`repro.common.rng.make_rng` so a node's local coin flips are
        identical across backends and across restarts of the same pid.
        """
        ...
