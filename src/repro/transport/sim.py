"""``SimTransport``: the deterministic simulator as a transport backend.

A thin adapter: every method is a single delegation to the owning
:class:`~repro.sim.simulator.Simulator`, and the per-process RNG derivation
is byte-for-byte the one the simulator always used
(``make_rng(seed, "process", pid)``).  The adapter therefore changes *no*
seed trajectory — snapshot capture/restore, the sharded simulator,
environment shaping and the audit warm-prefix paths all run through it
unmodified, which the trajectory-guard tests pin (bootstrap_n16 at seed 89
must keep its 1794 executed events / 1726 deliveries exactly).

Deep-copy note: the adapter holds only the simulator reference, so
``SimSnapshot``'s deepcopy carries it through the same memo as the simulator
itself — a restored snapshot's contexts point at the restored simulator's
transport, never the live one.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Iterable, TYPE_CHECKING, Tuple

from repro.common.rng import make_rng
from repro.common.types import ProcessId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import Simulator


class SimTransport:
    """Adapter presenting a :class:`Simulator` as a :class:`Transport`."""

    __slots__ = ("simulator",)

    def __init__(self, simulator: "Simulator") -> None:
        self.simulator = simulator

    def now(self) -> float:
        return self.simulator.now

    def send(self, source: ProcessId, destination: ProcessId, payload: Any) -> None:
        self.simulator.send(source, destination, payload)

    def send_many(
        self, source: ProcessId, payloads: Iterable[Tuple[ProcessId, Any]]
    ) -> int:
        return self.simulator.send_many(source, payloads)

    def set_timer(
        self,
        pid: ProcessId,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
    ) -> Any:
        return self.simulator.set_timer(pid, delay, callback, label=label)

    def cancel_timer(self, handle: Any) -> None:
        self.simulator.cancel_timer(handle)

    def make_process_rng(self, pid: ProcessId) -> random.Random:
        return make_rng(self.simulator.seed, "process", pid)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SimTransport(seed={self.simulator.seed})"
