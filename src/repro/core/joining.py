"""The joining mechanism — Algorithm 3.3 of the paper.

A joining processor (a *joiner*) may only become a participant once a
majority of the current configuration's members have granted it a *pass*
(``passQuery()``), and only while no reconfiguration is in progress.  Before
asking, the joiner resets its application state to defaults so that a
transiently corrupted newcomer cannot contaminate the system; when admitted,
it initializes its application state from the states collected from the
approving members.

The same object implements both roles: the joiner loop (executed while the
owner is not a participant) and the responder role (executed by configuration
members replying to ``Join`` requests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional

from repro.common.codec import wire_type
from repro.common.logging_utils import get_logger
from repro.common.types import ProcessId
from repro.core.recsa import RecSA
from repro.core.stale import is_real_config

_log = get_logger("joining")

FdProvider = Callable[[], FrozenSet[ProcessId]]
SendFn = Callable[[ProcessId, Any], None]

AdmissionPolicy = Callable[[ProcessId], bool]
"""``passQuery()``: application hook deciding whether a joiner may enter."""

StateProvider = Callable[[], Any]
"""Returns the responder's application state to ship to an admitted joiner."""

StateInitializer = Callable[[Dict[ProcessId, Any]], None]
"""``initVars()``: initialize application state from the members' states."""

StateResetter = Callable[[], None]
"""``resetVars()``: reset application state to defaults before joining."""


@wire_type
@dataclass(frozen=True)
class JoinRequest:
    """The joiner's ``"Join"`` message (line 13)."""

    sender: ProcessId


@wire_type
@dataclass(frozen=True)
class JoinResponse:
    """A configuration member's reply: a pass plus its application state."""

    sender: ProcessId
    granted: bool
    state: Any


# Default hook implementations as module-level functions (not lambdas):
# live protocol instances end up inside snapshots, which must pickle to
# disk — functions pickle by reference, closures not at all.
def _admit_everyone(joiner: ProcessId) -> bool:
    return True


def _no_state() -> Any:
    return None


def _ignore_states(states: Any) -> None:
    return None


def _reset_nothing() -> None:
    return None


class JoiningProtocol:
    """Per-processor instance of the joining mechanism."""

    def __init__(
        self,
        pid: ProcessId,
        recsa: RecSA,
        fd_provider: FdProvider,
        send: SendFn,
        admission_policy: Optional[AdmissionPolicy] = None,
        state_provider: Optional[StateProvider] = None,
        state_initializer: Optional[StateInitializer] = None,
        state_resetter: Optional[StateResetter] = None,
    ) -> None:
        self.pid = pid
        self.recsa = recsa
        self.fd_provider = fd_provider
        self.send = send
        self.admission_policy: AdmissionPolicy = admission_policy or _admit_everyone
        self.state_provider: StateProvider = state_provider or _no_state
        self.state_initializer: StateInitializer = state_initializer or _ignore_states
        self.state_resetter: StateResetter = state_resetter or _reset_nothing

        # Joiner-side collected passes and member states (lines 2, 5, 18).
        self.passes: Dict[ProcessId, bool] = {}
        self.member_states: Dict[ProcessId, Any] = {}
        self._reset_done = False

        # Diagnostics.
        self.join_requests_sent = 0
        self.responses_sent = 0
        self.joined = False

    # ------------------------------------------------------------------
    # Joiner role (procedure join(), lines 4-14)
    # ------------------------------------------------------------------
    def step(self) -> None:
        """One iteration of the joiner loop; a no-op for participants."""
        if self.recsa.is_participant():
            # Participants never execute the joiner body (line 6 guard).
            self.joined = True
            return
        if not self._reset_done:
            # ``resetVars()``: scrub possibly corrupted application state
            # before interacting with the system (line 7).
            self.state_resetter()
            self.passes.clear()
            self.member_states.clear()
            self._reset_done = True

        common_config = self.recsa.get_config()
        if (
            self.recsa.no_reco()
            and is_real_config(common_config)
            and len(common_config) > 0
            and self._has_majority_pass(common_config)
        ):
            # Lines 10-12: enough members approve and no reconfiguration is
            # running — initialize from their states and become a participant.
            self.state_initializer(dict(self.member_states))
            if self.recsa.participate():
                self.joined = True
                return

        # Line 13: keep requesting until admitted.
        trusted = frozenset(self.fd_provider()) | {self.pid}
        for pid in trusted:
            if pid != self.pid:
                self.send(pid, JoinRequest(sender=self.pid))
                self.join_requests_sent += 1

    def _has_majority_pass(self, config: FrozenSet[ProcessId]) -> bool:
        trusted = frozenset(self.fd_provider()) | {self.pid}
        approvals = [
            pid
            for pid in config & trusted
            if self.passes.get(pid, False)
        ]
        return len(approvals) > len(config) / 2

    # ------------------------------------------------------------------
    # Responder role (lines 15-16)
    # ------------------------------------------------------------------
    def on_join_request(self, request: JoinRequest) -> None:
        """A configuration member answers a ``Join`` request."""
        current = self.recsa.get_config()
        is_member = (
            self.recsa.is_participant()
            and is_real_config(current)
            and self.pid in current
        )
        if not is_member:
            return
        if not self.recsa.no_reco():
            # During a reconfiguration passes are withheld (and effectively
            # retracted, since the joiner keeps overwriting with the latest
            # response).
            self.send(
                request.sender,
                JoinResponse(sender=self.pid, granted=False, state=None),
            )
            self.responses_sent += 1
            return
        granted = bool(self.admission_policy(request.sender))
        self.send(
            request.sender,
            JoinResponse(sender=self.pid, granted=granted, state=self.state_provider()),
        )
        self.responses_sent += 1

    # ------------------------------------------------------------------
    # Joiner-side response handling (lines 17-18)
    # ------------------------------------------------------------------
    def on_join_response(self, response: JoinResponse) -> None:
        """Record a member's pass and state (joiners only)."""
        if self.recsa.is_participant():
            return
        self.passes[response.sender] = bool(response.granted)
        if response.granted:
            self.member_states[response.sender] = response.state
        else:
            self.member_states.pop(response.sender, None)

    # ------------------------------------------------------------------
    # Dispatch helper used by the composed scheme
    # ------------------------------------------------------------------
    def on_message(self, sender: ProcessId, message: Any) -> bool:
        """Route joining-mechanism messages; returns True when handled."""
        if isinstance(message, JoinRequest):
            self.on_join_request(message)
            return True
        if isinstance(message, JoinResponse):
            self.on_join_response(message)
            return True
        return False
