"""The composed reconfiguration scheme (recSA + recMA + joining).

The paper presents the two reconfiguration layers and the joining mechanism
as a single "black box" to the application (Figure 1).  This module wires the
three per-processor objects together, exposing the application-facing
interface:

* ``get_config()`` / ``no_reco()`` — the current configuration and whether it
  is stable (from recSA);
* ``request_reconfiguration(set)`` — an explicit delicate reconfiguration
  (delegates to recSA's ``estab``; the virtual-synchrony application's
  coordinator uses this, Algorithm 4.6);
* the joining interface — ``passQuery()`` admission hook and state
  transfer callbacks;
* ``step()`` / ``on_message()`` — plumbing called by the owning simulated
  process once per do-forever iteration / per received message.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterable, Optional

from repro.common.types import Configuration, NOT_PARTICIPANT, ProcessId
from repro.core.joining import (
    AdmissionPolicy,
    JoiningProtocol,
    JoinRequest,
    JoinResponse,
    StateInitializer,
    StateProvider,
    StateResetter,
)
from repro.core.prediction import PredictionPolicy
from repro.core.recma import RecMA, RecMAMessage
from repro.core.recsa import RecSA, RecSADelta, RecSADigest, RecSAMessage
from repro.core.stale import is_real_config

FdProvider = Callable[[], FrozenSet[ProcessId]]
SendFn = Callable[[ProcessId, Any], None]
SendManyFn = Callable[[Any], Any]


class ReconfigurationScheme:
    """Per-processor facade over recSA, recMA and the joining mechanism."""

    def __init__(
        self,
        pid: ProcessId,
        fd_provider: FdProvider,
        send: SendFn,
        initial_config: Any = None,
        prediction_policy: Optional[PredictionPolicy] = None,
        admission_policy: Optional[AdmissionPolicy] = None,
        state_provider: Optional[StateProvider] = None,
        state_initializer: Optional[StateInitializer] = None,
        state_resetter: Optional[StateResetter] = None,
        send_many: Optional[SendManyFn] = None,
        gossip_refresh_interval: Optional[int] = None,
        gossip_deltas: Optional[bool] = None,
    ) -> None:
        self.pid = pid
        self.fd_provider = fd_provider
        recsa_kwargs: Dict[str, Any] = {}
        recma_kwargs: Dict[str, Any] = {}
        if gossip_refresh_interval is not None:
            recsa_kwargs["gossip_refresh_interval"] = gossip_refresh_interval
            recma_kwargs["gossip_refresh_interval"] = gossip_refresh_interval
        if gossip_deltas is not None:
            recsa_kwargs["gossip_deltas"] = gossip_deltas
        self.recsa = RecSA(
            pid=pid,
            fd_provider=fd_provider,
            send=send,
            initial_config=initial_config,
            send_many=send_many,
            **recsa_kwargs,
        )
        self.recma = RecMA(
            pid=pid,
            recsa=self.recsa,
            fd_provider=fd_provider,
            send=send,
            policy=prediction_policy,
            **recma_kwargs,
        )
        self.joining = JoiningProtocol(
            pid=pid,
            recsa=self.recsa,
            fd_provider=fd_provider,
            send=send,
            admission_policy=admission_policy,
            state_provider=state_provider,
            state_initializer=state_initializer,
            state_resetter=state_resetter,
        )

    # ------------------------------------------------------------------
    # Application-facing interface
    # ------------------------------------------------------------------
    def get_config(self) -> Any:
        """The current configuration (``⊥``/``]`` while unstable/joining)."""
        return self.recsa.get_config()

    def configuration(self) -> Optional[Configuration]:
        """The current configuration as a set, or ``None`` when unavailable."""
        value = self.recsa.get_config()
        return frozenset(value) if is_real_config(value) else None

    def no_reco(self) -> bool:
        """True when no reconfiguration is currently in progress."""
        return self.recsa.no_reco()

    def is_participant(self) -> bool:
        """True once this processor has become a participant."""
        return self.recsa.is_participant()

    def is_member(self) -> bool:
        """True when this processor belongs to the current configuration."""
        config = self.configuration()
        return config is not None and self.pid in config

    def request_reconfiguration(self, members: Iterable[ProcessId]) -> bool:
        """Explicitly request a delicate reconfiguration to *members*."""
        return self.recsa.estab(members)

    # ------------------------------------------------------------------
    # Plumbing called by the owning process
    # ------------------------------------------------------------------
    def step(self) -> None:
        """One do-forever iteration of all three layers."""
        self.recsa.step()
        self.recma.step()
        self.joining.step()

    def on_message(self, sender: ProcessId, message: Any) -> bool:
        """Dispatch a received scheme message; returns True when handled."""
        if isinstance(message, RecSAMessage):
            self.recsa.on_message(sender, message)
            return True
        if isinstance(message, RecSADelta):
            self.recsa.on_delta(sender, message)
            return True
        if isinstance(message, RecSADigest):
            self.recsa.on_digest(sender, message)
            return True
        if isinstance(message, RecMAMessage):
            self.recma.on_message(sender, message)
            return True
        if isinstance(message, (JoinRequest, JoinResponse)):
            if isinstance(message, JoinRequest):
                # Join requests only ever originate from non-participants
                # (Algorithm 3.3 line 6), so they double as evidence that the
                # sender's config field is ``]``.  Recording that here keeps
                # the participant set accurate even when a transient fault
                # flipped a former participant into a joiner — otherwise the
                # stale "participant" entry would block the delicate
                # replacement barrier forever.
                self.recsa.config[sender] = NOT_PARTICIPANT
            return self.joining.on_message(sender, message)
        return False

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Combined diagnostic snapshot of the three layers."""
        return {
            "recsa": self.recsa.snapshot(),
            "recma": self.recma.snapshot(),
            "joined": self.joining.joined,
        }
