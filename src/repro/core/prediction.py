"""Configuration-evaluation (prediction) policies — the ``evalConf()`` hook.

The recMA layer treats the decision of *when* a delicate reconfiguration is
useful as an application concern and consults a black-box prediction function
``evalConf()`` (Algorithm 3.2, line 16).  The paper suggests a simple policy
— "reconfigure when a fraction (e.g. 1/4th) of the members of a configuration
appear to have failed" — and allows arbitrary application-defined ones.

Each policy here is a callable object: ``policy(configuration, trusted)``
returns ``True`` when the caller should vote for a reconfiguration, where
``trusted`` is the caller's current failure-detector view.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, FrozenSet, Iterable, Optional

from repro.common.types import Configuration, ProcessId


class PredictionPolicy(ABC):
    """Interface of the ``evalConf()`` black box."""

    @abstractmethod
    def __call__(self, configuration: Configuration, trusted: FrozenSet[ProcessId]) -> bool:
        """Return True when a reconfiguration of *configuration* is advisable."""


class NeverReconfigure(PredictionPolicy):
    """Never ask for a reconfiguration (reconfiguration only on majority loss)."""

    def __call__(self, configuration: Configuration, trusted: FrozenSet[ProcessId]) -> bool:
        return False


class AlwaysReconfigure(PredictionPolicy):
    """Always ask for a reconfiguration (stress-test policy used in tests)."""

    def __call__(self, configuration: Configuration, trusted: FrozenSet[ProcessId]) -> bool:
        return True


class FractionCrashedPolicy(PredictionPolicy):
    """Reconfigure when at least *fraction* of the members appear crashed.

    This is the paper's example policy ("once 1/4th of the members are not
    trusted").
    """

    def __init__(self, fraction: float = 0.25) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = fraction

    def __call__(self, configuration: Configuration, trusted: FrozenSet[ProcessId]) -> bool:
        if not configuration:
            return False
        missing = len(configuration - trusted)
        return missing >= self.fraction * len(configuration)


class MembershipDriftPolicy(PredictionPolicy):
    """Reconfigure when the participant set has drifted far from the members.

    Useful when many new processors joined: the configuration still has a
    healthy majority, but basing quorums on a more recent participant set
    improves dependability.  The policy votes for reconfiguration when fewer
    than *overlap* of the trusted processors are configuration members.
    """

    def __init__(self, overlap: float = 0.5) -> None:
        if not 0.0 < overlap <= 1.0:
            raise ValueError("overlap must be in (0, 1]")
        self.overlap = overlap

    def __call__(self, configuration: Configuration, trusted: FrozenSet[ProcessId]) -> bool:
        if not trusted:
            return False
        members_alive = len(configuration & trusted)
        return members_alive < self.overlap * len(trusted)


class CallbackPolicy(PredictionPolicy):
    """Adapt an arbitrary callable into a :class:`PredictionPolicy`."""

    def __init__(
        self, callback: Callable[[Configuration, FrozenSet[ProcessId]], bool]
    ) -> None:
        self.callback = callback

    def __call__(self, configuration: Configuration, trusted: FrozenSet[ProcessId]) -> bool:
        return bool(self.callback(configuration, trusted))
