"""Classification of stale information (Definition 3.1 of the paper).

The recSA layer recognizes four types of stale information in a processor's
local state; any of them starts a configuration reset (brute-force
stabilization).  The classification lives in its own module so that the
fault-injection workloads and the tests can generate / assert on specific
stale-information types independently of the algorithm object.

* **type-1** — a notification in phase 0 carries a non-empty proposal set.
* **type-2** — a configuration field holds ``⊥`` or the empty set, or two
  processors hold conflicting non-empty configurations.
* **type-3** — replacement bookkeeping is inconsistent: participants in
  phase 2 disagree on the proposed set, or a phase-2 notification is
  incompatible with the observer's own replacement state.
* **type-4** — the local views agree yet the configuration contains no
  active participant.

Reconstruction note
-------------------
The technical report additionally lists a "degree gap larger than one" test
and an "ahead of me but not in allSeen" test under type-3.  Both compare a
processor's *own, current* phase against the (possibly reordered, delayed)
phase last received from a peer; taken literally they fire spuriously during
perfectly legal replacements whenever an old message overtakes a newer one,
nullifying the closure property the paper proves.  We therefore implement the
robust subset above — it is sufficient for convergence because any state the
dropped tests would catch either makes no progress (and is then caught by the
type-2 conflict test once the blocked notification owner is reset by recMA)
or is caught by the phase-2 compatibility test below.  The deviation is also
recorded in DESIGN.md.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.common.types import (
    BOTTOM,
    NOT_PARTICIPANT,
    Configuration,
    Phase,
    ProcessId,
    Proposal,
)


class StaleInfoType(enum.Enum):
    """The four stale-information categories of Definition 3.1."""

    TYPE_1 = "type-1"
    TYPE_2 = "type-2"
    TYPE_3 = "type-3"
    TYPE_4 = "type-4"


def is_real_config(value: object) -> bool:
    """True when *value* is an actual (frozen) set of processor identifiers."""
    return isinstance(value, frozenset)


def has_type1(proposals: Dict[ProcessId, Proposal], scope: Iterable[ProcessId]) -> bool:
    """Type-1: a notification whose phase and proposal set are inconsistent.

    Two malformed shapes exist: a phase-0 notification carrying a non-``⊥``
    set (the case Definition 3.1 spells out), and — symmetrically — a
    phase-1/phase-2 notification carrying ``⊥`` or the empty set (a proposal
    with nothing to install, which can only be produced by a transient
    fault since ``estab()`` rejects empty sets).
    """
    for pid in scope:
        prp = proposals.get(pid)
        if prp is None:
            continue
        if prp.phase is Phase.IDLE and prp.members is not None:
            return True
        if prp.phase is not Phase.IDLE and (prp.members is None or len(prp.members) == 0):
            return True
    return False


def has_type2(configs: Dict[ProcessId, object], scope: Iterable[ProcessId]) -> bool:
    """Type-2 (reset propagation): a config field holding ``⊥`` or ∅.

    Conflicts between two different *real* configurations are deliberately
    **not** part of this test: the do-forever loop only nullifies conflicting
    configurations while no replacement notification is present (line 26 of
    Algorithm 3.1), because a delicate replacement legitimately goes through
    a transient state in which early adopters already installed the new
    configuration while laggards still hold the old one.  Conflict detection
    therefore lives in :meth:`repro.core.recsa.RecSA._brute_force_step`.
    """
    for pid in scope:
        value = configs.get(pid, NOT_PARTICIPANT)
        if value is BOTTOM:
            return True
        if is_real_config(value) and len(value) == 0:
            return True
    return False


def has_config_conflict(configs: Dict[ProcessId, object], scope: Iterable[ProcessId]) -> bool:
    """Two trusted processors hold different non-``⊥``, non-``]`` configurations."""
    real_configs: Set[Configuration] = set()
    for pid in scope:
        value = configs.get(pid, NOT_PARTICIPANT)
        if is_real_config(value) and len(value) > 0:
            real_configs.add(value)
    return len(real_configs) > 1


def has_type3(
    own: ProcessId,
    own_config: object,
    proposals: Dict[ProcessId, Proposal],
    participants: Iterable[ProcessId],
) -> bool:
    """Type-3: inconsistent replacement (phase-2) bookkeeping.

    Two participants in phase 2 proposing *different* sets is stale
    information: in any legal execution phase 2 is only entered after every
    participant selected the single lexically-maximal notification.

    A *single* unexplained phase-2 notification, by contrast, is not treated
    as stale: the delicate-replacement automaton adopts it and finishes the
    replacement uniformly, which is the resolution Lemma 3.14 of the paper
    describes (the surviving phase-2 notification eventually becomes the
    quorum configuration).
    """
    participants = list(participants)
    phase2_sets = {
        prp.members
        for pid in participants
        if (prp := proposals.get(pid)) is not None and prp.phase is Phase.REPLACE
    }
    return len(phase2_sets) > 1


def has_type4(
    own_config: object,
    fd_views: Dict[ProcessId, FrozenSet[ProcessId]],
    own_view: FrozenSet[ProcessId],
    participants: FrozenSet[ProcessId],
    own: ProcessId,
) -> bool:
    """Type-4: views agree but the configuration has no active participant.

    The agreement pre-condition (every participant's last-received failure
    detector equals the observer's own) avoids false positives while views
    are still settling — exactly the guard of Definition 3.1.
    """
    if not is_real_config(own_config):
        return False
    for pid in participants:
        if pid == own:
            continue
        view = fd_views.get(pid)
        if view is None or frozenset(view) != frozenset(own_view):
            return False
    return len(frozenset(own_config) & participants) == 0


def classify_stale_information(
    own: ProcessId,
    configs: Dict[ProcessId, object],
    proposals: Dict[ProcessId, Proposal],
    fd_views: Dict[ProcessId, FrozenSet[ProcessId]],
    own_view: FrozenSet[ProcessId],
    trusted: FrozenSet[ProcessId],
    participants: FrozenSet[ProcessId],
) -> List[StaleInfoType]:
    """Return every stale-information type present in the given local state."""
    found: List[StaleInfoType] = []
    if has_type1(proposals, trusted):
        found.append(StaleInfoType.TYPE_1)
    if has_type2(configs, trusted):
        found.append(StaleInfoType.TYPE_2)
    if has_type3(own, configs.get(own), proposals, participants):
        found.append(StaleInfoType.TYPE_3)
    if has_type4(configs.get(own), fd_views, own_view, participants, own):
        found.append(StaleInfoType.TYPE_4)
    return found
