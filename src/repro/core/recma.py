"""Reconfiguration Management — Algorithm 3.2 of the paper.

The recMA layer decides *when* a (delicate) reconfiguration is needed and
triggers it through recSA's ``estab()`` interface.  Two situations lead to a
trigger:

* **majority failure** — the caller cannot see a trusted majority of the
  current configuration, and neither can any processor in its *core* (the
  intersection of the participant sets reported by the participants it
  trusts).  The *majority-supportive core* assumption (Definition 3.2) makes
  this test safe: as long as a real majority is alive, at least one core
  member keeps reporting ``noMaj = False`` and no spurious trigger happens;
* **prediction** — the application-provided ``evalConf()`` policy asks for a
  reconfiguration and a majority of the configuration members agree.

Each processor can trigger at most once per event: after calling ``estab()``
the local flags are flushed, and subsequent iterations observe
``noReco() = False`` until the replacement completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Optional, Tuple

from repro.common.codec import wire_type
from repro.common.logging_utils import get_logger
from repro.common.types import Configuration, ProcessId
from repro.core.prediction import NeverReconfigure, PredictionPolicy
from repro.core.recsa import DEFAULT_GOSSIP_REFRESH_INTERVAL, RecSA
from repro.core.stale import is_real_config

_log = get_logger("recma")

FdProvider = Callable[[], FrozenSet[ProcessId]]
SendFn = Callable[[ProcessId, Any], None]


@wire_type
@dataclass(frozen=True)
class RecMAMessage:
    """The ``⟨noMaj, needReconf⟩`` exchange of Algorithm 3.2 (lines 19-20)."""

    sender: ProcessId
    no_maj: bool
    need_reconf: bool


class RecMA:
    """Per-processor instance of the Reconfiguration Management layer."""

    def __init__(
        self,
        pid: ProcessId,
        recsa: RecSA,
        fd_provider: FdProvider,
        send: SendFn,
        policy: Optional[PredictionPolicy] = None,
        gossip_refresh_interval: int = DEFAULT_GOSSIP_REFRESH_INTERVAL,
    ) -> None:
        self.pid = pid
        self.recsa = recsa
        self.fd_provider = fd_provider
        self.send = send
        self.policy: PredictionPolicy = policy or NeverReconfigure()
        self.gossip_refresh_interval = max(1, int(gossip_refresh_interval))

        # Replicated flag arrays (own entry + most recently received values).
        self.no_maj: Dict[ProcessId, bool] = {pid: False}
        self.need_reconf: Dict[ProcessId, bool] = {pid: False}
        self.prev_config: Optional[Configuration] = None

        # Change-detected gossip bookkeeping: the ⟨noMaj, needReconf⟩ pair
        # last sent per peer plus a round counter backing the periodic
        # unconditional refresh (the flags are idempotent state, so a lost
        # packet is repaired by the next refresh within K rounds).
        self._sent_flags: Dict[ProcessId, Tuple[bool, bool]] = {}
        self._rounds_since_sent: Dict[ProcessId, int] = {}

        # Experiment counters (Lemma 3.18 bounds the spurious ones).
        self.trigger_count = 0
        self.majority_triggers = 0
        self.prediction_triggers = 0
        self.broadcasts_sent = 0
        self.broadcasts_skipped = 0

    # ------------------------------------------------------------------
    # Macros (lines 3-5)
    # ------------------------------------------------------------------
    def core(self) -> FrozenSet[ProcessId]:
        """``core()``: intersection of the participant sets reported by
        the participants the owner trusts (line 4)."""
        part = self.recsa.participants()
        result: Optional[frozenset] = None
        for pid in part:
            if pid == self.pid:
                reported = part
            else:
                reported = self.recsa.part.get(pid)
                if reported is None:
                    # Nothing reported yet: a missing reading cannot support a
                    # majority-failure claim, so it contributes conservatively
                    # by shrinking the core to nothing.
                    return frozenset()
            result = frozenset(reported) if result is None else result & frozenset(reported)
        return result or frozenset()

    def flush_flags(self) -> None:
        """``flushFlags()``: reset both flag arrays to all-False (line 5)."""
        for pid in list(self.no_maj):
            self.no_maj[pid] = False
        for pid in list(self.need_reconf):
            self.need_reconf[pid] = False
        self.no_maj[self.pid] = False
        self.need_reconf[self.pid] = False

    # ------------------------------------------------------------------
    # The do-forever loop (lines 6-19)
    # ------------------------------------------------------------------
    def step(self) -> None:
        """One iteration of the do-forever loop (participants only)."""
        if not self.recsa.is_participant():
            return
        current = self.recsa.get_config()
        self.no_maj[self.pid] = False
        self.need_reconf[self.pid] = False

        if self.prev_config is not None and is_real_config(current):
            if self.prev_config != current:
                # A reconfiguration completed since our last look: stale votes
                # gathered for the previous configuration are meaningless.
                self.flush_flags()

        if self.recsa.no_reco() and is_real_config(current) and len(current) > 0:
            self.prev_config = frozenset(current)
            self._evaluate(frozenset(current))

        self._broadcast()

    def _evaluate(self, current: Configuration) -> None:
        trusted = frozenset(self.fd_provider()) | {self.pid}
        majority = len(current) // 2 + 1

        # Line 12: can we see a trusted majority of the configuration?
        if len(current & trusted) < majority:
            self.no_maj[self.pid] = True

        core = self.core()
        if (
            self.no_maj[self.pid]
            and len(core) > 1
            and all(self.no_maj.get(pid, False) for pid in core)
        ):
            # Lines 13-14: majority collapse agreed by the whole core.
            self._trigger("majority")
            return

        # Lines 16-18: prediction-driven reconfiguration.
        self.need_reconf[self.pid] = bool(self.policy(current, trusted))
        if self.need_reconf[self.pid]:
            supporters = [
                pid
                for pid in current & trusted
                if self.need_reconf.get(pid, False)
            ]
            if len(supporters) > len(current) / 2:
                self._trigger("prediction")

    def _trigger(self, reason: str) -> None:
        proposal = self.recsa.participants()
        accepted = self.recsa.estab(proposal)
        if accepted:
            self.trigger_count += 1
            if reason == "majority":
                self.majority_triggers += 1
            else:
                self.prediction_triggers += 1
        self.flush_flags()

    def _broadcast(self) -> None:
        flags = (self.no_maj[self.pid], self.need_reconf[self.pid])
        refresh = self.gossip_refresh_interval
        participants = self.recsa.participants()
        if len(self._sent_flags) > len(participants):
            # Drop bookkeeping for departed peers (mirrors recSA's cleanup in
            # _clean_after_crashes) so churn cannot grow the dicts unboundedly.
            for pid in list(self._sent_flags):
                if pid not in participants:
                    del self._sent_flags[pid]
                    self._rounds_since_sent.pop(pid, None)
        message: Optional[RecMAMessage] = None
        for pid in participants:
            if pid == self.pid:
                continue
            rounds = self._rounds_since_sent.get(pid, refresh)
            if (
                refresh > 1
                and rounds + 1 < refresh
                and self._sent_flags.get(pid) == flags
            ):
                self._rounds_since_sent[pid] = rounds + 1
                self.broadcasts_skipped += 1
                continue
            if message is None:
                message = RecMAMessage(
                    sender=self.pid, no_maj=flags[0], need_reconf=flags[1]
                )
            self.send(pid, message)
            self._sent_flags[pid] = flags
            self._rounds_since_sent[pid] = 0
            self.broadcasts_sent += 1

    # ------------------------------------------------------------------
    # Message receipt (line 20)
    # ------------------------------------------------------------------
    def on_message(self, sender: ProcessId, message: RecMAMessage) -> None:
        """Store a peer's ``⟨noMaj, needReconf⟩`` flags (participants only)."""
        if not self.recsa.is_participant():
            return
        self.no_maj[sender] = bool(message.no_maj)
        self.need_reconf[sender] = bool(message.need_reconf)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Structured view of the layer's state for tests and debugging."""
        return {
            "pid": self.pid,
            "no_maj": self.no_maj.get(self.pid, False),
            "need_reconf": self.need_reconf.get(self.pid, False),
            "prev_config": self.prev_config,
            "triggers": self.trigger_count,
        }
