"""The self-stabilizing reconfiguration scheme (the paper's contribution).

Three cooperating layers, composed per-processor by
:class:`repro.core.scheme.ReconfigurationScheme`:

* :class:`repro.core.recsa.RecSA` — Reconfiguration Stability Assurance
  (Algorithm 3.1): conflict detection, brute-force stabilization and the
  delicate three-phase configuration-replacement automaton.
* :class:`repro.core.recma.RecMA` — Reconfiguration Management
  (Algorithm 3.2): decides *when* a delicate reconfiguration is needed —
  majority collapse or a majority-approved prediction — and triggers it via
  ``estab()``.
* :class:`repro.core.joining.JoiningProtocol` — the joining mechanism
  (Algorithm 3.3): application-controlled admission of new participants.
"""

from repro.core.quorum import MajorityQuorumSystem, QuorumSystem
from repro.core.prediction import (
    PredictionPolicy,
    NeverReconfigure,
    AlwaysReconfigure,
    FractionCrashedPolicy,
    MembershipDriftPolicy,
    CallbackPolicy,
)
from repro.core.recsa import RecSA, RecSAMessage
from repro.core.recma import RecMA, RecMAMessage
from repro.core.joining import JoiningProtocol, JoinRequest, JoinResponse, AdmissionPolicy
from repro.core.scheme import ReconfigurationScheme
from repro.core.stale import StaleInfoType, classify_stale_information

__all__ = [
    "MajorityQuorumSystem",
    "QuorumSystem",
    "PredictionPolicy",
    "NeverReconfigure",
    "AlwaysReconfigure",
    "FractionCrashedPolicy",
    "MembershipDriftPolicy",
    "CallbackPolicy",
    "RecSA",
    "RecSAMessage",
    "RecMA",
    "RecMAMessage",
    "JoiningProtocol",
    "JoinRequest",
    "JoinResponse",
    "AdmissionPolicy",
    "ReconfigurationScheme",
    "StaleInfoType",
    "classify_stale_information",
]
