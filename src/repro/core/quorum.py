"""Quorum-system abstraction.

The paper uses majorities ("the simplest form of a quorum system") but notes
the scheme generalizes to any quorum system, provided processors share a
function that, given a set of processors, generates the quorum system.  This
module provides that hook: :class:`QuorumSystem` is the interface, and
:class:`MajorityQuorumSystem` is the default implementation used everywhere.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from itertools import combinations
from typing import FrozenSet, Iterable, Iterator, List

from repro.common.types import Configuration, ProcessId, make_config


class QuorumSystem(ABC):
    """A quorum system generated over a configuration of processors."""

    def __init__(self, configuration: Iterable[ProcessId]) -> None:
        self.configuration: Configuration = make_config(configuration)

    @abstractmethod
    def is_quorum(self, subset: Iterable[ProcessId]) -> bool:
        """True when *subset* ∩ configuration contains a quorum."""

    @abstractmethod
    def quorum_size(self) -> int:
        """The size of the smallest quorum."""

    def quorums(self) -> Iterator[FrozenSet[ProcessId]]:
        """Enumerate the minimal quorums (used by tests; may be exponential)."""
        size = self.quorum_size()
        for combo in combinations(sorted(self.configuration), size):
            yield frozenset(combo)

    def intersects(self) -> bool:
        """Check the defining property: every pair of quorums intersects."""
        quorum_list: List[FrozenSet[ProcessId]] = list(self.quorums())
        return all(a & b for a in quorum_list for b in quorum_list)


class MajorityQuorumSystem(QuorumSystem):
    """Majorities of the configuration (the paper's default quorum system)."""

    def quorum_size(self) -> int:
        return len(self.configuration) // 2 + 1

    def is_quorum(self, subset: Iterable[ProcessId]) -> bool:
        members = frozenset(subset) & self.configuration
        return len(members) >= self.quorum_size()
