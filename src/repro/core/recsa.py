"""Reconfiguration Stability Assurance — Algorithm 3.1 of the paper.

The recSA layer guarantees that

1. all active processors eventually hold identical copies of a single
   configuration,
2. when participants ask to replace the configuration (``estab(set)``), a
   single proposal is selected and installed uniformly, and
3. joining processors can eventually become participants.

It combines two techniques:

* **brute-force stabilization** — stale information (Definition 3.1) starts a
  *configuration reset*: the ``⊥`` value propagates to every ``config`` field
  and, once every trusted processor reports the same failure-detector view,
  each processor adopts its set of trusted processors as the configuration;
* **delicate replacement** — a three-phase automaton (Figure 2): phase 1
  deterministically selects the lexically-maximal proposal, phase 2 replaces
  the configuration with it, and the system then returns to phase 0.

Reconstruction notes
--------------------
The pseudo-code of the technical report is followed closely, with the
following documented reconstructions (the report's listing is garbled in a
few places — see DESIGN.md):

* ``noReco()`` returns **True when no reconfiguration/recovery is in
  progress** (the polarity used by Algorithms 3.2/3.3/4.x and by the prose of
  those sections); the invariant tests listed under line 12 are the evidence
  that a reconfiguration *is* in progress.
* The phase automaton is driven by an explicit barrier: a processor adopts
  the lexically-maximal phase-1 notification as soon as it observes one, and
  advances a phase only after every trusted participant (a) reports the same
  participant set and notification — or has demonstrably already advanced —
  and (b) has echoed back the processor's own current values.  ``all`` /
  ``allSeen`` record the barrier progress exactly as in the paper.
* The stale-information tests that compare a peer's *received* phase against
  the local current phase are implemented in their robust form (see
  :mod:`repro.core.stale`).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.common.codec import wire_type
from repro.common.logging_utils import get_logger
from repro.common.types import (
    BOTTOM,
    DEFAULT_PROPOSAL,
    NOT_PARTICIPANT,
    Configuration,
    Phase,
    ProcessId,
    Proposal,
    make_config,
)
from repro.core.stale import StaleInfoType, classify_stale_information, is_real_config

_log = get_logger("recsa")

FdProvider = Callable[[], FrozenSet[ProcessId]]
SendFn = Callable[[ProcessId, Any], None]
SendManyFn = Callable[[List[Tuple[ProcessId, Any]]], Any]

#: Default period (in do-forever iterations) of the unconditional full
#: re-broadcast that backs the change-detected gossip.  Re-sending the whole
#: state every K rounds — even to peers that have provably echoed the current
#: values — preserves the paper's fair-communication assumption: any state
#: divergence (lost packet, corrupted echo bookkeeping) is repaired within K
#: rounds, so every convergence bound merely stretches by a constant factor.
#: ``1`` disables change detection entirely (the seed behaviour).
DEFAULT_GOSSIP_REFRESH_INTERVAL = 5

#: Delta-gossip wire discipline (see :meth:`RecSA._broadcast`): every
#: ``FULL_RESEND_PERIOD``-th actual send to a peer is an unconditional full
#: vector, bounding how long a silently diverged copy can survive on the
#: compact paths; receivers re-derive the digest of their stored copy from
#: scratch every ``DIGEST_VERIFY_PERIOD``-th compact receipt (repairing
#: arbitrary corruption of the stored arrays in bounded time); a sender that
#: has re-sent the same state version ``ESCALATION_THRESHOLD`` times without
#: the peer's echo reflecting it falls back to a full vector.
FULL_RESEND_PERIOD = 4
DIGEST_VERIFY_PERIOD = 4
ESCALATION_THRESHOLD = 2


@wire_type
@dataclass(frozen=True)
class EchoTriple:
    """The ``echo`` field: a reflection of the peer's last received values."""

    part: FrozenSet[ProcessId]
    prp: Proposal
    all_flag: bool


@wire_type
@dataclass(frozen=True)
class RecSAMessage:
    """State broadcast at the end of every do-forever iteration (line 29).

    ``echo`` reflects the *receiver's* most recently received values back to
    it, which is how a participant learns that its peers have seen its
    current notification.
    """

    sender: ProcessId
    fd: FrozenSet[ProcessId]
    part: FrozenSet[ProcessId]
    config: Any  # Configuration | BOTTOM | NOT_PARTICIPANT
    prp: Proposal
    all_flag: bool
    echo: Optional[EchoTriple]
    #: Delta-gossip chain seed (trailing defaults keep every historical
    #: constructor call — including forged stale messages — valid; a message
    #: without them simply does not establish a delta chain).
    version: Optional[int] = None
    digest: Optional[int] = None


@wire_type
@dataclass(frozen=True)
class RecSADelta:
    """Compact gossip: only the core fields that changed since the last send.

    ``changes`` is a tuple of ``(field_name, absolute_value)`` pairs over the
    message core (``fd``/``part``/``config``/``prp``/``all_flag``), computed
    against the *base*: the core the sender last materialized to this peer.
    ``base_digest`` is the CRC of that base and ``digest`` the CRC of the
    sender's entire new core.  A delta is applied only when the receiver's
    stored copy provably equals the base (chain intact, or base digest
    matches from scratch) — so the stored copy is always a *complete* core
    the sender once held, never a hybrid of two versions.  A delta whose
    base cannot be verified (reordered burst, lost chain, corrupted copy)
    is dropped; the sender repairs with a full vector within a bounded
    number of rounds (escalation or the periodic full resend).
    """

    sender: ProcessId
    version: int
    base_version: int
    base_digest: int
    changes: Tuple[Tuple[str, Any], ...]
    digest: int
    echo: Optional[EchoTriple]


@wire_type
@dataclass(frozen=True)
class RecSADigest:
    """Compact periodic refresh: nothing changed, here is proof.

    Carries the per-peer ``echo`` (which changes independently of the core)
    plus the core's version and digest so the receiver can confirm its copy
    is current — or discover it is not and force the full-vector fallback.
    """

    sender: ProcessId
    version: int
    digest: int
    echo: Optional[EchoTriple]


def _canonical_core(core: Tuple[Any, ...]) -> Tuple[Any, ...]:
    trusted, part, config, prp, all_flag = core
    if config is BOTTOM:
        config_c: Any = "<bottom>"
    elif config is NOT_PARTICIPANT:
        config_c = "<not-participant>"
    else:
        config_c = tuple(sorted(config))
    members = None if prp.members is None else tuple(sorted(prp.members))
    return (
        tuple(sorted(trusted)),
        tuple(sorted(part)),
        config_c,
        (prp.phase.value, members),
        bool(all_flag),
    )


def compute_core_digest(core: Tuple[Any, ...]) -> int:
    """CRC32 over the canonical form of a broadcast core.

    A checksum, not a cryptographic commitment: the adversary model for the
    digest path is transient faults (lost packets, corrupted state), not an
    equivocating sender — Byzantine senders are modelled by the interceptor
    layer, and honest-node invariants never depend on a traitor's digests.
    """
    return zlib.crc32(repr(_canonical_core(core)).encode("utf-8"))

#: Field order of the broadcast core, aligned with the core-key tuple.
_CORE_FIELDS = ("fd", "part", "config", "prp", "all_flag")


class RecSA:
    """Per-processor instance of the Reconfiguration Stability Assurance layer.

    Parameters
    ----------
    pid:
        The owning processor's identifier.
    fd_provider:
        Zero-argument callable returning the current trusted set of the
        owner's failure detector (always contains the owner).
    send:
        Callable ``send(destination, message)`` used for the end-of-loop
        broadcast; messages need only fair (not reliable) delivery.
    initial_config:
        Optional configuration to start from.  ``None`` boots the processor
        as a non-participant (the paper's interrupt handler, line 31); the
        special value :data:`BOTTOM` boots it into a configuration reset,
        which is how a fresh cluster bootstraps itself through the
        brute-force technique.
    """

    def __init__(
        self,
        pid: ProcessId,
        fd_provider: FdProvider,
        send: SendFn,
        initial_config: Any = None,
        send_many: Optional[SendManyFn] = None,
        gossip_refresh_interval: int = DEFAULT_GOSSIP_REFRESH_INTERVAL,
        gossip_deltas: bool = True,
    ) -> None:
        self.pid = pid
        self.fd_provider = fd_provider
        self.send = send
        self.send_many = send_many
        self.gossip_refresh_interval = max(1, int(gossip_refresh_interval))
        self.gossip_deltas = bool(gossip_deltas)

        # Replicated arrays (own entry + most recently received per peer).
        self.config: Dict[ProcessId, Any] = {}
        self.fd: Dict[ProcessId, FrozenSet[ProcessId]] = {}
        self.part: Dict[ProcessId, FrozenSet[ProcessId]] = {}
        self.prp: Dict[ProcessId, Proposal] = {}
        self.all_flags: Dict[ProcessId, bool] = {}
        self.echo: Dict[ProcessId, EchoTriple] = {}
        self.all_seen: Set[ProcessId] = set()

        # Change-detected gossip bookkeeping (line 29 fast path): the local
        # broadcast core — everything in a RecSAMessage except the per-peer
        # ``echo`` — is versioned; a peer that demonstrably holds the current
        # version (its echo reflects our current values) is skipped until the
        # periodic full refresh.
        self._state_version = 0
        self._last_core_key: Any = None
        self._sent_version: Dict[ProcessId, int] = {}
        self._sent_echo: Dict[ProcessId, Optional[EchoTriple]] = {}
        self._rounds_since_sent: Dict[ProcessId, int] = {}

        # Delta/digest wire discipline (sender side): the core last shipped
        # to each peer in materialized form (full or delta — what we believe
        # the peer's copy of us equals), the countdown to the next
        # unconditional full resend, and the run of same-version sends the
        # peer has not echoed (escalation to full).
        self._sent_core: Dict[ProcessId, Any] = {}
        self._sent_digest: Dict[ProcessId, int] = {}
        self._full_countdown: Dict[ProcessId, int] = {}
        self._unacked_sends: Dict[ProcessId, int] = {}
        self._digest_cache: Tuple[int, int] = (-1, 0)
        # Receiver side: per-sender (version, digest) of the last verified
        # core, plus the countdown to the next from-scratch digest check.
        self._gossip_chain: Dict[ProcessId, Tuple[int, int]] = {}
        self._digest_verify_countdown: Dict[ProcessId, int] = {}

        # Diagnostics / experiment counters.
        self.reset_count = 0
        self.install_count = 0
        self.estab_accepted = 0
        self.estab_rejected = 0
        self.broadcasts_sent = 0
        self.broadcasts_skipped = 0
        self.deltas_sent = 0
        self.digests_sent = 0
        self.fulls_sent = 0
        self.delta_fallbacks = 0
        self.stale_detections: Dict[StaleInfoType, int] = {t: 0 for t in StaleInfoType}

        # Boot (the paper's line 31 interrupt): every entry defaults to
        # (], dfltNtf, false); an explicit initial configuration overrides
        # the own entry only.
        if initial_config is None:
            self.config[pid] = NOT_PARTICIPANT
        else:
            self.config[pid] = initial_config
        self.prp[pid] = DEFAULT_PROPOSAL
        self.all_flags[pid] = False

    # ------------------------------------------------------------------
    # State helpers
    # ------------------------------------------------------------------
    def trusted(self) -> FrozenSet[ProcessId]:
        """The owner's current failure-detector view ``FD[i]``."""
        view = self.fd_provider()
        # The (N, Theta) detector already returns a frozenset containing the
        # owner; reuse it instead of rebuilding an O(n) copy on every call
        # (this is on the path of every no_reco()/participants() query).
        if not isinstance(view, frozenset):
            view = frozenset(view)
        if self.pid not in view:
            view = view | {self.pid}
        self.fd[self.pid] = view
        return view

    def is_participant(self) -> bool:
        """True when the owner is a participant (``config[i] != ]``)."""
        return self.config.get(self.pid, NOT_PARTICIPANT) is not NOT_PARTICIPANT

    def participants(self, trusted: Optional[FrozenSet[ProcessId]] = None) -> FrozenSet[ProcessId]:
        """``FD[i].part``: trusted processors whose config field is not ``]``."""
        if trusted is None:
            trusted = self.trusted()
        members = {
            pid
            for pid in trusted
            if self.config.get(pid, NOT_PARTICIPANT) is not NOT_PARTICIPANT
        }
        return frozenset(members)

    def _own_prp(self) -> Proposal:
        return self.prp.get(self.pid, DEFAULT_PROPOSAL)

    def _own_all(self) -> bool:
        return bool(self.all_flags.get(self.pid, False))

    # ------------------------------------------------------------------
    # Interface functions (lines 10-14)
    # ------------------------------------------------------------------
    def chs_config(self) -> Any:
        """``chsConfig()``: the unique non-``]`` config among trusted, or ``⊥``.

        When several distinct values are present the smallest (by sorted
        member tuple, with ``⊥`` ordered first) is returned so the choice is
        deterministic across processors holding the same local data.
        """
        trusted = self.trusted()
        values = []
        for pid in trusted:
            value = self.config.get(pid, NOT_PARTICIPANT)
            if value is NOT_PARTICIPANT:
                continue
            values.append(value)
        if not values:
            return BOTTOM
        if any(value is BOTTOM for value in values):
            return BOTTOM
        return min(values, key=lambda cfg: tuple(sorted(cfg)))

    def no_reco(self) -> bool:
        """True when no reconfiguration (brute-force or delicate) is in progress.

        The five pieces of evidence of instability (line 12 of Algorithm 3.1;
        see the module docstring for the polarity note):

        1. some trusted processor does not trust the owner back,
        2. configuration conflicts among the trusted processors,
        3. participant sets (including their echoes) have not stabilized,
        4. an ongoing configuration reset (some ``config`` field is ``⊥``),
        5. a delicate replacement in progress (some non-default notification).
        """
        trusted = self.trusted()
        part = self.participants(trusted)

        # (1) mutual trust: every trusted peer we have heard from must trust us.
        for pid in trusted:
            if pid == self.pid:
                continue
            view = self.fd.get(pid)
            if view is not None and self.pid not in view:
                return False

        # (2) configuration conflicts (more than one non-] value).
        values = set()
        for pid in trusted:
            value = self.config.get(pid, NOT_PARTICIPANT)
            if value is NOT_PARTICIPANT:
                continue
            if value is BOTTOM:
                # (4) an ongoing reset.
                return False
            values.add(value)
        if len(values) > 1:
            return False

        # (3) participant sets must have stabilized: every participant's last
        # reported participant set, and its echo of ours, equals ours.  The
        # echo half only applies to participants — a joiner never broadcasts,
        # so its peers have nothing of it to echo back.
        own_is_participant = self.is_participant()
        for pid in part:
            if pid == self.pid:
                continue
            reported = self.part.get(pid)
            if reported is None or frozenset(reported) != part:
                return False
            if own_is_participant:
                echo = self.echo.get(pid)
                if echo is None or frozenset(echo.part) != part:
                    return False

        # (5) delicate replacement in progress.
        for pid in trusted:
            prp = self.prp.get(pid, DEFAULT_PROPOSAL)
            if not prp.is_default:
                return False
        return True

    def get_config(self) -> Any:
        """``getConfig()``: the current configuration as seen by the owner."""
        if self.no_reco():
            return self.chs_config()
        return self.config.get(self.pid, NOT_PARTICIPANT)

    def estab(self, members: Iterable[ProcessId]) -> bool:
        """``estab(set)``: request replacement of the configuration by *members*.

        Accepted only while no reconfiguration is in progress and the proposal
        differs from the current configuration and is non-empty.  Returns
        whether the proposal was accepted.
        """
        proposal_set = make_config(members)
        if not proposal_set:
            self.estab_rejected += 1
            return False
        if not self.no_reco():
            self.estab_rejected += 1
            return False
        if proposal_set == self.config.get(self.pid):
            self.estab_rejected += 1
            return False
        self.prp[self.pid] = Proposal(phase=Phase.SELECT, members=proposal_set)
        self.all_flags[self.pid] = False
        self.all_seen.clear()
        self.estab_accepted += 1
        return True

    def participate(self) -> bool:
        """``participate()``: make the owner a participant (joining mechanism).

        Only allowed while no reconfiguration is in progress; the owner adopts
        the agreed configuration (or ``⊥`` upon complete collapse, which
        starts a reset that eventually re-creates a configuration from the
        failure-detector view).
        """
        if not self.no_reco():
            return False
        self.config[self.pid] = self.chs_config()
        return True

    # ------------------------------------------------------------------
    # Macros
    # ------------------------------------------------------------------
    def config_set(self, value: Any) -> None:
        """``configSet(val)``: overwrite every config entry, clear notifications."""
        trusted = self.fd.get(self.pid, frozenset({self.pid}))
        scope = set(self.config) | set(self.prp) | set(trusted)
        for pid in scope:
            self.config[pid] = value
            self.prp[pid] = DEFAULT_PROPOSAL
            self.all_flags[pid] = False
        self.all_seen.clear()
        if value is BOTTOM:
            self.reset_count += 1

    def max_ntf(self) -> Optional[Proposal]:
        """``maxNtf()``: lexically-maximal non-default notification, or ``None``."""
        part = self.participants()
        candidates = [
            self.prp.get(pid, DEFAULT_PROPOSAL)
            for pid in part
        ]
        candidates = [
            prp
            for prp in candidates
            if not prp.is_default and prp.members is not None and len(prp.members) > 0
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda prp: prp.sort_key())

    # ------------------------------------------------------------------
    # Barrier helpers for the delicate replacement
    # ------------------------------------------------------------------
    def _peer_in_sync(self, pid: ProcessId, part: FrozenSet[ProcessId]) -> bool:
        """``same(k)``: the peer reports our participant set and notification."""
        reported_part = self.part.get(pid)
        if reported_part is None or frozenset(reported_part) != part:
            return False
        return self.prp.get(pid, DEFAULT_PROPOSAL) == self._own_prp()

    def _peer_ahead(self, pid: ProcessId) -> bool:
        """The peer has demonstrably already advanced past our current phase."""
        own = self._own_prp()
        peer = self.prp.get(pid, DEFAULT_PROPOSAL)
        if own.is_default:
            return False
        if own.phase is Phase.SELECT:
            return peer.phase is Phase.REPLACE and peer.members == own.members
        if own.phase is Phase.REPLACE:
            return peer.is_default and self.config.get(pid) == own.members
        return False

    def _peer_echoed(self, pid: ProcessId, part: FrozenSet[ProcessId], with_all: bool) -> bool:
        """``echoNoAll(k)`` / ``echo()``: the peer echoed our current values."""
        echo = self.echo.get(pid)
        if echo is None:
            return False
        if frozenset(echo.part) != part or echo.prp != self._own_prp():
            return False
        if with_all and echo.all_flag != self._own_all():
            return False
        return True

    # ------------------------------------------------------------------
    # The do-forever loop (lines 24-29)
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one iteration of the do-forever loop and broadcast."""
        trusted = self.trusted()
        self._clean_after_crashes(trusted)
        part = self.participants(trusted)

        stale = classify_stale_information(
            own=self.pid,
            configs=self.config,
            proposals=self.prp,
            fd_views=self.fd,
            own_view=trusted,
            trusted=trusted,
            participants=part,
        )
        if stale:
            for kind in stale:
                self.stale_detections[kind] += 1
            self.config_set(BOTTOM)

        if self.max_ntf() is None:
            self._brute_force_step(trusted)
        else:
            self._delicate_step(trusted)

        self._broadcast(trusted)

    # -- line 25: clean entries of processors outside the participant set ----
    def _clean_after_crashes(self, trusted: FrozenSet[ProcessId]) -> None:
        part = self.participants(trusted)
        for pid in list(self.config):
            if pid == self.pid:
                continue
            if pid not in part:
                self.config[pid] = NOT_PARTICIPANT
                self.prp[pid] = DEFAULT_PROPOSAL
                self.all_flags[pid] = False
                # Our stored copy of this peer's core was just mutated
                # locally; a future delta from it would verify against state
                # it never sent.  Drop the chain so the next compact receipt
                # re-verifies (or forces the full-vector fallback).
                self._gossip_chain.pop(pid, None)
        for pid in list(self.prp):
            if pid == self.pid:
                continue
            if pid not in trusted:
                self.prp[pid] = DEFAULT_PROPOSAL
                self.all_flags[pid] = False
                self.echo.pop(pid, None)
                self.part.pop(pid, None)
                self._sent_version.pop(pid, None)
                self._sent_echo.pop(pid, None)
                self._rounds_since_sent.pop(pid, None)
                self._sent_core.pop(pid, None)
                self._sent_digest.pop(pid, None)
                self._full_countdown.pop(pid, None)
                self._unacked_sends.pop(pid, None)
                self._gossip_chain.pop(pid, None)
                self._digest_verify_countdown.pop(pid, None)

    # -- line 26: brute-force stabilization -----------------------------------
    def _brute_force_step(
        self, trusted: FrozenSet[ProcessId], allow_completion: bool = True
    ) -> None:
        # Nullify the configuration upon conflict.
        values = set()
        for pid in trusted:
            value = self.config.get(pid, NOT_PARTICIPANT)
            if value is NOT_PARTICIPANT or value is BOTTOM:
                continue
            values.add(value)
        if len(values) > 1:
            self.config_set(BOTTOM)

        # Reset completes once every trusted processor reports the same
        # failure-detector view: adopt that view as the configuration.
        if (
            allow_completion
            and self.config.get(self.pid) is BOTTOM
            and self._fd_views_agree(trusted)
        ):
            self.config_set(make_config(trusted))

    def _fd_views_agree(self, trusted: FrozenSet[ProcessId]) -> bool:
        for pid in trusted:
            if pid == self.pid:
                continue
            view = self.fd.get(pid)
            if view is None or frozenset(view) != trusted:
                return False
        return True

    # -- line 28: delicate replacement ----------------------------------------
    def _delicate_step(self, trusted: FrozenSet[ProcessId]) -> None:
        maximal = self.max_ntf()
        if maximal is None:  # pragma: no cover - guarded by caller
            return
        own = self._own_prp()

        # Adoption: phase-0 processors join the replacement by adopting the
        # lexically maximal proposal; phase-1 processors re-adopt a larger one.
        # A leftover phase-2 notification whose set we have *already installed*
        # is not re-adopted — its owner is simply a laggard finishing the
        # replacement (it sees us as "ahead"); re-adopting would restart the
        # replacement forever.  A phase-2 notification proposing a different
        # set is adopted so that the selected configuration is installed
        # uniformly (Lemma 3.14: a surviving phase-2 notification eventually
        # becomes the quorum configuration).
        if maximal.phase is Phase.SELECT or maximal.phase is Phase.REPLACE:
            candidate = Proposal(phase=Phase.SELECT, members=maximal.members)
            already_installed = (
                maximal.phase is Phase.REPLACE
                and self.config.get(self.pid) == maximal.members
            )
            if own.is_default and not already_installed:
                self._adopt(candidate)
                own = candidate
            elif (
                own.phase is Phase.SELECT
                and maximal.members != own.members
                and candidate.sort_key() > own.sort_key()
            ):
                self._adopt(candidate)
                own = candidate

        if own.is_default:
            # Only leftover phase-2 traffic is visible; either its owner will
            # finish on its own or the stale-information tests will reset.
            return

        part = self.participants(trusted)
        others = [pid for pid in part if pid != self.pid]

        # Stage A: raise the all flag once every participant is in sync (or
        # ahead) and has echoed our current notification.
        if not self._own_all():
            ready = all(
                (self._peer_in_sync(pid, part) or self._peer_ahead(pid))
                and (self._peer_echoed(pid, part, with_all=False) or self._peer_ahead(pid))
                for pid in others
            )
            if ready:
                self.all_flags[self.pid] = True

        # Record peers known to have completed the phase (their all flag, or
        # evidence they already advanced).
        for pid in others:
            peer_all = bool(self.all_flags.get(pid, False))
            if (peer_all and self._peer_in_sync(pid, part)) or self._peer_ahead(pid):
                self.all_seen.add(pid)

        # Stage B: advance once the barrier is complete.
        if not self._own_all():
            return
        barrier_seen = all(pid in self.all_seen for pid in others)
        barrier_echoed = all(
            self._peer_echoed(pid, part, with_all=True) or self._peer_ahead(pid)
            for pid in others
        )
        if barrier_seen and barrier_echoed:
            self._advance_phase()

    def _adopt(self, proposal: Proposal) -> None:
        self.prp[self.pid] = proposal
        self.all_flags[self.pid] = False
        self.all_seen.clear()

    def _advance_phase(self) -> None:
        own = self._own_prp()
        if own.phase is Phase.SELECT:
            # Entering phase 2 installs the selected configuration (line 28,
            # case 2 of the select statement).
            self.prp[self.pid] = Proposal(phase=Phase.REPLACE, members=own.members)
            self.config[self.pid] = own.members
            self.install_count += 1
        elif own.phase is Phase.REPLACE:
            # Returning to phase 0: the replacement is complete.
            self.prp[self.pid] = DEFAULT_PROPOSAL
        self.all_flags[self.pid] = False
        self.all_seen.clear()

    # -- line 29: broadcast -----------------------------------------------------
    def _broadcast(self, trusted: FrozenSet[ProcessId]) -> None:
        """End-of-iteration gossip with change detection.

        The message core (``fd``, ``part``, ``config``, ``prp``, ``all``) is
        identical for every destination; it is built once and versioned.  A
        re-broadcast to a peer is skipped only when *all* of the following
        hold, so the skip can never hide information the peer still needs:

        * the core has not changed since the last send to that peer,
        * our echo of *that peer's* values has not changed either,
        * the peer's last echo reflects our current ``(part, prp, all)`` —
          evidence it already received values equal to the current ones,
        * fewer than ``gossip_refresh_interval`` rounds have passed since the
          last send (the unconditional refresh restores the paper's
          fair-communication guarantee against lost packets and corrupted
          bookkeeping; see PERFORMANCE.md for the stabilization argument).
        """
        own_config = self.config.get(self.pid, NOT_PARTICIPANT)
        if own_config is NOT_PARTICIPANT:
            # Non-participants follow the computation silently (line 29's
            # guard): they receive but never broadcast.
            return
        part = self.participants(trusted)
        own_prp = self._own_prp()
        own_all = self._own_all()

        core_key = (trusted, part, own_config, own_prp, own_all)
        if core_key != self._last_core_key:
            self._state_version += 1
            self._last_core_key = core_key
        version = self._state_version
        refresh = self.gossip_refresh_interval
        deltas = self.gossip_deltas
        digest = self._core_digest(version, core_key) if deltas else None

        outgoing: List[Tuple[ProcessId, Any]] = []
        for pid in trusted:
            if pid == self.pid:
                continue
            echo: Optional[EchoTriple] = None
            if pid in self.part or pid in self.prp:
                echo = EchoTriple(
                    part=self.part.get(pid, frozenset()),
                    prp=self.prp.get(pid, DEFAULT_PROPOSAL),
                    all_flag=bool(self.all_flags.get(pid, False)),
                )
            rounds = self._rounds_since_sent.get(pid, refresh)
            echoed = self._peer_echoed(pid, part, with_all=True)
            if echoed:
                self._unacked_sends.pop(pid, None)
            if (
                refresh > 1
                and rounds + 1 < refresh
                and self._sent_version.get(pid) == version
                and self._sent_echo.get(pid) == echo
                and echoed
            ):
                self._rounds_since_sent[pid] = rounds + 1
                self.broadcasts_skipped += 1
                continue
            message = (
                self._compose(pid, version, core_key, digest, echo, echoed)
                if deltas
                else self._full(version, core_key, None, echo)
            )
            outgoing.append((pid, message))
            self._sent_version[pid] = version
            self._sent_echo[pid] = echo
            self._rounds_since_sent[pid] = 0

        if outgoing:
            self.broadcasts_sent += len(outgoing)
            if self.send_many is not None:
                self.send_many(outgoing)
            else:
                for pid, message in outgoing:
                    self.send(pid, message)

    def _full(
        self,
        version: int,
        core_key: Tuple[Any, ...],
        digest: Optional[int],
        echo: Optional[EchoTriple],
    ) -> RecSAMessage:
        trusted, part, own_config, own_prp, own_all = core_key
        return RecSAMessage(
            sender=self.pid,
            fd=trusted,
            part=part,
            config=own_config,
            prp=own_prp,
            all_flag=own_all,
            echo=echo,
            version=version,
            digest=digest,
        )

    def _compose(
        self,
        pid: ProcessId,
        version: int,
        core_key: Tuple[Any, ...],
        digest: int,
        echo: Optional[EchoTriple],
        echoed: bool,
    ) -> Any:
        """Pick the cheapest sound wire form for one peer (deltas enabled).

        Full vector when: we have never materialized state to this peer, the
        periodic full-resend countdown expired, or the peer has repeatedly
        failed to echo the current version (its copy — or its chain — is
        broken in a way deltas cannot repair).  Digest when the core is
        exactly what we last materialized (pure refresh / echo update).
        Delta of the changed fields otherwise.
        """
        sent_core = self._sent_core.get(pid)
        unacked = self._unacked_sends.get(pid, 0)
        if not echoed and self._sent_version.get(pid) == version:
            self._unacked_sends[pid] = unacked + 1
        else:
            self._unacked_sends.pop(pid, None)
            unacked = 0
        countdown = self._full_countdown.get(pid, 0)
        if sent_core is None or unacked >= ESCALATION_THRESHOLD or countdown <= 1:
            self._sent_core[pid] = core_key
            self._sent_digest[pid] = digest
            self._full_countdown[pid] = FULL_RESEND_PERIOD
            self.fulls_sent += 1
            return self._full(version, core_key, digest, echo)
        self._full_countdown[pid] = countdown - 1
        if core_key == sent_core:
            self.digests_sent += 1
            return RecSADigest(
                sender=self.pid, version=version, digest=digest, echo=echo
            )
        base_version = self._sent_version.get(pid, -1)
        base_digest = self._sent_digest.get(pid, 0)
        changes = tuple(
            (name, new)
            for name, old, new in zip(_CORE_FIELDS, sent_core, core_key)
            if old is not new and old != new
        )
        self._sent_core[pid] = core_key
        self._sent_digest[pid] = digest
        self.deltas_sent += 1
        return RecSADelta(
            sender=self.pid,
            version=version,
            base_version=base_version,
            base_digest=base_digest,
            changes=changes,
            digest=digest,
            echo=echo,
        )

    def _core_digest(self, version: int, core_key: Tuple[Any, ...]) -> int:
        cached_version, cached = self._digest_cache
        if cached_version == version:
            return cached
        digest = compute_core_digest(core_key)
        self._digest_cache = (version, digest)
        return digest

    # ------------------------------------------------------------------
    # Message receipt (line 30)
    # ------------------------------------------------------------------
    def dispatch(self, sender: ProcessId, message: Any) -> None:
        """Route any recSA gossip form (full, delta, digest) to its handler.

        Convenience for harnesses that wire ``RecSA`` directly to a bus;
        the composed scheme dispatches by type itself.
        """
        if isinstance(message, RecSAMessage):
            self.on_message(sender, message)
        elif isinstance(message, RecSADelta):
            self.on_delta(sender, message)
        elif isinstance(message, RecSADigest):
            self.on_digest(sender, message)

    def on_message(self, sender: ProcessId, message: RecSAMessage) -> None:
        """Store the peer's state (the paper's ``upon receive`` handler)."""
        if sender == self.pid:
            return
        self.fd[sender] = frozenset(message.fd)
        self.part[sender] = frozenset(message.part)
        self.config[sender] = message.config
        self.prp[sender] = message.prp
        self.all_flags[sender] = bool(message.all_flag)
        if message.echo is not None:
            self.echo[sender] = message.echo
        # A full vector (re)seeds the delta chain; messages without chain
        # metadata (old constructors, forged stale packets) break it, so
        # later compact receipts must re-verify against actual state.
        if message.version is not None and message.digest is not None:
            self._gossip_chain[sender] = (message.version, message.digest)
            self._digest_verify_countdown[sender] = DIGEST_VERIFY_PERIOD
        else:
            self._gossip_chain.pop(sender, None)

    def on_delta(self, sender: ProcessId, delta: RecSADelta) -> None:
        """Apply a changed-fields delta to the stored copy of *sender*.

        A delta is sound only against its base: the exact core the sender
        last materialized to us.  We apply it when the stored copy provably
        equals that base — the chain is intact (base version matches, with a
        from-scratch digest check every ``DIGEST_VERIFY_PERIOD``-th compact
        receipt) — and drop it otherwise, counting a fallback.  Dropping
        matters: a delta applied over the *wrong* base (a reordered burst
        put a newer delta ahead of the send that established its base, or
        the copy was corrupted) would leave a hybrid core no process ever
        held.  Keeping the stale-but-complete copy instead preserves the
        full-vector path's invariant — stored state is always some core the
        sender actually broadcast — and the sender repairs via escalation
        or the periodic full resend.  The echo rides outside the core and
        is applied either way (full vectors overwrite it unconditionally
        too).
        """
        if sender == self.pid:
            return
        if delta.echo is not None:
            self.echo[sender] = delta.echo
        chain = self._gossip_chain.get(sender)
        countdown = self._digest_verify_countdown.get(sender, 1) - 1
        if chain is not None and chain[0] == delta.base_version and countdown > 0:
            self._digest_verify_countdown[sender] = countdown
        elif self._stored_core_digest(sender) == delta.base_digest:
            self._digest_verify_countdown[sender] = DIGEST_VERIFY_PERIOD
        else:
            self._gossip_chain.pop(sender, None)
            self.delta_fallbacks += 1
            return
        for name, value in delta.changes:
            if name == "fd":
                self.fd[sender] = frozenset(value)
            elif name == "part":
                self.part[sender] = frozenset(value)
            elif name == "config":
                self.config[sender] = value
            elif name == "prp":
                self.prp[sender] = value
            elif name == "all_flag":
                self.all_flags[sender] = bool(value)
        self._gossip_chain[sender] = (delta.version, delta.digest)

    def on_digest(self, sender: ProcessId, message: RecSADigest) -> None:
        """Process a compact refresh: update the echo, audit the chain."""
        if sender == self.pid:
            return
        if message.echo is not None:
            self.echo[sender] = message.echo
        chain = self._gossip_chain.get(sender)
        countdown = self._digest_verify_countdown.get(sender, 1) - 1
        if (
            chain is not None
            and chain == (message.version, message.digest)
            and countdown > 0
        ):
            self._digest_verify_countdown[sender] = countdown
            return
        if self._stored_core_digest(sender) == message.digest:
            self._gossip_chain[sender] = (message.version, message.digest)
            self._digest_verify_countdown[sender] = DIGEST_VERIFY_PERIOD
        else:
            self._gossip_chain.pop(sender, None)
            self.delta_fallbacks += 1

    def _stored_core_digest(self, sender: ProcessId) -> int:
        """Digest of our stored copy of *sender*'s broadcast core."""
        return compute_core_digest(
            (
                self.fd.get(sender, frozenset()),
                self.part.get(sender, frozenset()),
                self.config.get(sender, NOT_PARTICIPANT),
                self.prp.get(sender, DEFAULT_PROPOSAL),
                bool(self.all_flags.get(sender, False)),
            )
        )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A structured snapshot of the layer's state (tests / debugging)."""
        return {
            "pid": self.pid,
            "config": self.config.get(self.pid),
            "prp": self._own_prp(),
            "all": self._own_all(),
            "participant": self.is_participant(),
            "no_reco": self.no_reco(),
            "resets": self.reset_count,
            "installs": self.install_count,
        }
