"""Counter management and increment protocols (Algorithms 4.3 / 4.4 / 4.5).

The :class:`CounterService` plays two roles:

* **configuration member** (Algorithm 4.3 + 4.4) — maintains the maximal
  counter by gossiping counter pairs with the other members (mirroring the
  labeling algorithm but carrying sequence numbers), answers the majority
  read/write requests of increment operations, cancels exhausted counters and
  elects fresh epoch labels when needed;
* **any participant** (Algorithm 4.4 for members, 4.5 for non-members) — the
  :meth:`CounterService.increment` entry point runs the two-phase
  read-increment-write protocol against a majority of the configuration and
  reports the outcome through a callback (an ``Abort`` is reported when a
  reconfiguration interferes, exactly as in the paper).

The epoch-label bookkeeping reuses :class:`repro.labels.store.LabelStore`;
the service layers sequence-number tracking on top of it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.common.codec import wire_type
from repro.common.logging_utils import get_logger
from repro.common.types import Configuration, ProcessId
from repro.core.scheme import ReconfigurationScheme
from repro.counters.counter import (
    DEFAULT_SEQN_BOUND,
    Counter,
    CounterPair,
    counter_less_than,
    max_counter,
)
from repro.labels.label import EpochLabel, LabelPair
from repro.labels.store import LabelStore

_log = get_logger("counters")

SendFn = Callable[[ProcessId, Any], None]
IncrementCallback = Callable[["IncrementOutcome"], None]


# ---------------------------------------------------------------------------
# Wire messages
# ---------------------------------------------------------------------------
@wire_type
@dataclass(frozen=True)
class CounterGossipMessage:
    """Member-to-member gossip of the maximal counter pair (Algorithm 4.3)."""

    sender: ProcessId
    sent_max: Optional[CounterPair]
    last_sent: Optional[CounterPair]


@wire_type
@dataclass(frozen=True)
class MaxReadRequest:
    """``majMaxRead()`` — ask a member for its maximal counter."""

    sender: ProcessId
    op_id: int


@wire_type
@dataclass(frozen=True)
class MaxReadResponse:
    """Reply to a read: the member's maximal counter, or an abort."""

    sender: ProcessId
    op_id: int
    counter: Optional[CounterPair]
    aborted: bool = False


@wire_type
@dataclass(frozen=True)
class MaxWriteRequest:
    """``majMaxWrite(cnt)`` — ask a member to adopt a freshly written counter."""

    sender: ProcessId
    op_id: int
    counter: Counter


@wire_type
@dataclass(frozen=True)
class MaxWriteResponse:
    """Acknowledgement (or abort) of a write request."""

    sender: ProcessId
    op_id: int
    acked: bool
    aborted: bool = False


@dataclass
class IncrementOutcome:
    """Result reported to the caller of :meth:`CounterService.increment`."""

    success: bool
    counter: Optional[Counter] = None
    aborted: bool = False

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.success


class _OpPhase(Enum):
    READ = "read"
    WRITE = "write"
    DONE = "done"


@dataclass
class _IncrementOp:
    """In-flight state of one two-phase increment operation."""

    op_id: int
    config: Configuration
    callback: IncrementCallback
    phase: _OpPhase = _OpPhase.READ
    read_responses: Dict[ProcessId, Optional[CounterPair]] = field(default_factory=dict)
    write_acks: Set[ProcessId] = field(default_factory=set)
    written: Optional[Counter] = None

    def majority(self) -> int:
        return len(self.config) // 2 + 1


class CounterService:
    """Per-processor counter service layered on the reconfiguration scheme."""

    _op_counter = itertools.count(1)

    def __init__(
        self,
        pid: ProcessId,
        scheme: ReconfigurationScheme,
        send: SendFn,
        seqn_bound: int = DEFAULT_SEQN_BOUND,
        in_transit_bound: int = 16,
    ) -> None:
        self.pid = pid
        self.scheme = scheme
        self.send = send
        self.seqn_bound = seqn_bound
        self.in_transit_bound = in_transit_bound

        # Member-side state (Algorithm 4.3): label store + per-label seqn.
        self.store: Optional[LabelStore] = None
        self._store_members: Optional[Tuple[ProcessId, ...]] = None
        self.max_counters: Dict[ProcessId, Optional[CounterPair]] = {}
        self.seqns: Dict[EpochLabel, Tuple[int, ProcessId]] = {}

        # Client-side state: in-flight increment operations.
        self._ops: Dict[int, _IncrementOp] = {}

        # Diagnostics.
        self.increments_completed = 0
        self.increments_aborted = 0
        self.exhaustion_rollovers = 0
        self.rebuild_count = 0
        # Labels whose exhaustion this service has already counted, so the
        # rollover diagnostic fires once per retired epoch regardless of
        # which path (gossiped cancellation vs findMaxCounter) retires it.
        self._exhausted_seen: set = set()

    # ------------------------------------------------------------------
    # Membership / structure management
    # ------------------------------------------------------------------
    def _current_members(self) -> Optional[Configuration]:
        config = self.scheme.configuration()
        if config is None or self.pid not in config:
            return None
        return config

    def _conf_changed(self, members: Configuration) -> bool:
        return self._store_members != tuple(sorted(members))

    def _rebuild_for(self, members: Configuration) -> None:
        if self.store is None:
            self.store = LabelStore(
                owner=self.pid, members=members, in_transit_bound=self.in_transit_bound
            )
        else:
            self.store.rebuild(members)
            self.store.empty_all_queues()
        self.store.clean_non_member_labels()
        self.store.receipt_action(None, self.store.own_max(), self.pid)
        self._store_members = tuple(sorted(members))
        self.max_counters = {m: self.max_counters.get(m) for m in members}
        self.seqns = {
            label: value
            for label, value in self.seqns.items()
            if label.creator in members
        }
        self.rebuild_count += 1

    # ------------------------------------------------------------------
    # Local maximal-counter bookkeeping
    # ------------------------------------------------------------------
    def _record_counter(self, counter: Counter) -> None:
        """Remember the highest (seqn, wid) observed for the counter's label."""
        current = self.seqns.get(counter.label)
        if current is None or (counter.seqn, counter.wid) > current:
            self.seqns[counter.label] = (counter.seqn, counter.wid)

    def local_max_counter(self) -> Optional[CounterPair]:
        """The member's current maximal counter pair, if it has one."""
        if self.store is None:
            return None
        label = self.store.local_max_label()
        if label is None:
            return None
        seqn, wid = self.seqns.get(label, (0, self.pid))
        counter = Counter(label=label, seqn=seqn, wid=wid)
        if counter.is_exhausted(self.seqn_bound):
            # Emitting a cancelled pair starts the epoch's retirement through
            # the label gossip — an exhaustion rollover just like the
            # findMaxCounter path, so it is counted the same way.
            self._count_exhaustion(label)
            return CounterPair(mct=counter, cct=counter)
        return CounterPair(mct=counter)

    def _count_exhaustion(self, label: EpochLabel) -> None:
        if label not in self._exhausted_seen:
            self._exhausted_seen.add(label)
            self.exhaustion_rollovers += 1

    def _find_max_counter(self) -> Optional[Counter]:
        """``findMaxCounter()``: cancel exhausted epochs, elect a usable max.

        Repeats label election until the maximal label's sequence number is
        not exhausted (canceling exhausted labels in between), exactly like
        the ``repeat ... until`` loop of Algorithm 4.4.
        """
        if self.store is None:
            return None
        for _ in range(len(self.store.members) * 4 + 4):
            label = self.store.local_max_label()
            if label is None:
                self.store.receipt_action(None, None, self.pid)
                continue
            seqn, wid = self.seqns.get(label, (0, self.pid))
            counter = Counter(label=label, seqn=seqn, wid=wid)
            if not counter.is_exhausted(self.seqn_bound):
                return counter
            # Cancel the exhausted epoch and elect a new label.
            self._count_exhaustion(label)
            own = self.store.own_max()
            if own is not None and own.ml == label:
                self.store.max_pairs[self.pid] = LabelPair(ml=label, cl=label)
            for member, pair in list(self.store.max_pairs.items()):
                if pair is not None and pair.ml == label and pair.legit:
                    self.store.max_pairs[member] = LabelPair(ml=label, cl=label)
            queue = self.store.stored.get(label.creator)
            if queue is not None:
                stored = queue.get(label)
                if stored is not None and stored.legit:
                    queue.replace(stored.cancel(label))
            self.store.receipt_action(None, None, self.pid)
        return None

    # ------------------------------------------------------------------
    # Increment API (Algorithms 4.4 / 4.5)
    # ------------------------------------------------------------------
    def increment(self, callback: IncrementCallback) -> Optional[int]:
        """Start an increment; the outcome is delivered through *callback*.

        Returns the operation identifier, or ``None`` when the operation
        could not even start (no configuration, or a reconfiguration is in
        progress — the paper's immediate ``⊥`` return).
        """
        config = self.scheme.configuration()
        if config is None or not self.scheme.no_reco():
            callback(IncrementOutcome(success=False, aborted=True))
            self.increments_aborted += 1
            return None
        op = _IncrementOp(
            op_id=next(self._op_counter),
            config=config,
            callback=callback,
        )
        self._ops[op.op_id] = op
        self._send_reads(op)
        return op.op_id

    def _send_reads(self, op: _IncrementOp) -> None:
        for member in op.config:
            if member == self.pid:
                continue
            self.send(member, MaxReadRequest(sender=self.pid, op_id=op.op_id))
        # A member counts itself among the read responses.
        if self.pid in op.config:
            op.read_responses[self.pid] = self.local_max_counter()
            self._maybe_finish_read(op)

    def _send_writes(self, op: _IncrementOp) -> None:
        assert op.written is not None
        for member in op.config:
            if member == self.pid:
                continue
            self.send(
                member,
                MaxWriteRequest(sender=self.pid, op_id=op.op_id, counter=op.written),
            )
        if self.pid in op.config:
            self._apply_write(op.written)
            op.write_acks.add(self.pid)
            self._maybe_finish_write(op)

    def _maybe_finish_read(self, op: _IncrementOp) -> None:
        if op.phase is not _OpPhase.READ:
            return
        if len(op.read_responses) < op.majority():
            return
        counters = [
            pair.mct
            for pair in op.read_responses.values()
            if pair is not None and pair.legit and not pair.mct.is_exhausted(self.seqn_bound)
        ]
        if self.pid in op.config and self.store is not None:
            # Members merge what they read into their own structures and can
            # always produce a usable maximum (Algorithm 4.4).
            for pair in op.read_responses.values():
                if pair is not None:
                    self._record_counter(pair.mct)
            own_max = self._find_max_counter()
            if own_max is not None:
                counters.append(own_max)
        best = max_counter(counters)
        if best is None:
            self._finish(op, IncrementOutcome(success=False, aborted=True))
            return
        op.written = best.next(self.pid)
        op.phase = _OpPhase.WRITE
        self._send_writes(op)

    def _maybe_finish_write(self, op: _IncrementOp) -> None:
        if op.phase is not _OpPhase.WRITE:
            return
        if len(op.write_acks) < op.majority():
            return
        assert op.written is not None
        self._record_counter(op.written)
        self.increments_completed += 1
        self._finish(op, IncrementOutcome(success=True, counter=op.written))

    def _finish(self, op: _IncrementOp, outcome: IncrementOutcome) -> None:
        op.phase = _OpPhase.DONE
        self._ops.pop(op.op_id, None)
        if not outcome.success:
            self.increments_aborted += 1
        op.callback(outcome)

    def _abort_op(self, op_id: int) -> None:
        op = self._ops.get(op_id)
        if op is not None:
            self._finish(op, IncrementOutcome(success=False, aborted=True))

    # ------------------------------------------------------------------
    # Node hooks
    # ------------------------------------------------------------------
    def on_timer(self) -> None:
        """Member gossip plus retransmission of in-flight operation requests."""
        members = self._current_members()
        if members is not None and self.scheme.no_reco():
            if self._conf_changed(members):
                self._rebuild_for(members)
            else:
                self._gossip(members)
        # Retransmit pending requests (fair-communication driving).
        for op in list(self._ops.values()):
            if op.phase is _OpPhase.READ:
                for member in op.config:
                    if member != self.pid and member not in op.read_responses:
                        self.send(member, MaxReadRequest(sender=self.pid, op_id=op.op_id))
            elif op.phase is _OpPhase.WRITE and op.written is not None:
                for member in op.config:
                    if member != self.pid and member not in op.write_acks:
                        self.send(
                            member,
                            MaxWriteRequest(
                                sender=self.pid, op_id=op.op_id, counter=op.written
                            ),
                        )

    def _gossip(self, members: Configuration) -> None:
        assert self.store is not None
        own = self.local_max_counter()
        for member in members:
            if member == self.pid:
                continue
            self.send(
                member,
                CounterGossipMessage(
                    sender=self.pid,
                    sent_max=own,
                    last_sent=self.max_counters.get(member),
                ),
            )

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, sender: ProcessId, message: Any) -> bool:
        """Dispatch counter-protocol messages; True when the message was ours."""
        if isinstance(message, CounterGossipMessage):
            self._on_gossip(sender, message)
            return True
        if isinstance(message, MaxReadRequest):
            self._on_read_request(sender, message)
            return True
        if isinstance(message, MaxReadResponse):
            self._on_read_response(message)
            return True
        if isinstance(message, MaxWriteRequest):
            self._on_write_request(sender, message)
            return True
        if isinstance(message, MaxWriteResponse):
            self._on_write_response(message)
            return True
        return False

    # -- member side -----------------------------------------------------
    def _on_gossip(self, sender: ProcessId, message: CounterGossipMessage) -> None:
        members = self._current_members()
        if members is None or not self.scheme.no_reco() or self._conf_changed(members):
            return
        if sender not in members:
            return
        assert self.store is not None
        self.max_counters[sender] = message.sent_max
        if message.sent_max is not None:
            pair = message.sent_max
            label_pair = LabelPair(
                ml=pair.mct.label,
                cl=None if pair.legit else pair.mct.label,
            )
            self.store.receipt_action(label_pair, None, sender)
            if pair.legit:
                self._record_counter(pair.mct)
        if message.last_sent is not None and not message.last_sent.legit:
            # The peer canceled the counter it last saw from us: make sure the
            # corresponding label is canceled locally too.
            own = self.store.own_max()
            if own is not None and own.ml == message.last_sent.mct.label:
                self.store.receipt_action(
                    LabelPair(ml=own.ml, cl=own.ml), None, sender
                )

    def _on_read_request(self, sender: ProcessId, message: MaxReadRequest) -> None:
        if not self.scheme.no_reco() or self._current_members() is None:
            self.send(
                sender,
                MaxReadResponse(
                    sender=self.pid, op_id=message.op_id, counter=None, aborted=True
                ),
            )
            return
        members = self._current_members()
        assert members is not None
        if self._conf_changed(members):
            self._rebuild_for(members)
        counter = self._find_max_counter()
        pair = CounterPair(mct=counter) if counter is not None else None
        self.send(
            sender,
            MaxReadResponse(sender=self.pid, op_id=message.op_id, counter=pair),
        )

    def _on_write_request(self, sender: ProcessId, message: MaxWriteRequest) -> None:
        if not self.scheme.no_reco() or self._current_members() is None:
            self.send(
                sender,
                MaxWriteResponse(
                    sender=self.pid, op_id=message.op_id, acked=False, aborted=True
                ),
            )
            return
        members = self._current_members()
        assert members is not None
        if self._conf_changed(members):
            self._rebuild_for(members)
        self._apply_write(message.counter)
        self.send(
            sender,
            MaxWriteResponse(sender=self.pid, op_id=message.op_id, acked=True),
        )

    def _apply_write(self, counter: Counter) -> None:
        if self.store is not None and counter.label.creator in self.store.members:
            self.store.receipt_action(LabelPair(ml=counter.label), None, self.pid)
        self._record_counter(counter)

    # -- client side -----------------------------------------------------
    def _on_read_response(self, message: MaxReadResponse) -> None:
        op = self._ops.get(message.op_id)
        if op is None or op.phase is not _OpPhase.READ:
            return
        if message.aborted:
            self._abort_op(message.op_id)
            return
        op.read_responses[message.sender] = message.counter
        self._maybe_finish_read(op)

    def _on_write_response(self, message: MaxWriteResponse) -> None:
        op = self._ops.get(message.op_id)
        if op is None or op.phase is not _OpPhase.WRITE:
            return
        if message.aborted:
            self._abort_op(message.op_id)
            return
        if message.acked:
            op.write_acks.add(message.sender)
            self._maybe_finish_write(op)
