"""Practically-unbounded counters built on the bounded labeling scheme.

Section 4.2 of the paper: a counter is a triple ``⟨label, seqn, wid⟩``.  The
label orders *epochs*; within an epoch the integer sequence number orders
increments, with the writer identifier breaking ties.  When the sequence
number of the maximal label is exhausted, the members cancel that label and
move to a fresh epoch label, so the counter never wraps in practice even
after transient faults drive the sequence number to its maximum.

* :mod:`repro.counters.counter` — the counter value type and ``≺ct`` order;
* :mod:`repro.counters.service` — the member-side counter management
  (Algorithm 4.3) and the increment protocols for members (Algorithm 4.4)
  and non-member participants (Algorithm 4.5).
"""

from repro.counters.counter import Counter, CounterPair, counter_less_than, max_counter
from repro.counters.service import (
    CounterService,
    CounterGossipMessage,
    MaxReadRequest,
    MaxReadResponse,
    MaxWriteRequest,
    MaxWriteResponse,
    IncrementOutcome,
)

__all__ = [
    "Counter",
    "CounterPair",
    "counter_less_than",
    "max_counter",
    "CounterService",
    "CounterGossipMessage",
    "MaxReadRequest",
    "MaxReadResponse",
    "MaxWriteRequest",
    "MaxWriteResponse",
    "IncrementOutcome",
]
