"""Counter values ``⟨label, seqn, wid⟩`` and the ``≺ct`` order (Section 4.2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.common.codec import wire_type
from repro.common.types import ProcessId
from repro.labels.label import EpochLabel, label_less_than

#: The paper's practically-inexhaustible sequence-number bound (``2^64``).
DEFAULT_SEQN_BOUND = 2 ** 64


@wire_type
@dataclass(frozen=True)
class Counter:
    """A counter value: an epoch label, a sequence number, and its writer."""

    label: EpochLabel
    seqn: int
    wid: ProcessId

    def sort_key(self) -> tuple:
        """Deterministic tie-break key (not the semantic ``≺ct`` order)."""
        return (self.label.sort_key(), self.seqn, self.wid)

    def is_exhausted(self, bound: int = DEFAULT_SEQN_BOUND) -> bool:
        """``exhausted()``: the sequence number reached the bound."""
        return self.seqn >= bound

    def next(self, writer: ProcessId) -> "Counter":
        """The counter *writer* obtains by incrementing this one."""
        return Counter(label=self.label, seqn=self.seqn + 1, wid=writer)


@wire_type
@dataclass(frozen=True)
class CounterPair:
    """A counter plus its (possible) canceling counter ``⟨mct, cct⟩``."""

    mct: Counter
    cct: Optional[Counter] = None

    @property
    def legit(self) -> bool:
        """True when the counter's label has not been canceled."""
        return self.cct is None

    def cancel(self) -> "CounterPair":
        """``cancelExhausted()``: cancel this counter (with itself as evidence)."""
        if self.cct is not None:
            return self
        return CounterPair(mct=self.mct, cct=self.mct)


def counter_less_than(a: Counter, b: Counter) -> bool:
    """The ``≺ct`` order of Section 4.2.

    ``a ≺ct b`` iff the labels are ordered ``a.label ≺lb b.label``, or the
    labels are equal and ``(seqn, wid)`` is lexicographically smaller.
    Counters with incomparable labels are incomparable.
    """
    if label_less_than(a.label, b.label):
        return True
    if a.label != b.label:
        return False
    return (a.seqn, a.wid) < (b.seqn, b.wid)


def counter_leq(a: Counter, b: Counter) -> bool:
    """``a = b`` or ``a ≺ct b``."""
    return a == b or counter_less_than(a, b)


def max_counter(counters: Iterable[Counter]) -> Optional[Counter]:
    """A maximal counter under ``≺ct`` (deterministic among incomparables)."""
    candidates: List[Counter] = list(counters)
    if not candidates:
        return None
    maximal = [
        a
        for a in candidates
        if not any(counter_less_than(a, b) for b in candidates if b != a)
    ]
    return max(maximal, key=lambda counter: counter.sort_key())
