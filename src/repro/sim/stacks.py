"""Stack profiles: named, ordered bundles of application services.

A :class:`StackProfile` describes *which* services a node runs on top of the
reconfiguration scheme and *how* they are wired together.  The node
instantiates its own profile (``ClusterNode`` calls
:meth:`StackProfile.instantiate`), which removes the per-example hand wiring
of ``CounterService``/``VirtualSynchronyService``/``SharedRegister`` and the
leaky reach into ``node._send_raw`` that every caller used to copy.

Built-in profiles (ordered bottom-up; each bundle includes what it builds on):

``bare``
    No application services — just data links, failure detector and the
    reconfiguration scheme.
``labels``
    The bounded epoch-label algorithm (:mod:`repro.labels`).
``counters``
    The practically-unbounded counter-increment algorithm
    (:mod:`repro.counters`).  Options: ``seqn_bound``, ``in_transit_bound``.
``vs_smr``
    Counters plus the virtually synchronous replicated state machine.
    Options: ``state_machine`` (factory, default ``LogStateMachine``) and
    ``eval_config`` (a ``node -> policy`` factory; the default policy reads
    ``node.control["reconfigure"]``, so callers trigger a coordinator-led
    delicate reconfiguration with ``node.control["reconfigure"] = True``).
``shared_register``
    ``vs_smr`` pinned to a :class:`~repro.vs.smr.RegisterStateMachine` plus a
    :class:`~repro.vs.shared_memory.SharedRegister` client bound to the node.
``rb_bracha`` / ``rb_dolev`` / ``rb_naive``
    A Byzantine-tolerant reliable-broadcast service
    (:mod:`repro.datalink.reliable_broadcast`) on the bare scheme: Bracha
    echo voting, Dolev path flooding, or the unprotected naive fan-out
    baseline.  Options: ``variant`` (pre-set per profile), plus the
    service's ``resend_interval`` / ``max_resends``.
``vs_smr_rb``
    ``vs_smr`` with a Bracha reliable-broadcast service alongside — the
    stack the Byzantine audit certifies ``smr_agreement`` on while traitors
    attack the broadcast layer.

Profiles are immutable; :meth:`StackProfile.configure` derives a customized
copy (``stack("counters", seqn_bound=3)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Dict, Mapping, Union

from repro.counters.counter import DEFAULT_SEQN_BOUND
from repro.counters.service import CounterService
from repro.datalink.reliable_broadcast import make_rb_service
from repro.labels.labeling import LabelingService
from repro.vs.shared_memory import SharedRegister
from repro.vs.smr import LogStateMachine, RegisterStateMachine
from repro.vs.virtual_synchrony import VirtualSynchronyService

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster imports us)
    from repro.sim.cluster import ClusterNode

#: A builder receives the node plus the profile's options and returns the
#: ordered ``{name: service}`` mapping; the node registers the services in
#: that order (which fixes the on_timer / on_message dispatch order).
ServiceBuilder = Callable[["ClusterNode", Dict[str, Any]], Dict[str, Any]]


@dataclass(frozen=True)
class StackProfile:
    """A named, ordered, parameterizable bundle of node services."""

    name: str
    description: str
    builder: ServiceBuilder
    options: Mapping[str, Any] = field(default_factory=dict)

    def configure(self, **options: Any) -> "StackProfile":
        """A copy of the profile with *options* merged in."""
        if not options:
            return self
        return replace(self, options={**dict(self.options), **options})

    def instantiate(self, node: "ClusterNode") -> Dict[str, Any]:
        """Build the profile's services for *node* (``{name: service}``)."""
        return self.builder(node, dict(self.options))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
_REGISTRY: Dict[str, StackProfile] = {}


def register_stack(profile: StackProfile) -> StackProfile:
    """Add *profile* to the registry (unique name required)."""
    if profile.name in _REGISTRY:
        raise ValueError(f"stack profile {profile.name!r} is already registered")
    _REGISTRY[profile.name] = profile
    return profile


def get_stack(ref: Union[str, StackProfile], **options: Any) -> StackProfile:
    """Resolve a profile by name (or pass one through), applying *options*."""
    if isinstance(ref, StackProfile):
        return ref.configure(**options)
    try:
        profile = _REGISTRY[ref]
    except KeyError:
        raise KeyError(
            f"unknown stack profile {ref!r}; available: {available_stacks()}"
        ) from None
    return profile.configure(**options)


#: ``stack("vs_smr", state_machine=KeyValueStateMachine)`` reads naturally at
#: call sites; it is the conventional entry point of the registry.
stack = get_stack


def available_stacks() -> list:
    """Sorted names of every registered profile."""
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Built-in profiles
# ---------------------------------------------------------------------------
def _build_bare(node: "ClusterNode", options: Dict[str, Any]) -> Dict[str, Any]:
    return {}


def _build_labels(node: "ClusterNode", options: Dict[str, Any]) -> Dict[str, Any]:
    service = LabelingService(
        node.pid,
        node.scheme,
        node.send,
        in_transit_bound=options.get("in_transit_bound", 16),
    )
    return {"labels": service}


def _build_counters(node: "ClusterNode", options: Dict[str, Any]) -> Dict[str, Any]:
    service = CounterService(
        node.pid,
        node.scheme,
        node.send,
        seqn_bound=options.get("seqn_bound", DEFAULT_SEQN_BOUND),
        in_transit_bound=options.get("in_transit_bound", 16),
    )
    return {"counters": service}


class _ControlEvalConfig:
    """Default evalConfig policy: read the node's ``control`` mailbox.

    A class (not a closure) so snapshot/restore deep-copies remap the node
    reference: a restored VS service must read the restored node's mailbox,
    not the original's.
    """

    __slots__ = ("node",)

    def __init__(self, node: "ClusterNode") -> None:
        self.node = node

    def __call__(self) -> bool:
        return bool(self.node.control.get("reconfigure", False))


def _control_eval_config(node: "ClusterNode") -> Callable[[], bool]:
    """Build the default evalConfig policy for *node*."""
    return _ControlEvalConfig(node)


def _build_vs_smr(node: "ClusterNode", options: Dict[str, Any]) -> Dict[str, Any]:
    services = _build_counters(node, options)
    machine_factory = options.get("state_machine", LogStateMachine)
    eval_factory = options.get("eval_config", _control_eval_config)
    services["vs"] = VirtualSynchronyService(
        node.pid,
        node.scheme,
        services["counters"],
        node.send,
        state_machine=machine_factory(),
        eval_config=eval_factory(node),
    )
    return services


def _build_shared_register(node: "ClusterNode", options: Dict[str, Any]) -> Dict[str, Any]:
    machine = options.get("state_machine", RegisterStateMachine)
    if machine is not RegisterStateMachine:
        raise ValueError(
            "the shared_register profile is pinned to RegisterStateMachine; "
            "use the vs_smr profile for a custom state machine"
        )
    services = _build_vs_smr(node, {**options, "state_machine": RegisterStateMachine})
    services["register"] = SharedRegister(node.pid, services["vs"])
    return services


def _build_rb(node: "ClusterNode", options: Dict[str, Any]) -> Dict[str, Any]:
    service = make_rb_service(
        options.get("variant", "bracha"),
        node.pid,
        tuple(node._initial_peers),
        node.send,
        resend_interval=options.get("resend_interval", 4),
        max_resends=options.get("max_resends", 8),
    )
    return {"rb": service}


def _build_vs_smr_rb(node: "ClusterNode", options: Dict[str, Any]) -> Dict[str, Any]:
    services = _build_vs_smr(node, options)
    services.update(_build_rb(node, options))
    return services


BARE = register_stack(
    StackProfile("bare", "reconfiguration scheme only, no services", _build_bare)
)
LABELS = register_stack(
    StackProfile("labels", "bounded epoch labels (Algorithm 4.1/4.2)", _build_labels)
)
COUNTERS = register_stack(
    StackProfile("counters", "counter increment (Algorithms 4.3-4.5)", _build_counters)
)
VS_SMR = register_stack(
    StackProfile(
        "vs_smr",
        "counters + virtually synchronous SMR (Algorithms 4.6/4.7)",
        _build_vs_smr,
    )
)
SHARED_REGISTER = register_stack(
    StackProfile(
        "shared_register",
        "vs_smr over a RegisterStateMachine + MWMR register client",
        _build_shared_register,
    )
)
RB_BRACHA = register_stack(
    StackProfile(
        "rb_bracha",
        "Bracha-echo reliable broadcast (tolerates f < n/3 traitors)",
        _build_rb,
        options={"variant": "bracha"},
    )
)
RB_DOLEV = register_stack(
    StackProfile(
        "rb_dolev",
        "Dolev path-flooding reliable broadcast (f+1 disjoint paths)",
        _build_rb,
        options={"variant": "dolev"},
    )
)
RB_NAIVE = register_stack(
    StackProfile(
        "rb_naive",
        "unprotected naive broadcast baseline (equivocation splits it)",
        _build_rb,
        options={"variant": "naive"},
    )
)
VS_SMR_RB = register_stack(
    StackProfile(
        "vs_smr_rb",
        "vs_smr + Bracha reliable broadcast (the Byzantine audit stack)",
        _build_vs_smr_rb,
        options={"variant": "bracha"},
    )
)
