"""The discrete-event simulator driving processes, timers and the network.

The simulator owns:

* the simulated clock and event queue,
* the registry of :class:`~repro.sim.process.Process` instances,
* the :class:`~repro.sim.network.Network` (delivery scheduling is bound here),
* optional per-step hooks used by monitors and the fault injector.

Running modes
-------------
``run(until=...)`` executes events until the clock passes the deadline;
``run_steps(n)`` executes exactly ``n`` events; ``run_until(predicate, ...)``
executes until a condition over the system state holds (used heavily by the
convergence experiments).
"""

from __future__ import annotations

import math
import random
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.common.errors import SimulationError
from repro.common.logging_utils import get_logger
from repro.common.rng import make_rng
from repro.common.types import ProcessId
from repro.sim.environment import NetworkEnvironment
from repro.sim.events import Event, EventQueue
from repro.sim.network import Channel, ChannelConfig, Network, Packet
from repro.sim.process import Process, ProcessContext
from repro.transport.sim import SimTransport

_log = get_logger("simulator")

#: Returned by :meth:`Simulator.run` / :meth:`Simulator.run_until` when a
#: ``stop_before`` boundary was reached: the next live event lies at or past
#: the boundary and was **not** executed.  Falsy on purpose — callers that
#: ignore pausing treat it like a timeout.
PAUSED = type("_Paused", (), {"__bool__": lambda self: False, "__repr__": lambda self: "PAUSED"})()


class Simulator:
    """Deterministic discrete-event simulator for the asynchronous model."""

    def __init__(
        self,
        seed: int = 0,
        channel_config: Optional[ChannelConfig] = None,
        network: Optional[Network] = None,
        broadcast_streams: str = "shared",
    ) -> None:
        self.seed = seed
        self.now: float = 0.0
        self.events = EventQueue()
        self.network = network or Network(
            default_config=channel_config, seed=seed, broadcast_streams=broadcast_streams
        )
        self.network.bind_scheduler(self._schedule_delivery, self._schedule_deliveries)
        # The time-varying environment layer ticks through ordinary simulator
        # events: bind this simulator as the environment's timeline (clock +
        # ``call_at``) so environment programs (adversarial schedulers,
        # partition schedules) can register their transitions like any other
        # event source.  The simulator object itself is bound — not captured
        # closures — so snapshot/restore rebinds the copy automatically.
        self.network.environment.bind_timeline(self)
        self.processes: Dict[ProcessId, Process] = {}
        #: Per-source outbound interceptors (Byzantine traitor programs):
        #: when a source pid maps to a program here, every packet it sends
        #: is routed through ``program.outgoing(destination, payload)``,
        #: which returns the ``(destination, payload)`` pairs actually put
        #: on the wire (possibly dropped, mutated or fanned out).  Kept on
        #: the simulator — the single choke point of all sends — so no
        #: protocol layer can bypass its node's adversary.
        self.outbound_interceptors: Dict[ProcessId, Any] = {}
        self.executed_events = 0
        self.delivered_messages = 0
        self._pre_step_hooks: List[Callable[["Simulator"], None]] = []
        self._post_step_hooks: List[Callable[["Simulator"], None]] = []
        self._root_rng = make_rng(seed, "simulator")
        #: The transport facade handed to every process context.  One shared
        #: adapter (not one per process) so snapshot deepcopy rebinds all
        #: contexts to the restored simulator through a single memo entry.
        self.transport = SimTransport(self)

    # ------------------------------------------------------------ processes
    def add_process(self, process: Process, start: bool = True) -> Process:
        """Register *process* (unique pid required) and optionally start it."""
        if process.pid in self.processes:
            raise SimulationError(f"duplicate process id {process.pid}")
        self.processes[process.pid] = process
        context = ProcessContext(
            pid=process.pid,
            transport=self.transport,
            rng=self.transport.make_process_rng(process.pid),
        )
        process.bind(context)
        if start:
            process.start()
        return process

    def get_process(self, pid: ProcessId) -> Process:
        """Return the registered process with identifier *pid*."""
        return self.processes[pid]

    def active_processes(self) -> List[Process]:
        """Processes that have started and not crashed."""
        return [p for p in self.processes.values() if p.started and not p.crashed]

    def crash_process(self, pid: ProcessId, drop_in_flight: bool = False) -> None:
        """Crash (stop-fail) the process *pid*.

        When *drop_in_flight* is true, packets already in flight to or from
        the crashed process are discarded (modelling a crash that also takes
        down its network interface); by default they are still delivered,
        matching the paper's model in which a crash only stops future steps.
        """
        process = self.processes[pid]
        process.crash()
        if drop_in_flight:
            for chan in self.network.channels():
                if chan.source == pid or chan.destination == pid:
                    chan.drop_in_flight()

    # --------------------------------------------------------------- timers
    def set_timer(
        self, pid: ProcessId, delay: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Arm a one-shot timer on behalf of process *pid*."""
        if delay < 0:
            raise SimulationError("timer delay must be non-negative")
        return self.events.schedule(self.now + delay, callback, label=label or f"timer:{pid}")

    def cancel_timer(self, handle: Event) -> None:
        """Cancel a previously armed timer."""
        self.events.cancel(handle)

    def call_at(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule an arbitrary callback at absolute simulated *time*."""
        if time < self.now:
            raise SimulationError("cannot schedule an event in the past")
        return self.events.schedule(time, callback, label=label)

    def call_later(self, delay: float, callback: Callable[[], None], label: str = "") -> Event:
        """Schedule an arbitrary callback *delay* time units from now."""
        return self.call_at(self.now + delay, callback, label=label)

    # -------------------------------------------------------------- network
    @property
    def environment(self) -> NetworkEnvironment:
        """The network's time-varying environment layer."""
        return self.network.environment

    def send(self, source: ProcessId, destination: ProcessId, payload: Any) -> None:
        """Send a packet from *source* to *destination* (may be lost)."""
        interceptor = self.outbound_interceptors.get(source)
        if interceptor is not None:
            for dest, adversarial in interceptor.outgoing(destination, payload):
                self.network.send(
                    Packet(source=source, destination=dest, payload=adversarial)
                )
            return
        packet = Packet(source=source, destination=destination, payload=payload)
        self.network.send(packet)

    def send_many(self, source: ProcessId, payloads: Iterable[Any]) -> int:
        """Send a burst of ``(destination, payload)`` pairs from *source*.

        The broadcast fast path: delivery events are scheduled in bulk and
        delays are drawn from the network's dedicated broadcast RNG stream.
        Returns the number of packets accepted into channels.
        """
        interceptor = self.outbound_interceptors.get(source)
        if interceptor is not None:
            payloads = [
                pair
                for destination, payload in payloads
                for pair in interceptor.outgoing(destination, payload)
            ]
        return self.network.send_many(source, payloads)

    @staticmethod
    def _arrival(now: float, delay: float, quantum: float) -> float:
        """The delivery instant: ``now + delay``, rounded **up** to the next
        multiple of the channel's ``delay_quantum`` when one is set — packets
        sent at different times then land together in synchronized bursts."""
        time = now + delay
        if quantum > 0.0:
            time = math.ceil(time / quantum) * quantum
        return time

    def _schedule_delivery(self, channel: Channel, packet: Packet, delay: float) -> None:
        # The delivery event carries (channel, packet) as event args and fires
        # the shared bound method — no per-packet closure allocation.
        self.events.schedule(
            self._arrival(self.now, delay, channel.config.delay_quantum),
            self._deliver,
            label="deliver",
            args=(channel, packet),
        )

    def _schedule_deliveries(self, batch: Iterable[Any]) -> None:
        now = self.now
        deliver = self._deliver
        arrival = self._arrival
        self.events.schedule_many(
            (arrival(now, delay, channel.config.delay_quantum), deliver, (channel, packet), "deliver")
            for channel, packet, delay in batch
        )

    def _deliver(self, channel: Channel, packet: Packet) -> None:
        channel.complete_delivery(packet)
        process = self.processes.get(packet.destination)
        if process is None or process.crashed or not process.started:
            return
        self.delivered_messages += 1
        process.deliver(packet.source, packet.payload)

    # ----------------------------------------------------------------- hooks
    def add_pre_step_hook(self, hook: Callable[["Simulator"], None]) -> None:
        """Run *hook(self)* before every executed event."""
        self._pre_step_hooks.append(hook)

    def add_post_step_hook(self, hook: Callable[["Simulator"], None]) -> None:
        """Run *hook(self)* after every executed event."""
        self._post_step_hooks.append(hook)

    # ------------------------------------------------------------------ run
    def step(self) -> bool:
        """Execute a single event; return ``False`` when the queue is empty."""
        event = self.events.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError("event queue returned an event from the past")
        self.now = event.time
        if self._pre_step_hooks:
            for hook in self._pre_step_hooks:
                hook(self)
        event.callback(*event.args)
        self.executed_events += 1
        if self._post_step_hooks:
            for hook in self._post_step_hooks:
                hook(self)
        return True

    def run(self, until: float, stop_before: Optional[float] = None) -> Any:
        """Run until the simulated clock passes *until* (or no events remain).

        With *stop_before*, execution pauses — returning :data:`PAUSED`, with
        the clock **not** advanced — right before the first event at ``time
        >= stop_before``; otherwise returns ``True`` with ``now`` advanced to
        *until*.  The pause boundary is what snapshot capture uses to stop
        between events (see ``repro.scenarios.runner.drive``).
        """
        while True:
            next_time = self.events.peek_time()
            if next_time is None or next_time > until:
                self.now = max(self.now, until)
                return True
            if stop_before is not None and next_time >= stop_before:
                return PAUSED
            self.step()

    def run_steps(self, count: int) -> int:
        """Execute at most *count* events; return the number executed."""
        executed = 0
        for _ in range(count):
            if not self.step():
                break
            executed += 1
        return executed

    def run_until(
        self,
        predicate: Callable[[], bool],
        timeout: float = 10_000.0,
        check_interval: int = 1,
        stop_before: Optional[float] = None,
        poll_interval: Optional[float] = None,
    ) -> Any:
        """Run until *predicate()* holds or the clock exceeds *timeout*.

        *timeout* is an **absolute simulated-clock deadline**, not a budget:
        a call issued when ``now`` is already past *timeout* returns
        immediately.  Callers that want a budget relative to the current
        instant should pass ``simulator.now + budget`` (which is what
        :meth:`repro.sim.cluster.Cluster.run_until` does).

        Without *poll_interval* the predicate is evaluated every
        *check_interval* executed events.  With a positive *poll_interval*
        the predicate is instead evaluated on a **simulated-time cadence**:
        whenever the next live event would cross the current poll boundary
        (so dense event bursts pay one evaluation per interval, not one per
        event), plus once at each of entry, timeout and queue exhaustion.
        Because the boundary check happens *before* the crossing event
        executes, a predicate that became true at time ``t`` is detected at a
        simulated time at most one poll interval after ``t``.

        Returns ``True`` when the predicate became true, ``False`` on timeout
        or event-queue exhaustion — or :data:`PAUSED` (falsy) when
        *stop_before* is set and the next live event lies at or past that
        boundary (the event is not executed; resuming later re-enters with an
        extra predicate evaluation, which is pure and cannot perturb the
        run).
        """
        if predicate():
            return True
        events = self.events
        if poll_interval is not None and poll_interval > 0.0:
            next_poll = self.now + poll_interval
            while True:
                next_time = events.peek_time()
                if next_time is None or next_time > timeout:
                    return predicate()
                if stop_before is not None and next_time >= stop_before:
                    return PAUSED
                if next_time >= next_poll:
                    if predicate():
                        return True
                    # Re-anchor on the upcoming event so idle stretches skip
                    # straight to the next live instant instead of walking
                    # empty poll windows one by one.
                    next_poll = max(next_poll + poll_interval, next_time)
                self.step()
        counter = 0
        while True:
            next_time = events.peek_time()
            if next_time is None or next_time > timeout:
                return predicate()
            if stop_before is not None and next_time >= stop_before:
                return PAUSED
            self.step()
            counter += 1
            if counter % check_interval == 0 and predicate():
                return True

    # ------------------------------------------------------------ inspection
    def statistics(self) -> Dict[str, Any]:
        """Aggregate simulator + network statistics (used by benchmarks)."""
        stats: Dict[str, Any] = {
            "time": self.now,
            "executed_events": self.executed_events,
            "delivered_messages": self.delivered_messages,
            "processes": len(self.processes),
            "active": len(self.active_processes()),
        }
        stats.update({f"net_{k}": v for k, v in self.network.statistics().items()})
        return stats
