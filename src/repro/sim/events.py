"""Event queue for the discrete-event simulator.

Events are ordered by ``(time, sequence)``; the sequence number breaks ties
deterministically in insertion order, which keeps runs reproducible even when
many events share a timestamp (common when a broadcast schedules one delivery
per destination).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.common.errors import SimulationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Simulated time at which the event fires.
    sequence:
        Monotonically increasing tie-breaker assigned by the queue.
    callback:
        Zero-argument callable executed when the event fires.
    cancelled:
        Events are cancelled lazily: a cancelled event stays in the heap but
        is skipped when popped.
    label:
        Optional human-readable label used by traces and tests.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)

    def cancel(self) -> None:
        """Mark the event so it will be skipped when it reaches the head."""
        self.cancelled = True


class EventQueue:
    """A priority queue of :class:`Event` objects keyed by simulated time."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live_count = 0

    def __len__(self) -> int:
        return self._live_count

    def __bool__(self) -> bool:
        return self._live_count > 0

    def schedule(self, time: float, callback: Callable[[], None], label: str = "") -> Event:
        """Insert a new event firing at *time* and return it.

        Raises :class:`SimulationError` if *time* is not a finite number.
        """
        if not (time == time and time not in (float("inf"), float("-inf"))):
            raise SimulationError(f"cannot schedule event at non-finite time {time!r}")
        event = Event(time=time, sequence=next(self._counter), callback=callback, label=label)
        heapq.heappush(self._heap, event)
        self._live_count += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel *event*; it will be skipped when popped."""
        if not event.cancelled:
            event.cancel()
            self._live_count -= 1

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event, or ``None``."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].time

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        event = heapq.heappop(self._heap)
        self._live_count -= 1
        return event

    def clear(self) -> None:
        """Drop every pending event."""
        self._heap.clear()
        self._live_count = 0

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
