"""Event queue for the discrete-event simulator.

Events are ordered by ``(time, sequence)``; the sequence number breaks ties
deterministically in insertion order, which keeps runs reproducible even when
many events share a timestamp (common when a broadcast schedules one delivery
per destination).

Hot-path design
---------------
The heap holds plain ``(time, sequence, event)`` tuples rather than rich
comparable objects: tuple comparison short-circuits on the ``(time,
sequence)`` prefix (the sequence number is unique, so the :class:`Event`
record itself is never compared), which makes every sift in ``heappush`` /
``heappop`` a C-level comparison with no Python dunder dispatch.  The
:class:`Event` handle uses ``__slots__`` and carries an optional ``args``
tuple so callers can schedule a shared bound method instead of allocating a
closure per event (see ``Simulator._deliver``).

Cancellation is O(1): the handle is flagged and skipped lazily when it
reaches the head of the heap.  Both :meth:`Event.cancel` and
:meth:`EventQueue.cancel` route through the same bookkeeping (the handle
keeps a reference to its owning queue), so ``len(queue)`` is always the exact
number of live events no matter which cancellation path or drain path
(``peek_time`` vs ``pop``) touched the heap.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, List, Optional, Tuple

from repro.common.errors import SimulationError

_INF = float("inf")
_NEG_INF = float("-inf")


class Action:
    """A deep-copyable scheduled callable: ``fn(*args)``.

    Snapshot/restore (:mod:`repro.sim.snapshot`) deep-copies the whole
    simulation graph.  A plain closure in the event queue would survive that
    copy *unchanged* — functions are copied atomically, so its cells would
    keep pointing at the **old** graph and a restored run would silently
    mutate the original cluster.  An ``Action`` instead carries its target
    objects as instance state: ``deepcopy`` remaps them through the same memo
    as the rest of the graph, so the restored event fires against the
    restored objects.

    ``fn`` must be either (a) a module-level function / function accessed on
    a class (stateless; shared across copies by design) with the stateful
    targets passed via ``*args``, or (b) a bound method — ``deepcopy``
    rebinds methods to the copied instance.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable[..., object], *args: object) -> None:
        self.fn = fn
        self.args = args

    def __call__(self, *extra: object) -> object:
        return self.fn(*self.args, *extra)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Action({name}, {', '.join(map(repr, self.args))})"


class Event:
    """A scheduled callback handle.

    Attributes
    ----------
    time:
        Simulated time at which the event fires.
    sequence:
        Monotonically increasing tie-breaker assigned by the queue.
    callback:
        Callable executed when the event fires, invoked as ``callback(*args)``.
    args:
        Positional arguments for *callback* (empty for plain timers).  Passing
        arguments here lets many events share one bound method instead of
        paying a closure allocation per event.
    cancelled:
        Events are cancelled lazily: a cancelled event stays in the heap but
        is skipped when it reaches the head.
    label:
        Optional human-readable label used by traces and tests.
    """

    __slots__ = ("time", "sequence", "callback", "args", "cancelled", "label", "_queue")

    def __init__(
        self,
        time: float,
        sequence: int,
        callback: Callable[..., None],
        args: Tuple = (),
        label: str = "",
        queue: Optional["EventQueue"] = None,
    ) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event so it will be skipped when it reaches the head.

        Routes through the owning queue (when attached) so the queue's live
        count stays exact regardless of which cancellation entry point the
        caller used.
        """
        if self._queue is not None:
            self._queue.cancel(self)
        else:
            self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback with its stored arguments."""
        self.callback(*self.args)


class EventQueue:
    """A priority queue of :class:`Event` handles keyed by simulated time."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._next_seq = 0
        self._live_count = 0

    def __len__(self) -> int:
        return self._live_count

    def __bool__(self) -> bool:
        return self._live_count > 0

    def schedule(
        self,
        time: float,
        callback: Callable[..., None],
        label: str = "",
        args: Tuple = (),
    ) -> Event:
        """Insert a new event firing at *time* and return its handle.

        Raises :class:`SimulationError` if *time* is not a finite number.
        """
        if not (time == time and time != _INF and time != _NEG_INF):
            raise SimulationError(f"cannot schedule event at non-finite time {time!r}")
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, seq, callback, args, label, self)
        heapq.heappush(self._heap, (time, seq, event))
        self._live_count += 1
        return event

    def schedule_many(
        self, entries: Iterable[Tuple[float, Callable[..., None], Tuple, str]]
    ) -> List[Event]:
        """Bulk-insert events; each entry is ``(time, callback, args, label)``.

        Insertion order assigns the tie-breaking sequence numbers exactly as a
        sequence of :meth:`schedule` calls would, so the two APIs are
        interchangeable without perturbing determinism.  When the queue is
        empty the batch is heapified in O(k) instead of k pushes.  The batch
        is validated before the queue is touched, so a non-finite time leaves
        the queue unchanged.
        """
        validated = []
        for entry in entries:
            time = entry[0]
            if not (time == time and time != _INF and time != _NEG_INF):
                raise SimulationError(f"cannot schedule event at non-finite time {time!r}")
            validated.append(entry)
        heap = self._heap
        created: List[Event] = []
        seq = self._next_seq
        bulk = not heap
        for time, callback, args, label in validated:
            event = Event(time, seq, callback, args, label, self)
            if bulk:
                heap.append((time, seq, event))
            else:
                heapq.heappush(heap, (time, seq, event))
            seq += 1
            created.append(event)
        if bulk and heap:
            heapq.heapify(heap)
        self._next_seq = seq
        self._live_count += len(created)
        return created

    def cancel(self, event: Event) -> None:
        """Cancel *event* in O(1); it will be skipped lazily when popped.

        Cancelling an event that has already been popped (or dropped by
        :meth:`clear`) is a no-op — the live count only tracks events still
        in the heap, so it stays exact whichever order pop/cancel land in
        (e.g. a process crashing itself from inside its own firing timer).
        """
        if not event.cancelled:
            event.cancelled = True
            if event._queue is self:
                self._live_count -= 1

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the next live event, or ``None``."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)[2]._queue = None
        if not heap:
            return None
        return heap[0][0]

    def pop(self) -> Optional[Event]:
        """Remove and return the next live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            event._queue = None
            if not event.cancelled:
                self._live_count -= 1
                return event
        return None

    def clear(self) -> None:
        """Drop every pending event."""
        for _, _, event in self._heap:
            event._queue = None
        self._heap.clear()
        self._live_count = 0
