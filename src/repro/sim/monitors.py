"""Invariant monitoring and convergence tracking.

Two kinds of observers are provided:

* :class:`InvariantMonitor` — evaluates named predicates over the whole
  system after every executed event; violations are either recorded (default)
  or raised (strict mode).  The safety properties of the paper's theorems
  (e.g. "no two participants hold different non-⊥ configurations after
  convergence") are expressed as such predicates in the test-suite.

* :class:`ConvergenceTracker` — watches a predicate and records the first
  simulated time (and event index) at which it becomes true and *stays* true,
  which is how the benchmark harness measures convergence times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.common.errors import InvariantViolation
from repro.sim.simulator import Simulator


@dataclass
class Violation:
    """A recorded invariant-violation *interval*.

    One record covers a maximal run of consecutive executed events during
    which the predicate stayed false: ``time``/``event_index`` mark the first
    violating step, ``last_time``/``last_event_index`` the most recent one,
    and ``count`` how many executed events the interval spans.  Recording
    false→true transitions instead of one record per step keeps the monitor's
    memory proportional to the number of flips, not O(executed_events) on a
    long chaotic run where a predicate is false for millions of steps.
    """

    time: float
    event_index: int
    name: str
    details: str = ""
    last_time: float = 0.0
    last_event_index: int = 0
    count: int = 1

    def __post_init__(self) -> None:
        if self.last_time < self.time:
            self.last_time = self.time
        if self.last_event_index < self.event_index:
            self.last_event_index = self.event_index

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (used by scenario results / audit verdicts)."""
        return {
            "name": self.name,
            "first_time": self.time,
            "first_event": self.event_index,
            "last_time": self.last_time,
            "last_event": self.last_event_index,
            "count": self.count,
            "details": self.details,
        }


class InvariantMonitor:
    """Evaluate named system-wide predicates after every simulator step."""

    def __init__(self, simulator: Simulator, strict: bool = False) -> None:
        self.simulator = simulator
        self.strict = strict
        self.predicates: Dict[str, Callable[[], bool]] = {}
        self.violations: List[Violation] = []
        self._open: Dict[str, Violation] = {}
        simulator.add_post_step_hook(self._check)

    def add_invariant(self, name: str, predicate: Callable[[], bool]) -> None:
        """Register *predicate*; it must return True whenever the invariant holds."""
        self.predicates[name] = predicate

    def violated(self, name: Optional[str] = None) -> List[Violation]:
        """Return recorded violation intervals, optionally filtered by name."""
        if name is None:
            return list(self.violations)
        return [v for v in self.violations if v.name == name]

    def ok(self) -> bool:
        """True when no violation has been recorded."""
        return not self.violations

    def summary(self) -> Dict[str, Any]:
        """JSON-serializable summary of every recorded interval."""
        return {
            "ok": self.ok(),
            "intervals": [violation.as_dict() for violation in self.violations],
        }

    def _check(self, simulator: Simulator) -> None:
        open_intervals = self._open
        for name, predicate in self.predicates.items():
            try:
                holds = predicate()
            except Exception as exc:  # pragma: no cover - defensive
                holds = False
                detail = f"predicate raised {exc!r}"
            else:
                detail = ""
            if holds:
                # Close the interval (if any): the next false step opens a new
                # one, so flapping predicates record one interval per flap.
                open_intervals.pop(name, None)
                continue
            interval = open_intervals.get(name)
            if interval is None:
                interval = Violation(
                    time=simulator.now,
                    event_index=simulator.executed_events,
                    name=name,
                    details=detail,
                )
                open_intervals[name] = interval
                self.violations.append(interval)
            else:
                interval.last_time = simulator.now
                interval.last_event_index = simulator.executed_events
                interval.count += 1
            if self.strict:
                raise InvariantViolation(f"{name} violated at t={simulator.now}: {detail}")


class ConvergenceTracker:
    """Record when a predicate first becomes (and stays) true.

    ``stabilization_time`` is the time of the *last* transition from false to
    true — i.e. the start of the suffix during which the predicate held
    continuously until the end of the run.  This matches the paper's notion
    of an execution suffix belonging to the set of legal executions.

    ``poll_interval`` > 0 samples the predicate on that sim-time cadence
    instead of after every executed event: every recorded transition time
    coarsens by at most one interval, in exchange for dropping the
    per-event predicate cost (prohibitive for large topologies, where a
    dense event stream pays the cluster-wide predicate hundreds of
    thousands of times per simulated unit).
    """

    def __init__(
        self,
        simulator: Simulator,
        predicate: Callable[[], bool],
        name: str = "",
        poll_interval: float = 0.0,
    ) -> None:
        self.simulator = simulator
        self.predicate = predicate
        self.name = name or "convergence"
        self.poll_interval = poll_interval
        self._next_poll = 0.0
        self.first_true_time: Optional[float] = None
        self.first_true_event: Optional[int] = None
        self.last_transition_time: Optional[float] = None
        self.last_transition_event: Optional[int] = None
        self.currently_true = False
        self.transition_count = 0
        simulator.add_post_step_hook(self._observe)

    def _observe(self, simulator: Simulator) -> None:
        if self.poll_interval > 0.0:
            if simulator.now < self._next_poll:
                return
            self._next_poll = simulator.now + self.poll_interval
        self.flush()

    def flush(self) -> None:
        """Evaluate the predicate now, regardless of the poll cadence.

        Called on every sample, and again by :meth:`summary` so a throttled
        tracker's final verdict reflects the end-of-run state rather than
        the last scheduled sample (a run routinely ends mid-interval).
        """
        simulator = self.simulator
        holds = bool(self.predicate())
        if holds and not self.currently_true:
            self.transition_count += 1
            if self.first_true_time is None:
                self.first_true_time = simulator.now
                self.first_true_event = simulator.executed_events
            self.last_transition_time = simulator.now
            self.last_transition_event = simulator.executed_events
        self.currently_true = holds

    @property
    def stabilization_time(self) -> Optional[float]:
        """Time at which the predicate last became true (and stayed true)."""
        if not self.currently_true:
            return None
        return self.last_transition_time

    @property
    def stabilization_event(self) -> Optional[int]:
        """Event index at which the predicate last became true."""
        if not self.currently_true:
            return None
        return self.last_transition_event

    def summary(self) -> Dict[str, Any]:
        """Dictionary summary used by the benchmark reporting helpers."""
        self.flush()
        return {
            "name": self.name,
            "converged": self.currently_true,
            "first_true_time": self.first_true_time,
            "stabilization_time": self.stabilization_time,
            "transitions": self.transition_count,
        }
