"""Discrete-event simulation substrate for asynchronous message passing.

The simulator realizes the system model of Section 2 of the paper:

* an asynchronous interleaving of steps — each step is local computation
  followed by a single communication operation;
* fully-connected topology with per-directed-pair channels of bounded
  capacity ``cap`` whose packets may be lost, duplicated or reordered but not
  created out of thin air (except by the fault injector, which models
  transient faults);
* *fair communication*: a packet that is sent infinitely often is received
  infinitely often (losses are probabilistic with probability < 1);
* processors that may crash (stop-fail) and new processors that may join.

The package also contains the transient-fault injector and the invariant
monitors used by the test-suite and benchmark harness.
"""

from repro.sim.events import Action, Event, EventQueue
from repro.sim.snapshot import SimSnapshot, snapshot
from repro.sim.network import Packet, Channel, ChannelConfig, Network
from repro.sim.process import Process, ProcessContext
from repro.sim.simulator import Simulator
from repro.sim.config import ClusterConfig, fast_sim, paper_faithful, preset
from repro.sim.stacks import StackProfile, available_stacks, get_stack, register_stack, stack
from repro.sim.faults import FaultInjector, TransientFaultCampaign
from repro.sim.monitors import InvariantMonitor, ConvergenceTracker
from repro.sim.cluster import Cluster, ClusterNode, build_cluster

__all__ = [
    "Action",
    "Event",
    "EventQueue",
    "SimSnapshot",
    "snapshot",
    "Packet",
    "Channel",
    "ChannelConfig",
    "Network",
    "Process",
    "ProcessContext",
    "Simulator",
    "ClusterConfig",
    "fast_sim",
    "paper_faithful",
    "preset",
    "StackProfile",
    "available_stacks",
    "get_stack",
    "register_stack",
    "stack",
    "FaultInjector",
    "TransientFaultCampaign",
    "InvariantMonitor",
    "ConvergenceTracker",
    "Cluster",
    "ClusterNode",
    "build_cluster",
]
