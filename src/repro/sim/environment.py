"""The time-varying network environment: link programs, partitions, leaks.

The paper's fair-communication model lets the channel adversary vary loss,
delay and reordering *over time*; historically the fabric only supported
static per-pair :class:`~repro.sim.network.ChannelConfig` overrides installed
once before the run, and a binary ``frozenset`` partition set that healed
all-or-nothing.  :class:`NetworkEnvironment` turns network conditions into a
first-class, programmable layer:

* **link state** — the effective :class:`ChannelConfig` of every directed
  pair is resolved through a stack of layers: tagged *overlays* (what dynamic
  adversaries push and pop mid-run) over explicit *overrides* (what the
  static schedulers install) over *link policies* (pair-keyed functions that
  shape channels created later, so **late joiners inherit the active
  shaping**) over the network default.  Resolution is *pull-based and
  memoized*: the network reads every channel's config through
  :meth:`resolve`, a per-pair cache invalidated (and :attr:`version` bumped)
  by every layer mutation — the steady-state send path pays one dict lookup
  and a mutation is O(1) instead of a re-sync walk;
* **partitions** — *named*, *directed* and optionally *leaky*: one-way
  blocks, per-partition heal, and a leak probability that lets an occasional
  packet cross (fair communication is preserved whenever every blocking
  partition leaks);
* **time** — environment programs schedule their transitions as ordinary
  simulator events through :meth:`call_at`; every mutation is recorded as a
  transition (with the simulated timestamp) so scenario results can report
  what the environment did and when.

The environment is owned by the :class:`~repro.sim.network.Network` (which
consults it on every channel creation and every send) and bound to the
:class:`~repro.sim.simulator.Simulator`'s clock and event queue at simulator
construction.  Randomness (leak draws) comes from a dedicated seeded stream,
so installing a leak-free environment program never perturbs the delivery
schedule of an existing scenario.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.common.rng import make_rng
from repro.common.types import ProcessId

LinkKey = Tuple[ProcessId, ProcessId]
#: A pair-keyed shaping rule: return a config for the directed pair, or
#: ``None`` to let the next layer decide.
LinkPolicy = Callable[[ProcessId, ProcessId], Optional[Any]]

#: How many individual transition records :meth:`NetworkEnvironment.summary`
#: retains verbatim; counts are always exact regardless of this cap.
MAX_RECORDED_TRANSITIONS = 256

#: High-volume kinds counted exactly but kept out of the bounded record
#: list: a static installer emits one ``link_config`` per directed pair
#: (O(n²) identical t=0 entries), which would crowd the mid-run partition/
#: overlay/heal transitions the log exists to report.
UNLISTED_KINDS = frozenset({"link_config", "link_config_cleared"})

#: Cache-miss sentinel for :meth:`NetworkEnvironment.resolve` (``None`` is a
#: legitimate policy answer, so it cannot mark absence).
_UNRESOLVED = object()


class NetworkEnvironment:
    """Programmable, time-varying state of the network fabric."""

    def __init__(self, default_config: Any, seed: int = 0) -> None:
        self.default_config = default_config
        self._seed = seed
        self._rng = make_rng(seed, "environment")
        # Link-state layers, most specific first at resolution time:
        # overlays (last pushed wins) > overrides > policies > default.
        self._overlays: Dict[str, Dict[LinkKey, Any]] = {}
        self._overrides: Dict[LinkKey, Any] = {}
        self._policies: List[Tuple[str, LinkPolicy]] = []
        # Named directed partitions: name -> {link: leak_probability}, plus
        # the per-link view used on the send hot path.
        self._partitions: Dict[str, Dict[LinkKey, float]] = {}
        self._blocked: Dict[LinkKey, Dict[str, float]] = {}
        self._partition_counter = 0
        # Binding (installed by Network / Simulator).  The timeline is the
        # simulator object itself (``.now`` / ``.call_at``) rather than a
        # pair of captured closures, so snapshot/restore (repro.sim.snapshot)
        # remaps it together with the rest of the graph.
        self._network: Optional[Any] = None
        self._timeline: Optional[Any] = None
        # Memoized link-state resolution: the effective config of a directed
        # pair is cached until any config-affecting layer (overlay, override,
        # policy) mutates; ``version`` counts every mutation of the
        # environment — partitions included — so external observers can
        # detect *any* change with one integer compare.
        self._resolve_cache: Dict[LinkKey, Any] = {}
        self.version = 0
        self.resolve_hits = 0
        self.resolve_misses = 0
        # Transition log: exact counts plus a bounded list of records.
        self.transition_counts: Dict[str, int] = {}
        self.transitions: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Bindings
    # ------------------------------------------------------------------
    def attach(self, network: Any) -> None:
        """Bind the owning network (done by ``Network.__init__``)."""
        self._network = network

    def bind_timeline(self, timeline: Any) -> None:
        """Bind the simulator (clock + ``call_at``); done by the simulator.

        The simulator object is held directly instead of captured closures so
        that a deep copy of the graph (snapshot/restore) rebinds the copy's
        environment to the copy's simulator automatically.
        """
        self._timeline = timeline

    @property
    def now(self) -> float:
        """The current simulated time (0.0 before a simulator is bound)."""
        timeline = self._timeline
        return timeline.now if timeline is not None else 0.0

    def call_at(self, time: float, callback: Callable[[], None], label: str = "") -> Any:
        """Schedule an environment transition as a simulator event."""
        if self._timeline is None:
            raise SimulationError("environment is not bound to a simulator")
        return self._timeline.call_at(time, callback, label=label or "environment")

    # ------------------------------------------------------------------
    # Transition log
    # ------------------------------------------------------------------
    def record(self, kind: str, **details: Any) -> None:
        """Record one environment transition (exact count, bounded detail)."""
        self.transition_counts[kind] = self.transition_counts.get(kind, 0) + 1
        if kind in UNLISTED_KINDS:
            return
        if len(self.transitions) < MAX_RECORDED_TRANSITIONS:
            self.transitions.append({"time": self.now, "kind": kind, **details})

    @property
    def transition_count(self) -> int:
        """Total number of recorded transitions (exact)."""
        return sum(self.transition_counts.values())

    def summary(self) -> Dict[str, Any]:
        """JSON-serializable view of what the environment did during a run."""
        lookups = self.resolve_hits + self.resolve_misses
        return {
            "transitions": self.transition_count,
            "by_kind": dict(sorted(self.transition_counts.items())),
            "active_partitions": sorted(self._partitions),
            "events": [dict(entry) for entry in self.transitions],
            "resolve_cache": {
                "version": self.version,
                "entries": len(self._resolve_cache),
                "hits": self.resolve_hits,
                "misses": self.resolve_misses,
                "hit_rate": (self.resolve_hits / lookups) if lookups else None,
            },
        }

    # ------------------------------------------------------------------
    # Link state: overlays > overrides > policies > default
    # ------------------------------------------------------------------
    def resolve(self, source: ProcessId, destination: ProcessId) -> Any:
        """Memoized :meth:`config_for`: one dict lookup on the steady path.

        The cache is invalidated (and :attr:`version` bumped) on every
        mutation of a config-affecting layer — overlay push/pop, explicit
        override set/clear, policy registration — so a cached entry is always
        identical to a fresh layer walk.  Registered link policies must
        therefore be *pure* per pair (the built-in schedulers' are); a policy
        that wants to vary over time should be expressed as overlay/override
        transitions, which invalidate correctly.
        """
        key = (source, destination)
        cache = self._resolve_cache
        config = cache.get(key, _UNRESOLVED)
        if config is not _UNRESOLVED:
            self.resolve_hits += 1
            return config
        self.resolve_misses += 1
        config = self.config_for(source, destination)
        cache[key] = config
        return config

    def _invalidate_resolution(self) -> None:
        """A config-affecting layer changed: drop every memoized pair."""
        self.version += 1
        if self._resolve_cache:
            self._resolve_cache.clear()

    def config_for(self, source: ProcessId, destination: ProcessId) -> Any:
        """The effective channel config of the directed pair, layer-resolved."""
        key = (source, destination)
        if self._overlays:
            for mapping in reversed(list(self._overlays.values())):
                config = mapping.get(key)
                if config is not None:
                    return config
        config = self._overrides.get(key)
        if config is not None:
            return config
        for _, policy in self._policies:
            config = policy(source, destination)
            if config is not None:
                return config
        # Read the default through the attached network (callers historically
        # rebind ``network.default_config`` after construction).
        if self._network is not None:
            return self._network.default_config
        return self.default_config

    def set_link_config(
        self, source: ProcessId, destination: ProcessId, config: Any
    ) -> None:
        """Install an explicit override for one directed pair."""
        self._overrides[(source, destination)] = config
        self._invalidate_resolution()
        self.record("link_config", link=[source, destination])

    def clear_link_config(self, source: ProcessId, destination: ProcessId) -> None:
        """Drop the explicit override of one directed pair (if any)."""
        if self._overrides.pop((source, destination), None) is not None:
            self._invalidate_resolution()
            self.record("link_config_cleared", link=[source, destination])

    def apply_overlay(self, tag: str, mapping: Dict[LinkKey, Any]) -> None:
        """Push (or replace) the tagged overlay; overlays win over overrides.

        Dynamic adversaries use overlays so that dropping the tag restores
        whatever shaping was active underneath — no need to remember it.
        """
        self._overlays.pop(tag, None)
        self._overlays[tag] = dict(mapping)
        self._invalidate_resolution()
        self.record("overlay", tag=tag, links=len(mapping))

    def remove_overlay(self, tag: str) -> bool:
        """Pop the tagged overlay, restoring the layers underneath."""
        mapping = self._overlays.pop(tag, None)
        if mapping is None:
            return False
        self._invalidate_resolution()
        self.record("overlay_removed", tag=tag, links=len(mapping))
        return True

    def add_link_policy(self, name: str, policy: LinkPolicy) -> None:
        """Register a pair-keyed shaping rule for channels created later.

        This is what makes late joiners inherit the active shaping: the
        network pulls every channel's config through :meth:`resolve`, which
        consults registered policies for pairs without an explicit override.
        Existing channels pick the policy up on their next access (the
        registration invalidates the resolve cache).
        """
        self._policies.append((name, policy))
        self._invalidate_resolution()
        self.record("link_policy", name=name)

    # ------------------------------------------------------------------
    # Partitions: named, directed, leaky
    # ------------------------------------------------------------------
    def _next_partition_name(self) -> str:
        self._partition_counter += 1
        return f"partition-{self._partition_counter}"

    def block_links(
        self,
        links: Iterable[LinkKey],
        name: Optional[str] = None,
        leak: float = 0.0,
    ) -> str:
        """Block the given directed links under one named partition."""
        if not 0.0 <= leak < 1.0:
            raise SimulationError("partition leak probability must be in [0, 1)")
        if name is None:
            name = self._next_partition_name()
        entry = self._partitions.setdefault(name, {})
        for source, destination in links:
            if source == destination:
                continue
            key = (source, destination)
            entry[key] = leak
            self._blocked.setdefault(key, {})[name] = leak
        # Partitions gate delivery (``permits``) but do not change a pair's
        # resolved config, so they bump the version without clearing the
        # resolve cache.
        self.version += 1
        self.record("partition", name=name, links=len(entry), leak=leak)
        return name

    def partition(
        self,
        group_a: Iterable[ProcessId],
        group_b: Iterable[ProcessId],
        name: Optional[str] = None,
        leak: float = 0.0,
        symmetric: bool = True,
    ) -> str:
        """Partition two groups; ``symmetric=False`` blocks only a→b links.

        Returns the partition's name, the handle :meth:`heal` takes — unlike
        the historical ``frozenset`` set, several partitions coexist and heal
        independently, and a one-way partition is just ``symmetric=False``.
        """
        group_a = list(group_a)
        group_b = list(group_b)
        links: List[LinkKey] = []
        for a in group_a:
            for b in group_b:
                if a == b:
                    continue
                links.append((a, b))
                if symmetric:
                    links.append((b, a))
        return self.block_links(links, name=name, leak=leak)

    def isolate(
        self,
        pid: ProcessId,
        peers: Iterable[ProcessId],
        name: Optional[str] = None,
        leak: float = 0.0,
    ) -> str:
        """Block every link between *pid* and *peers*, both directions."""
        return self.partition([pid], [p for p in peers if p != pid], name=name, leak=leak)

    def heal(self, name: Optional[str] = None) -> int:
        """Heal the named partition (or every partition); return links freed."""
        names = [name] if name is not None else list(self._partitions)
        freed = 0
        for partition_name in names:
            entry = self._partitions.pop(partition_name, None)
            if entry is None:
                continue
            for key in entry:
                blockers = self._blocked.get(key)
                if blockers is not None:
                    blockers.pop(partition_name, None)
                    if not blockers:
                        del self._blocked[key]
            freed += len(entry)
            self.version += 1
            self.record("heal", name=partition_name, links=len(entry))
        return freed

    def active_partitions(self) -> List[str]:
        """Names of every currently installed partition."""
        return sorted(self._partitions)

    def is_blocked(self, source: ProcessId, destination: ProcessId) -> bool:
        """True when at least one partition blocks the directed pair."""
        return (source, destination) in self._blocked

    def permits(self, source: ProcessId, destination: ProcessId) -> bool:
        """Whether a packet may currently travel the directed pair.

        A blocked pair still passes a packet with probability equal to the
        *product* of the blocking partitions' leak probabilities (the packet
        must leak through every one); any leak-free blocker drops everything.
        Leak draws come from the environment's dedicated RNG stream.
        """
        blockers = self._blocked.get((source, destination))
        if not blockers:
            return True
        passthrough = 1.0
        for leak in blockers.values():
            if leak <= 0.0:
                return False
            passthrough *= leak
        return self._rng.random() < passthrough
