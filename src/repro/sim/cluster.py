"""Cluster wiring: a full protocol stack per simulated processor.

A :class:`ClusterNode` owns the complete stack of one processor:

* the token-exchange data links and heartbeat service (:mod:`repro.datalink`),
* the (N, Theta)-failure detector (:mod:`repro.failure_detector`),
* the composed reconfiguration scheme (:mod:`repro.core.scheme`),
* the application services of its :class:`~repro.sim.stacks.StackProfile`
  (labels, counters, virtual synchrony, shared register), which the node
  instantiates itself — examples, tests and benchmarks pick a profile
  instead of hand-wiring services.

All tunables travel as one :class:`~repro.sim.config.ClusterConfig` value
shared by the cluster and every node, including nodes added later by churn.

:class:`Cluster` is the convenience facade used by examples, tests and the
benchmark harness: it creates the simulator, the initial nodes, and exposes
helpers such as :meth:`Cluster.run_until_converged` and
:meth:`Cluster.agreed_configuration`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Protocol, Union

from repro.common.errors import SimulationError
from repro.common.types import BOTTOM, Configuration, ProcessId, make_config
from repro.core.prediction import PredictionPolicy
from repro.core.scheme import ReconfigurationScheme
from repro.core.stale import is_real_config
from repro.datalink.heartbeat import HeartbeatService
from repro.datalink.token_exchange import DataLinkMessage
from repro.failure_detector.ntheta import NThetaFailureDetector
from repro.sim.config import ClusterConfig
from repro.sim.network import ChannelConfig
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.sim.stacks import StackProfile, get_stack


class NodeService(Protocol):
    """Interface of application services pluggable into a node.

    A service may implement either hook; both are optional (the node inspects
    the service once, at registration, and dispatches through precomputed
    hook lists — no per-event ``getattr``).
    """

    def on_timer(self) -> None:  # pragma: no cover - protocol declaration
        ...

    def on_message(self, sender: ProcessId, message: Any) -> bool:  # pragma: no cover
        ...


class ClusterNode(Process):
    """A simulated processor running the full reconfiguration stack."""

    def __init__(
        self,
        pid: ProcessId,
        peers: Iterable[ProcessId],
        config: ClusterConfig,
        initial_config: Any = None,
        stack: Optional[StackProfile] = None,
        prediction_policy: Optional[PredictionPolicy] = None,
    ) -> None:
        peers = list(peers)
        if config.channel is None or config.upper_bound_n is None:
            config = config.resolve(n=len(peers) or 1)
        super().__init__(pid=pid, step_interval=config.step_interval)
        self.config = config
        self._initial_peers = [p for p in peers if p != pid]
        #: Out-of-band knobs read by stack-profile policies (e.g. the default
        #: ``vs_smr`` evalConfig reads ``control["reconfigure"]``).
        self.control: Dict[str, Any] = {}
        self.failure_detector = NThetaFailureDetector(
            pid=pid, upper_bound_n=config.upper_bound_n
        )
        self.heartbeat = HeartbeatService(
            pid=pid,
            send=self._send_raw,
            channel_capacity=config.channel.capacity,
            require_cleaning=config.require_link_cleaning,
            idle_resend_interval=config.heartbeat_resend_interval,
        )
        self.heartbeat.add_heartbeat_listener(self.failure_detector.heartbeat)
        self.scheme = ReconfigurationScheme(
            pid=pid,
            fd_provider=self.trusted,
            send=self._send_raw,
            initial_config=initial_config,
            prediction_policy=prediction_policy or config.prediction_policy,
            admission_policy=config.admission_policy,
            send_many=self._send_raw_many,
            gossip_refresh_interval=config.gossip_refresh_interval,
        )
        self.services: List[Any] = []
        self.service_map: Dict[str, Any] = {}
        self._timer_hooks: List[Callable[[], None]] = []
        self._message_hooks: List[Callable[[ProcessId, Any], bool]] = []
        self.stack: StackProfile = stack if stack is not None else get_stack(config.stack)
        for name, service in self.stack.instantiate(self).items():
            self.register_service(service, name=name)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def recsa(self):
        """The node's Reconfiguration Stability Assurance layer."""
        return self.scheme.recsa

    @property
    def recma(self):
        """The node's Reconfiguration Management layer."""
        return self.scheme.recma

    @property
    def joining(self):
        """The node's joining-mechanism instance."""
        return self.scheme.joining

    def trusted(self) -> FrozenSet[ProcessId]:
        """The failure detector's current trusted set (includes self)."""
        return self.failure_detector.trusted()

    def current_config(self) -> Optional[Configuration]:
        """The configuration this node currently reports, if any."""
        return self.scheme.configuration()

    def register_service(self, service: Any, name: Optional[str] = None) -> Any:
        """Attach an application service (labels, counters, VS, ...).

        Hook methods are looked up once here; dispatch afterwards walks plain
        lists.  Objects without hooks (e.g. a :class:`SharedRegister` client)
        still land in :attr:`service_map` under *name*.
        """
        self.services.append(service)
        if name is not None:
            self.service_map[name] = service
        timer_hook = getattr(service, "on_timer", None)
        if callable(timer_hook):
            self._timer_hooks.append(timer_hook)
        message_hook = getattr(service, "on_message", None)
        if callable(message_hook):
            self._message_hooks.append(message_hook)
        return service

    def service(self, name: str) -> Any:
        """The stack service registered under *name* (e.g. ``"vs"``)."""
        try:
            return self.service_map[name]
        except KeyError:
            raise KeyError(
                f"node {self.pid} (stack {self.stack.name!r}) has no service "
                f"{name!r}; available: {sorted(self.service_map)}"
            ) from None

    # ------------------------------------------------------------------
    # Process hooks
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        for peer in self._initial_peers:
            self.heartbeat.add_peer(peer)

    def on_timer(self) -> None:
        self.heartbeat.on_timer()
        self.scheme.step()
        for hook in self._timer_hooks:
            hook()

    def on_receive(self, sender: ProcessId, payload: Any) -> None:
        # A packet from an unknown peer is the "connection signal": create the
        # link (which starts the snap-stabilizing cleaning handshake).
        if sender not in self.heartbeat.links and sender != self.pid:
            self.heartbeat.add_peer(sender)
        if isinstance(payload, DataLinkMessage):
            self.heartbeat.on_packet(sender, payload)
            return
        # Protocol gossip proves the sender's liveness just as well as a
        # heartbeat token does, which is what lets idle links throttle their
        # token retransmissions without starving the failure detector.
        self.heartbeat.notify_traffic(sender)
        if self.scheme.on_message(sender, payload):
            return
        for hook in self._message_hooks:
            if hook(sender, payload):
                return

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, destination: ProcessId, payload: Any) -> None:
        """Send *payload* to *destination* (no-op when crashed/unbound).

        This is the public send surface handed to stack services; the
        underscore alias remains for the scheme/heartbeat wiring above.
        """
        if self.context is not None and not self.crashed:
            self.context.send(destination, payload)

    _send_raw = send

    def _send_raw_many(self, payloads: Any) -> None:
        """Burst-send ``(destination, payload)`` pairs (broadcast fast path)."""
        if self.context is not None and not self.crashed:
            self.context.send_many(payloads)


class Cluster:
    """A simulated system of :class:`ClusterNode` processors."""

    def __init__(self, simulator: Simulator, config: ClusterConfig) -> None:
        if config.channel is None or config.upper_bound_n is None:
            raise SimulationError(
                "Cluster requires a resolved ClusterConfig; call "
                "config.resolve(n) (or use build_cluster)"
            )
        self.simulator = simulator
        self.config = config
        self.stack: StackProfile = get_stack(config.stack)
        self.nodes: Dict[ProcessId, ClusterNode] = {}
        #: Pids that have *ever* run a Byzantine traitor program (see
        #: :mod:`repro.audit.byzantine`).  Honest-node safety invariants
        #: (``rb_agreement``/``rb_validity``) exclude these: a traitor's own
        #: local state carries no guarantees, even after it falls silent.
        self.byzantine_pids: set = set()
        #: Deterministic, JSON-serializable reports appended by installed
        #: workloads (e.g. what a corruption workload actually injected); the
        #: scenario runner copies them into the result dictionary.
        self.workload_reports: List[Dict[str, Any]] = []

    @property
    def environment(self):
        """The network's time-varying environment layer (link programs,
        partitions); what adversarial environment programs mutate mid-run."""
        return self.simulator.network.environment

    # Convenience views on the shared config (kept for existing callers).
    @property
    def upper_bound_n(self) -> int:
        return self.config.upper_bound_n  # type: ignore[return-value]

    @property
    def channel_capacity(self) -> int:
        return self.config.channel.capacity  # type: ignore[union-attr]

    @property
    def step_interval(self) -> float:
        return self.config.step_interval

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def add_node(
        self,
        pid: ProcessId,
        initial_config: Any = None,
        peers: Optional[Iterable[ProcessId]] = None,
        prediction_policy: Optional[PredictionPolicy] = None,
        stack: Optional[StackProfile] = None,
    ) -> ClusterNode:
        """Create, register and start a node.

        ``initial_config`` follows the :class:`~repro.core.recsa.RecSA`
        convention: ``None`` boots a non-participant (a joiner), ``BOTTOM``
        boots into a brute-force reset (self-bootstrap), and a concrete set
        boots with that configuration installed (a coherent start).  The node
        runs the cluster's stack profile unless *stack* overrides it.
        """
        if peers is None:
            peers = list(self.nodes.keys())
        node = ClusterNode(
            pid=pid,
            peers=peers,
            config=self.config,
            initial_config=initial_config,
            stack=stack if stack is not None else self.stack,
            prediction_policy=prediction_policy,
        )
        self.nodes[pid] = node
        self.simulator.add_process(node)
        return node

    def add_joiner(self, pid: ProcessId) -> ClusterNode:
        """Add a new processor that must go through the joining mechanism."""
        return self.add_node(pid, initial_config=None)

    def crash(self, pid: ProcessId) -> None:
        """Stop-fail node *pid* (must exist)."""
        self.simulator.crash_process(pid)

    def try_crash(self, pid: ProcessId) -> bool:
        """Crash *pid* if it exists and is alive; report whether it fired.

        The guard every scheduled workload needs: a churn trace or crash
        storm may target a pid that was never added or already crashed.
        """
        node = self.nodes.get(pid)
        if node is None or node.crashed:
            return False
        self.crash(pid)
        return True

    # ------------------------------------------------------------------
    # Collective queries
    # ------------------------------------------------------------------
    def alive_nodes(self) -> List[ClusterNode]:
        """Nodes that have started and not crashed."""
        return [node for node in self.nodes.values() if node.started and not node.crashed]

    def participants(self) -> List[ClusterNode]:
        """Alive nodes that are participants."""
        return [node for node in self.alive_nodes() if node.scheme.is_participant()]

    def services(self, name: str) -> Dict[ProcessId, Any]:
        """The *name* stack service of every node that carries one."""
        return {
            pid: node.service_map[name]
            for pid, node in self.nodes.items()
            if name in node.service_map
        }

    def agreed_configuration(self) -> Optional[Configuration]:
        """The single configuration every alive participant holds, if any.

        Returns ``None`` when participants disagree, some hold ``⊥``, or
        there are no participants at all.
        """
        configs = set()
        participants = self.participants()
        if not participants:
            return None
        for node in participants:
            value = node.recsa.config.get(node.pid)
            if not is_real_config(value):
                return None
            configs.add(value)
        if len(configs) != 1:
            return None
        return next(iter(configs))

    def is_converged(self) -> bool:
        """True when all alive participants agree and report stability."""
        config = self.agreed_configuration()
        if config is None:
            return False
        return all(node.scheme.no_reco() for node in self.participants())

    def all_nodes_participating(self) -> bool:
        """True when every alive node has become a participant."""
        alive = self.alive_nodes()
        return bool(alive) and all(node.scheme.is_participant() for node in alive)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Advance the simulation until simulated time *until*."""
        self.simulator.run(until=until)

    def run_until_converged(self, timeout: float = 2_000.0) -> bool:
        """Run until every alive participant agrees on a stable configuration.

        *timeout* is a **budget of simulated time from the current instant**,
        so a re-convergence check issued late in a long run (``now > 2000``)
        gets the same budget as one issued at time zero.
        """
        return self.run_until(self.is_converged, timeout=timeout)

    def run_until(self, predicate: Callable[[], bool], timeout: float = 2_000.0) -> bool:
        """Run until *predicate()* holds (or the *timeout* budget elapses).

        Unlike :meth:`Simulator.run_until`, whose ``timeout`` is an absolute
        clock deadline, the cluster-level *timeout* is relative to ``now``.
        """
        return self.simulator.run_until(
            predicate, timeout=self.simulator.now + timeout
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, Any]:
        """Aggregate cluster + simulator statistics for reporting."""
        stats = self.simulator.statistics()
        stats["resets"] = sum(node.recsa.reset_count for node in self.nodes.values())
        stats["installs"] = sum(node.recsa.install_count for node in self.nodes.values())
        stats["recma_triggers"] = sum(node.recma.trigger_count for node in self.nodes.values())
        stats["participants"] = len(self.participants())
        stats["recsa_broadcasts_sent"] = sum(
            node.recsa.broadcasts_sent for node in self.nodes.values()
        )
        stats["recsa_broadcasts_skipped"] = sum(
            node.recsa.broadcasts_skipped for node in self.nodes.values()
        )
        stats["recma_broadcasts_sent"] = sum(
            node.recma.broadcasts_sent for node in self.nodes.values()
        )
        stats["recma_broadcasts_skipped"] = sum(
            node.recma.broadcasts_skipped for node in self.nodes.values()
        )
        return stats


def build_cluster(
    n: int,
    seed: int = 0,
    config: Optional[ClusterConfig] = None,
    stack: Union[str, StackProfile, None] = None,
    *,
    upper_bound_n: Optional[int] = None,
    channel_config: Optional[ChannelConfig] = None,
    channel_capacity: Optional[int] = None,
    step_interval: Optional[float] = None,
    coherent_start: Optional[bool] = None,
    prediction_policy: Optional[PredictionPolicy] = None,
    admission_policy: Optional[Callable[[ProcessId], bool]] = None,
    require_link_cleaning: Optional[bool] = None,
    gossip_refresh_interval: Optional[int] = None,
    heartbeat_resend_interval: Optional[int] = None,
) -> Cluster:
    """Build a ready-to-run cluster of *n* nodes (identifiers ``0..n-1``).

    The one source of truth for tunables is *config* (a
    :class:`~repro.sim.config.ClusterConfig`, e.g. from a preset such as
    :func:`~repro.sim.config.fast_sim`); the keyword arguments are per-call
    overrides of individual fields.  Passing both an explicit
    ``channel_config`` and a disagreeing ``channel_capacity`` raises instead
    of silently ignoring the capacity.

    *stack* selects the :class:`~repro.sim.stacks.StackProfile` every node
    instantiates (a registry name such as ``"counters"`` or a configured
    profile object).
    """
    if n < 1:
        raise ValueError("a cluster needs at least one node")
    base = config if config is not None else ClusterConfig()
    base = base.with_overrides(
        upper_bound_n=upper_bound_n,
        channel=channel_config,
        channel_capacity=channel_capacity,
        step_interval=step_interval,
        coherent_start=coherent_start,
        prediction_policy=prediction_policy,
        admission_policy=admission_policy,
        require_link_cleaning=require_link_cleaning,
        gossip_refresh_interval=gossip_refresh_interval,
        heartbeat_resend_interval=heartbeat_resend_interval,
        stack=stack,
    )
    resolved = base.resolve(n)
    simulator = Simulator(seed=seed, channel_config=resolved.channel)
    cluster = Cluster(simulator=simulator, config=resolved)
    pids = list(range(n))
    initial = make_config(pids) if resolved.coherent_start else BOTTOM
    for pid in pids:
        cluster.add_node(pid, initial_config=initial, peers=pids)
    return cluster
