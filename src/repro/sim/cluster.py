"""Cluster wiring: a full protocol stack per simulated processor.

A :class:`ClusterNode` owns the complete stack of one processor:

* the token-exchange data links and heartbeat service (:mod:`repro.datalink`),
* the (N, Theta)-failure detector (:mod:`repro.failure_detector`),
* the composed reconfiguration scheme (:mod:`repro.core.scheme`),
* any registered application services (labels, counters, virtual synchrony).

:class:`Cluster` is the convenience facade used by examples, tests and the
benchmark harness: it creates the simulator, the initial nodes, and exposes
helpers such as :meth:`Cluster.run_until_converged` and
:meth:`Cluster.agreed_configuration`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Protocol

from repro.common.types import BOTTOM, Configuration, ProcessId, make_config
from repro.core.prediction import PredictionPolicy
from repro.core.scheme import ReconfigurationScheme
from repro.core.stale import is_real_config
from repro.datalink.heartbeat import DEFAULT_IDLE_RESEND_INTERVAL, HeartbeatService
from repro.datalink.token_exchange import DataLinkMessage
from repro.failure_detector.ntheta import NThetaFailureDetector
from repro.sim.network import ChannelConfig
from repro.sim.process import Process
from repro.sim.simulator import Simulator


class NodeService(Protocol):
    """Interface of application services pluggable into a node.

    A service may implement either hook; both are optional at runtime (the
    node checks with ``getattr``), but declaring the protocol documents the
    contract.
    """

    def on_timer(self) -> None:  # pragma: no cover - protocol declaration
        ...

    def on_message(self, sender: ProcessId, message: Any) -> bool:  # pragma: no cover
        ...


class ClusterNode(Process):
    """A simulated processor running the full reconfiguration stack."""

    def __init__(
        self,
        pid: ProcessId,
        peers: Iterable[ProcessId],
        upper_bound_n: int,
        initial_config: Any = None,
        channel_capacity: int = 8,
        step_interval: float = 1.0,
        prediction_policy: Optional[PredictionPolicy] = None,
        admission_policy: Optional[Callable[[ProcessId], bool]] = None,
        require_link_cleaning: bool = True,
        gossip_refresh_interval: Optional[int] = None,
        heartbeat_resend_interval: int = DEFAULT_IDLE_RESEND_INTERVAL,
    ) -> None:
        super().__init__(pid=pid, step_interval=step_interval)
        self._initial_peers = [p for p in peers if p != pid]
        self.failure_detector = NThetaFailureDetector(pid=pid, upper_bound_n=upper_bound_n)
        self.heartbeat = HeartbeatService(
            pid=pid,
            send=self._send_raw,
            channel_capacity=channel_capacity,
            require_cleaning=require_link_cleaning,
            idle_resend_interval=heartbeat_resend_interval,
        )
        self.heartbeat.add_heartbeat_listener(self.failure_detector.heartbeat)
        self.scheme = ReconfigurationScheme(
            pid=pid,
            fd_provider=self.trusted,
            send=self._send_raw,
            initial_config=initial_config,
            prediction_policy=prediction_policy,
            admission_policy=admission_policy,
            send_many=self._send_raw_many,
            gossip_refresh_interval=gossip_refresh_interval,
        )
        self.services: List[Any] = []

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def recsa(self):
        """The node's Reconfiguration Stability Assurance layer."""
        return self.scheme.recsa

    @property
    def recma(self):
        """The node's Reconfiguration Management layer."""
        return self.scheme.recma

    @property
    def joining(self):
        """The node's joining-mechanism instance."""
        return self.scheme.joining

    def trusted(self) -> FrozenSet[ProcessId]:
        """The failure detector's current trusted set (includes self)."""
        return self.failure_detector.trusted()

    def current_config(self) -> Optional[Configuration]:
        """The configuration this node currently reports, if any."""
        return self.scheme.configuration()

    def register_service(self, service: Any) -> Any:
        """Attach an application service (labels, counters, VS, ...)."""
        self.services.append(service)
        return service

    # ------------------------------------------------------------------
    # Process hooks
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        for peer in self._initial_peers:
            self.heartbeat.add_peer(peer)

    def on_timer(self) -> None:
        self.heartbeat.on_timer()
        self.scheme.step()
        for service in self.services:
            hook = getattr(service, "on_timer", None)
            if hook is not None:
                hook()

    def on_receive(self, sender: ProcessId, payload: Any) -> None:
        # A packet from an unknown peer is the "connection signal": create the
        # link (which starts the snap-stabilizing cleaning handshake).
        if sender not in self.heartbeat.links and sender != self.pid:
            self.heartbeat.add_peer(sender)
        if isinstance(payload, DataLinkMessage):
            self.heartbeat.on_packet(sender, payload)
            return
        # Protocol gossip proves the sender's liveness just as well as a
        # heartbeat token does, which is what lets idle links throttle their
        # token retransmissions without starving the failure detector.
        self.heartbeat.notify_traffic(sender)
        if self.scheme.on_message(sender, payload):
            return
        for service in self.services:
            hook = getattr(service, "on_message", None)
            if hook is not None and hook(sender, payload):
                return

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _send_raw(self, destination: ProcessId, payload: Any) -> None:
        if self.context is not None and not self.crashed:
            self.context.send(destination, payload)

    def _send_raw_many(self, payloads: Any) -> None:
        """Burst-send ``(destination, payload)`` pairs (broadcast fast path)."""
        if self.context is not None and not self.crashed:
            self.context.send_many(payloads)


class Cluster:
    """A simulated system of :class:`ClusterNode` processors."""

    def __init__(
        self,
        simulator: Simulator,
        upper_bound_n: int,
        channel_capacity: int = 8,
        step_interval: float = 1.0,
        prediction_policy: Optional[PredictionPolicy] = None,
        admission_policy: Optional[Callable[[ProcessId], bool]] = None,
        require_link_cleaning: bool = True,
        gossip_refresh_interval: Optional[int] = None,
        heartbeat_resend_interval: int = DEFAULT_IDLE_RESEND_INTERVAL,
    ) -> None:
        self.simulator = simulator
        self.upper_bound_n = upper_bound_n
        self.channel_capacity = channel_capacity
        self.step_interval = step_interval
        self.prediction_policy = prediction_policy
        self.admission_policy = admission_policy
        self.require_link_cleaning = require_link_cleaning
        self.gossip_refresh_interval = gossip_refresh_interval
        self.heartbeat_resend_interval = heartbeat_resend_interval
        self.nodes: Dict[ProcessId, ClusterNode] = {}

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def add_node(
        self,
        pid: ProcessId,
        initial_config: Any = None,
        peers: Optional[Iterable[ProcessId]] = None,
        prediction_policy: Optional[PredictionPolicy] = None,
    ) -> ClusterNode:
        """Create, register and start a node.

        ``initial_config`` follows the :class:`~repro.core.recsa.RecSA`
        convention: ``None`` boots a non-participant (a joiner), ``BOTTOM``
        boots into a brute-force reset (self-bootstrap), and a concrete set
        boots with that configuration installed (a coherent start).
        """
        if peers is None:
            peers = list(self.nodes.keys())
        node = ClusterNode(
            pid=pid,
            peers=peers,
            upper_bound_n=self.upper_bound_n,
            initial_config=initial_config,
            channel_capacity=self.channel_capacity,
            step_interval=self.step_interval,
            prediction_policy=prediction_policy or self.prediction_policy,
            admission_policy=self.admission_policy,
            require_link_cleaning=self.require_link_cleaning,
            gossip_refresh_interval=self.gossip_refresh_interval,
            heartbeat_resend_interval=self.heartbeat_resend_interval,
        )
        self.nodes[pid] = node
        self.simulator.add_process(node)
        return node

    def add_joiner(self, pid: ProcessId) -> ClusterNode:
        """Add a new processor that must go through the joining mechanism."""
        return self.add_node(pid, initial_config=None)

    def crash(self, pid: ProcessId) -> None:
        """Stop-fail node *pid*."""
        self.simulator.crash_process(pid)

    # ------------------------------------------------------------------
    # Collective queries
    # ------------------------------------------------------------------
    def alive_nodes(self) -> List[ClusterNode]:
        """Nodes that have started and not crashed."""
        return [node for node in self.nodes.values() if node.started and not node.crashed]

    def participants(self) -> List[ClusterNode]:
        """Alive nodes that are participants."""
        return [node for node in self.alive_nodes() if node.scheme.is_participant()]

    def agreed_configuration(self) -> Optional[Configuration]:
        """The single configuration every alive participant holds, if any.

        Returns ``None`` when participants disagree, some hold ``⊥``, or
        there are no participants at all.
        """
        configs = set()
        participants = self.participants()
        if not participants:
            return None
        for node in participants:
            value = node.recsa.config.get(node.pid)
            if not is_real_config(value):
                return None
            configs.add(value)
        if len(configs) != 1:
            return None
        return next(iter(configs))

    def is_converged(self) -> bool:
        """True when all alive participants agree and report stability."""
        config = self.agreed_configuration()
        if config is None:
            return False
        return all(node.scheme.no_reco() for node in self.participants())

    def all_nodes_participating(self) -> bool:
        """True when every alive node has become a participant."""
        alive = self.alive_nodes()
        return bool(alive) and all(node.scheme.is_participant() for node in alive)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Advance the simulation until simulated time *until*."""
        self.simulator.run(until=until)

    def run_until_converged(self, timeout: float = 2_000.0) -> bool:
        """Run until every alive participant agrees on a stable configuration."""
        return self.simulator.run_until(self.is_converged, timeout=timeout)

    def run_until(self, predicate: Callable[[], bool], timeout: float = 2_000.0) -> bool:
        """Run until *predicate()* holds (or the timeout elapses)."""
        return self.simulator.run_until(predicate, timeout=timeout)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, Any]:
        """Aggregate cluster + simulator statistics for reporting."""
        stats = self.simulator.statistics()
        stats["resets"] = sum(node.recsa.reset_count for node in self.nodes.values())
        stats["installs"] = sum(node.recsa.install_count for node in self.nodes.values())
        stats["recma_triggers"] = sum(node.recma.trigger_count for node in self.nodes.values())
        stats["participants"] = len(self.participants())
        return stats


def build_cluster(
    n: int,
    seed: int = 0,
    upper_bound_n: Optional[int] = None,
    channel_config: Optional[ChannelConfig] = None,
    channel_capacity: int = 8,
    step_interval: float = 1.0,
    coherent_start: bool = False,
    prediction_policy: Optional[PredictionPolicy] = None,
    admission_policy: Optional[Callable[[ProcessId], bool]] = None,
    require_link_cleaning: bool = False,
    gossip_refresh_interval: Optional[int] = None,
    heartbeat_resend_interval: int = 3,
) -> Cluster:
    """Build a ready-to-run cluster of *n* nodes (identifiers ``0..n-1``).

    Parameters
    ----------
    coherent_start:
        When True the nodes boot with the full configuration already
        installed (the assumption classical reconfiguration schemes make);
        when False (the default) they boot into a brute-force reset and
        *self-organize* into a configuration — the paper's headline ability.
    require_link_cleaning:
        Run the snap-stabilizing cleaning handshake on every link before
        heartbeats count.  Disabled by default to shorten simulations; the
        data-link tests exercise it explicitly.
    """
    if n < 1:
        raise ValueError("a cluster needs at least one node")
    if channel_config is None:
        channel_config = ChannelConfig(capacity=channel_capacity)
    simulator = Simulator(seed=seed, channel_config=channel_config)
    cluster = Cluster(
        simulator=simulator,
        upper_bound_n=upper_bound_n or max(2 * n, n + 2),
        channel_capacity=channel_config.capacity,
        step_interval=step_interval,
        prediction_policy=prediction_policy,
        admission_policy=admission_policy,
        require_link_cleaning=require_link_cleaning,
        gossip_refresh_interval=gossip_refresh_interval,
        heartbeat_resend_interval=heartbeat_resend_interval,
    )
    pids = list(range(n))
    initial = make_config(pids) if coherent_start else BOTTOM
    for pid in pids:
        cluster.add_node(pid, initial_config=initial, peers=pids)
    return cluster
