"""Cluster wiring: a full protocol stack per simulated processor.

A :class:`ClusterNode` owns the complete stack of one processor:

* the token-exchange data links and heartbeat service (:mod:`repro.datalink`),
* the (N, Theta)-failure detector (:mod:`repro.failure_detector`),
* the composed reconfiguration scheme (:mod:`repro.core.scheme`),
* the application services of its :class:`~repro.sim.stacks.StackProfile`
  (labels, counters, virtual synchrony, shared register), which the node
  instantiates itself — examples, tests and benchmarks pick a profile
  instead of hand-wiring services.

All tunables travel as one :class:`~repro.sim.config.ClusterConfig` value
shared by the cluster and every node, including nodes added later by churn.

:class:`Cluster` is the convenience facade used by examples, tests and the
benchmark harness: it creates the simulator, the initial nodes, and exposes
helpers such as :meth:`Cluster.run_until_converged` and
:meth:`Cluster.agreed_configuration`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Protocol, Union

from repro.common.errors import SimulationError
from repro.common.types import BOTTOM, Configuration, ProcessId, make_config
from repro.core.prediction import PredictionPolicy
from repro.core.scheme import ReconfigurationScheme
from repro.core.stale import is_real_config
from repro.datalink.heartbeat import HeartbeatService
from repro.datalink.token_exchange import DataLinkMessage
from repro.failure_detector.ntheta import NThetaFailureDetector
from repro.sim.config import ClusterConfig
from repro.sim.network import ChannelConfig
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from repro.sim.stacks import StackProfile, get_stack


class NodeService(Protocol):
    """Interface of application services pluggable into a node.

    A service may implement either hook; both are optional (the node inspects
    the service once, at registration, and dispatches through precomputed
    hook lists — no per-event ``getattr``).
    """

    def on_timer(self) -> None:  # pragma: no cover - protocol declaration
        ...

    def on_message(self, sender: ProcessId, message: Any) -> bool:  # pragma: no cover
        ...


#: Ledger entry for an alive node that is not (yet) a participant.
_NON_PARTICIPANT_ENTRY = "non-participant"
#: Ledger entry for a participant whose own config slot is not a real
#: configuration (⊥ or corrupted) — convergence is impossible while any exist.
_BAD_CONFIG_ENTRY = "bad-config"


class ConvergenceLedger:
    """Incremental convergence tracking: O(changed nodes) per check.

    ``Cluster.is_converged`` used to re-scan every node on every evaluation —
    and ``run_until_converged`` evaluates it as a predicate throughout the
    run, making the scan Θ(n) per event and the dominant cost of large
    bootstraps (61% of an n=128 profile).  The ledger replaces the scan with
    a *dirty set* plus counters: every event that can change a node's
    convergence contribution marks that node (from ``ClusterNode.on_timer`` /
    ``on_receive`` / ``crash`` / ``on_start``), and a check only recomputes
    the marked nodes' contributions, folding the differences into four
    aggregates:

    * ``participants`` — alive participants,
    * ``bad_config`` — participants whose own config slot is not real,
    * ``unstable`` — participants whose ``no_reco()`` is currently false,
    * ``config_counts`` — multiset of the participants' real configs.

    Convergence ⇔ ``participants > 0 ∧ bad_config == 0 ∧ unstable == 0 ∧
    len(config_counts) == 1`` — exactly the predicate the full scan computes,
    because each node's contribution depends only on that node's local state,
    and local state only changes inside the marked entry points (or through
    out-of-band mutation, covered by :meth:`mark_all` at every
    ``Cluster.run``/``run_until`` entry and by the fault injector's explicit
    invalidation).  ``ClusterConfig.convergence_oracle_checks`` cross-checks
    every answer against the retained scan oracle.
    """

    __slots__ = (
        "_cluster",
        "_dirty",
        "_entries",
        "_participants",
        "_bad_config",
        "_unstable",
        "_config_counts",
    )

    def __init__(self, cluster: "Cluster") -> None:
        self._cluster = cluster
        self._dirty: set = set()
        self._entries: Dict[ProcessId, Any] = {}
        self._participants = 0
        self._bad_config = 0
        self._unstable = 0
        self._config_counts: Dict[Any, int] = {}

    def mark(self, pid: ProcessId) -> None:
        """Record that *pid*'s convergence contribution may have changed."""
        self._dirty.add(pid)

    def mark_all(self) -> None:
        """Mark every known node (out-of-band mutations, run entry)."""
        self._dirty.update(self._cluster.nodes)

    def refresh(self) -> None:
        """Fold every dirty node's (re)computed contribution into the counters."""
        dirty = self._dirty
        if not dirty:
            return
        nodes = self._cluster.nodes
        entries = self._entries
        for pid in dirty:
            node = nodes.get(pid)
            new = None if node is None else self._contribution(node)
            old = entries.get(pid)
            if new == old:
                continue
            if old is not None:
                self._account(old, -1)
            if new is None:
                del entries[pid]
            else:
                entries[pid] = new
                self._account(new, +1)
        dirty.clear()

    def converged(self) -> bool:
        """The aggregate predicate (callers must :meth:`refresh` first)."""
        return (
            self._participants > 0
            and self._bad_config == 0
            and self._unstable == 0
            and len(self._config_counts) == 1
        )

    def summary(self) -> tuple:
        """Mergeable counters ``(participants, bad, unstable, configs)``.

        Refreshes first.  The sharded coordinator folds one summary per
        shard: convergence of the whole system ⇔ summed participants > 0,
        summed bad and unstable are zero, and the union of the distinct
        config values has size one.
        """
        self.refresh()
        return (
            self._participants,
            self._bad_config,
            self._unstable,
            tuple(self._config_counts),
        )

    @staticmethod
    def _contribution(node: "ClusterNode") -> Any:
        if not node.started or node.crashed:
            return None
        scheme = node.scheme
        if not scheme.is_participant():
            return _NON_PARTICIPANT_ENTRY
        value = node.recsa.config.get(node.pid)
        if not is_real_config(value):
            return _BAD_CONFIG_ENTRY
        return (value, scheme.no_reco())

    def _account(self, entry: Any, sign: int) -> None:
        if entry == _NON_PARTICIPANT_ENTRY:
            return
        self._participants += sign
        if entry == _BAD_CONFIG_ENTRY:
            self._bad_config += sign
            return
        value, stable = entry
        if not stable:
            self._unstable += sign
        counts = self._config_counts
        total = counts.get(value, 0) + sign
        if total:
            counts[value] = total
        else:
            del counts[value]


class ClusterNode(Process):
    """A simulated processor running the full reconfiguration stack."""

    def __init__(
        self,
        pid: ProcessId,
        peers: Iterable[ProcessId],
        config: ClusterConfig,
        initial_config: Any = None,
        stack: Optional[StackProfile] = None,
        prediction_policy: Optional[PredictionPolicy] = None,
    ) -> None:
        peers = list(peers)
        if config.channel is None or config.upper_bound_n is None:
            config = config.resolve(n=len(peers) or 1)
        super().__init__(pid=pid, step_interval=config.step_interval)
        self.config = config
        self._initial_peers = [p for p in peers if p != pid]
        #: Out-of-band knobs read by stack-profile policies (e.g. the default
        #: ``vs_smr`` evalConfig reads ``control["reconfigure"]``).
        self.control: Dict[str, Any] = {}
        #: ``ConvergenceLedger.mark`` of the owning cluster (installed by
        #: ``Cluster.add_node``); ``None`` for nodes driven outside a cluster.
        self._converge_mark: Optional[Callable[[ProcessId], None]] = None
        fd_kwargs: Dict[str, Any] = {}
        if config.fd_gap_slack is not None:
            fd_kwargs["gap_slack"] = config.fd_gap_slack
        self.failure_detector = NThetaFailureDetector(
            pid=pid, upper_bound_n=config.upper_bound_n, **fd_kwargs
        )
        self.heartbeat = HeartbeatService(
            pid=pid,
            send=self._send_raw,
            channel_capacity=config.channel.capacity,
            require_cleaning=config.require_link_cleaning,
            idle_resend_interval=config.heartbeat_resend_interval,
        )
        self.heartbeat.add_heartbeat_listener(self.failure_detector.heartbeat)
        self.scheme = ReconfigurationScheme(
            pid=pid,
            fd_provider=self.trusted,
            send=self._send_raw,
            initial_config=initial_config,
            prediction_policy=prediction_policy or config.prediction_policy,
            admission_policy=config.admission_policy,
            send_many=self._send_raw_many,
            gossip_refresh_interval=config.gossip_refresh_interval,
            gossip_deltas=config.gossip_deltas,
        )
        self.services: List[Any] = []
        self.service_map: Dict[str, Any] = {}
        self._timer_hooks: List[Callable[[], None]] = []
        self._message_hooks: List[Callable[[ProcessId, Any], bool]] = []
        self.stack: StackProfile = stack if stack is not None else get_stack(config.stack)
        for name, service in self.stack.instantiate(self).items():
            self.register_service(service, name=name)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    @property
    def recsa(self):
        """The node's Reconfiguration Stability Assurance layer."""
        return self.scheme.recsa

    @property
    def recma(self):
        """The node's Reconfiguration Management layer."""
        return self.scheme.recma

    @property
    def joining(self):
        """The node's joining-mechanism instance."""
        return self.scheme.joining

    def trusted(self) -> FrozenSet[ProcessId]:
        """The failure detector's current trusted set (includes self)."""
        return self.failure_detector.trusted()

    def current_config(self) -> Optional[Configuration]:
        """The configuration this node currently reports, if any."""
        return self.scheme.configuration()

    def register_service(self, service: Any, name: Optional[str] = None) -> Any:
        """Attach an application service (labels, counters, VS, ...).

        Hook methods are looked up once here; dispatch afterwards walks plain
        lists.  Objects without hooks (e.g. a :class:`SharedRegister` client)
        still land in :attr:`service_map` under *name*.
        """
        self.services.append(service)
        if name is not None:
            self.service_map[name] = service
        timer_hook = getattr(service, "on_timer", None)
        if callable(timer_hook):
            self._timer_hooks.append(timer_hook)
        message_hook = getattr(service, "on_message", None)
        if callable(message_hook):
            self._message_hooks.append(message_hook)
        return service

    def service(self, name: str) -> Any:
        """The stack service registered under *name* (e.g. ``"vs"``)."""
        try:
            return self.service_map[name]
        except KeyError:
            raise KeyError(
                f"node {self.pid} (stack {self.stack.name!r}) has no service "
                f"{name!r}; available: {sorted(self.service_map)}"
            ) from None

    # ------------------------------------------------------------------
    # Process hooks
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        mark = self._converge_mark
        if mark is not None:
            mark(self.pid)
        for peer in self._initial_peers:
            self.heartbeat.add_peer(peer)

    def on_timer(self) -> None:
        mark = self._converge_mark
        if mark is not None:
            mark(self.pid)
        self.heartbeat.on_timer()
        self.scheme.step()
        for hook in self._timer_hooks:
            hook()

    def crash(self) -> None:
        mark = self._converge_mark
        if mark is not None:
            mark(self.pid)
        super().crash()

    def on_receive(self, sender: ProcessId, payload: Any) -> None:
        # Any receipt can move this node's convergence contribution: protocol
        # gossip mutates the replicated arrays, and even a bare heartbeat
        # token shifts the failure detector, hence trusted() and no_reco().
        mark = self._converge_mark
        if mark is not None:
            mark(self.pid)
        # A packet from an unknown peer is the "connection signal": create the
        # link (which starts the snap-stabilizing cleaning handshake).
        if sender not in self.heartbeat.links and sender != self.pid:
            self.heartbeat.add_peer(sender)
        if isinstance(payload, DataLinkMessage):
            self.heartbeat.on_packet(sender, payload)
            return
        # Protocol gossip proves the sender's liveness just as well as a
        # heartbeat token does, which is what lets idle links throttle their
        # token retransmissions without starving the failure detector.
        self.heartbeat.notify_traffic(sender)
        if self.scheme.on_message(sender, payload):
            return
        for hook in self._message_hooks:
            if hook(sender, payload):
                return

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, destination: ProcessId, payload: Any) -> None:
        """Send *payload* to *destination* (no-op when crashed/unbound).

        This is the public send surface handed to stack services; the
        underscore alias remains for the scheme/heartbeat wiring above.
        """
        if self.context is not None and not self.crashed:
            self.context.send(destination, payload)

    _send_raw = send

    def _send_raw_many(self, payloads: Any) -> None:
        """Burst-send ``(destination, payload)`` pairs (broadcast fast path)."""
        if self.context is not None and not self.crashed:
            self.context.send_many(payloads)


def converged_scan(nodes: Iterable[ClusterNode]) -> bool:
    """The full-scan convergence oracle over any collection of nodes.

    True when at least one alive participant exists, every alive participant
    holds the same real configuration, and none reports a reconfiguration in
    progress.  Shared by :meth:`Cluster.is_converged_scan` (the simulator
    ledger's cross-check) and the asyncio :class:`repro.runtime.cluster
    .RuntimeCluster`, which has no ledger and polls this directly.
    """
    agreed = None
    found = False
    for node in nodes:
        if not node.started or node.crashed:
            continue
        scheme = node.scheme
        if not scheme.is_participant():
            continue
        value = node.recsa.config.get(node.pid)
        if not is_real_config(value):
            return False
        if found:
            if value != agreed:
                return False
        else:
            agreed = value
            found = True
        if not scheme.no_reco():
            return False
    return found


class Cluster:
    """A simulated system of :class:`ClusterNode` processors."""

    def __init__(self, simulator: Simulator, config: ClusterConfig) -> None:
        if config.channel is None or config.upper_bound_n is None:
            raise SimulationError(
                "Cluster requires a resolved ClusterConfig; call "
                "config.resolve(n) (or use build_cluster)"
            )
        self.simulator = simulator
        self.config = config
        self.stack: StackProfile = get_stack(config.stack)
        self.nodes: Dict[ProcessId, ClusterNode] = {}
        #: Pids that have *ever* run a Byzantine traitor program (see
        #: :mod:`repro.audit.byzantine`).  Honest-node safety invariants
        #: (``rb_agreement``/``rb_validity``) exclude these: a traitor's own
        #: local state carries no guarantees, even after it falls silent.
        self.byzantine_pids: set = set()
        #: Deterministic, JSON-serializable reports appended by installed
        #: workloads (e.g. what a corruption workload actually injected); the
        #: scenario runner copies them into the result dictionary.
        self.workload_reports: List[Dict[str, Any]] = []
        #: Incremental convergence state (see :class:`ConvergenceLedger`).
        self.convergence_ledger = ConvergenceLedger(self)
        self._poll_interval = config.poll_interval()

    @property
    def environment(self):
        """The network's time-varying environment layer (link programs,
        partitions); what adversarial environment programs mutate mid-run."""
        return self.simulator.network.environment

    # Convenience views on the shared config (kept for existing callers).
    @property
    def upper_bound_n(self) -> int:
        return self.config.upper_bound_n  # type: ignore[return-value]

    @property
    def channel_capacity(self) -> int:
        return self.config.channel.capacity  # type: ignore[union-attr]

    @property
    def step_interval(self) -> float:
        return self.config.step_interval

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def add_node(
        self,
        pid: ProcessId,
        initial_config: Any = None,
        peers: Optional[Iterable[ProcessId]] = None,
        prediction_policy: Optional[PredictionPolicy] = None,
        stack: Optional[StackProfile] = None,
    ) -> ClusterNode:
        """Create, register and start a node.

        ``initial_config`` follows the :class:`~repro.core.recsa.RecSA`
        convention: ``None`` boots a non-participant (a joiner), ``BOTTOM``
        boots into a brute-force reset (self-bootstrap), and a concrete set
        boots with that configuration installed (a coherent start).  The node
        runs the cluster's stack profile unless *stack* overrides it.
        """
        if peers is None:
            peers = list(self.nodes.keys())
        node = ClusterNode(
            pid=pid,
            peers=peers,
            config=self.config,
            initial_config=initial_config,
            stack=stack if stack is not None else self.stack,
            prediction_policy=prediction_policy,
        )
        self.nodes[pid] = node
        node._converge_mark = self.convergence_ledger.mark
        self.convergence_ledger.mark(pid)
        self.simulator.add_process(node)
        return node

    def add_joiner(self, pid: ProcessId) -> ClusterNode:
        """Add a new processor that must go through the joining mechanism."""
        return self.add_node(pid, initial_config=None)

    def crash(self, pid: ProcessId) -> None:
        """Stop-fail node *pid* (must exist)."""
        self.simulator.crash_process(pid)

    def try_crash(self, pid: ProcessId) -> bool:
        """Crash *pid* if it exists and is alive; report whether it fired.

        The guard every scheduled workload needs: a churn trace or crash
        storm may target a pid that was never added or already crashed.
        """
        node = self.nodes.get(pid)
        if node is None or node.crashed:
            return False
        self.crash(pid)
        return True

    # ------------------------------------------------------------------
    # Collective queries
    # ------------------------------------------------------------------
    def alive_nodes(self) -> List[ClusterNode]:
        """Nodes that have started and not crashed."""
        return [node for node in self.nodes.values() if node.started and not node.crashed]

    def participants(self) -> List[ClusterNode]:
        """Alive nodes that are participants."""
        return [node for node in self.alive_nodes() if node.scheme.is_participant()]

    def services(self, name: str) -> Dict[ProcessId, Any]:
        """The *name* stack service of every node that carries one."""
        return {
            pid: node.service_map[name]
            for pid, node in self.nodes.items()
            if name in node.service_map
        }

    def agreed_configuration(self) -> Optional[Configuration]:
        """The single configuration every alive participant holds, if any.

        Returns ``None`` when participants disagree, some hold ``⊥``, or
        there are no participants at all.  Single pass with early exit —
        the predicate over each node is pure, so bailing at the first
        non-real or disagreeing config returns the same answer the old
        two-scan (participants list + throwaway config set) version did.
        """
        agreed = None
        for node in self.nodes.values():
            if not node.started or node.crashed or not node.scheme.is_participant():
                continue
            value = node.recsa.config.get(node.pid)
            if not is_real_config(value):
                return None
            if agreed is None:
                agreed = value
            elif value != agreed:
                return None
        return agreed

    def is_converged(self) -> bool:
        """True when all alive participants agree and report stability.

        Answered by the :class:`ConvergenceLedger` in O(nodes touched since
        the last check) instead of a full-cluster scan — this is evaluated as
        a predicate throughout ``run_until_converged``, where the scan was
        Θ(n) per event.  ``ClusterConfig.convergence_oracle_checks`` makes
        every answer cross-check against :meth:`is_converged_scan` (the
        retained oracle) and raise on divergence.
        """
        ledger = self.convergence_ledger
        ledger.refresh()
        result = ledger.converged()
        if self.config.convergence_oracle_checks:
            oracle = self.is_converged_scan()
            if oracle != result:
                raise SimulationError(
                    f"convergence ledger diverged from the scan oracle at "
                    f"t={self.simulator.now}: ledger={result}, scan={oracle}"
                )
        return result

    def is_converged_scan(self) -> bool:
        """The full-scan convergence oracle (single pass, early exit)."""
        return converged_scan(self.nodes.values())

    def all_nodes_participating(self) -> bool:
        """True when every alive node has become a participant."""
        alive = self.alive_nodes()
        return bool(alive) and all(node.scheme.is_participant() for node in alive)

    def invalidate_convergence(self, pid: Optional[ProcessId] = None) -> None:
        """Mark convergence state stale after out-of-band node mutation.

        Fault injectors, corruption workloads and tests that mutate node
        state directly (instead of through the node's own event hooks) must
        call this so the incremental ledger re-examines the touched node
        (or, with no *pid*, every node) at the next check.
        """
        if pid is None:
            self.convergence_ledger.mark_all()
        else:
            self.convergence_ledger.mark(pid)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Advance the simulation until simulated time *until*."""
        # Anything may have been mutated out-of-band since the last run
        # (tests poking node state between calls); re-examine every node at
        # the next convergence check.
        self.convergence_ledger.mark_all()
        self.simulator.run(until=until)

    def run_until_converged(self, timeout: float = 2_000.0) -> bool:
        """Run until every alive participant agrees on a stable configuration.

        *timeout* is a **budget of simulated time from the current instant**,
        so a re-convergence check issued late in a long run (``now > 2000``)
        gets the same budget as one issued at time zero.
        """
        return self.run_until(self.is_converged, timeout=timeout)

    def run_until(self, predicate: Callable[[], bool], timeout: float = 2_000.0) -> bool:
        """Run until *predicate()* holds (or the *timeout* budget elapses).

        Unlike :meth:`Simulator.run_until`, whose ``timeout`` is an absolute
        clock deadline, the cluster-level *timeout* is relative to ``now``.

        The predicate is polled on a simulated-time cadence
        (``ClusterConfig.convergence_poll_interval``; by default the minimum
        event spacing — the smaller of the step interval and the minimum
        link delay) rather than after every executed event, so a detected
        flip moves by at most one poll interval while dense event bursts pay
        one evaluation per interval.
        """
        self.convergence_ledger.mark_all()
        return self.simulator.run_until(
            predicate,
            timeout=self.simulator.now + timeout,
            poll_interval=self._poll_interval,
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def statistics(self) -> Dict[str, Any]:
        """Aggregate cluster + simulator statistics for reporting."""
        stats = self.simulator.statistics()
        stats["resets"] = sum(node.recsa.reset_count for node in self.nodes.values())
        stats["installs"] = sum(node.recsa.install_count for node in self.nodes.values())
        stats["recma_triggers"] = sum(node.recma.trigger_count for node in self.nodes.values())
        stats["participants"] = len(self.participants())
        stats["recsa_broadcasts_sent"] = sum(
            node.recsa.broadcasts_sent for node in self.nodes.values()
        )
        stats["recsa_broadcasts_skipped"] = sum(
            node.recsa.broadcasts_skipped for node in self.nodes.values()
        )
        stats["recma_broadcasts_sent"] = sum(
            node.recma.broadcasts_sent for node in self.nodes.values()
        )
        stats["recma_broadcasts_skipped"] = sum(
            node.recma.broadcasts_skipped for node in self.nodes.values()
        )
        return stats


def build_cluster(
    n: int,
    seed: int = 0,
    config: Optional[ClusterConfig] = None,
    stack: Union[str, StackProfile, None] = None,
    *,
    upper_bound_n: Optional[int] = None,
    channel_config: Optional[ChannelConfig] = None,
    channel_capacity: Optional[int] = None,
    step_interval: Optional[float] = None,
    coherent_start: Optional[bool] = None,
    prediction_policy: Optional[PredictionPolicy] = None,
    admission_policy: Optional[Callable[[ProcessId], bool]] = None,
    require_link_cleaning: Optional[bool] = None,
    gossip_refresh_interval: Optional[int] = None,
    heartbeat_resend_interval: Optional[int] = None,
) -> Cluster:
    """Build a ready-to-run cluster of *n* nodes (identifiers ``0..n-1``).

    The one source of truth for tunables is *config* (a
    :class:`~repro.sim.config.ClusterConfig`, e.g. from a preset such as
    :func:`~repro.sim.config.fast_sim`); the keyword arguments are per-call
    overrides of individual fields.  Passing both an explicit
    ``channel_config`` and a disagreeing ``channel_capacity`` raises instead
    of silently ignoring the capacity.

    *stack* selects the :class:`~repro.sim.stacks.StackProfile` every node
    instantiates (a registry name such as ``"counters"`` or a configured
    profile object).
    """
    if n < 1:
        raise ValueError("a cluster needs at least one node")
    base = config if config is not None else ClusterConfig()
    base = base.with_overrides(
        upper_bound_n=upper_bound_n,
        channel=channel_config,
        channel_capacity=channel_capacity,
        step_interval=step_interval,
        coherent_start=coherent_start,
        prediction_policy=prediction_policy,
        admission_policy=admission_policy,
        require_link_cleaning=require_link_cleaning,
        gossip_refresh_interval=gossip_refresh_interval,
        heartbeat_resend_interval=heartbeat_resend_interval,
        stack=stack,
    )
    resolved = base.resolve(n)
    simulator = Simulator(
        seed=seed,
        channel_config=resolved.channel,
        broadcast_streams=resolved.broadcast_streams,
    )
    cluster = Cluster(simulator=simulator, config=resolved)
    pids = list(range(n))
    initial = make_config(pids) if resolved.coherent_start else BOTTOM
    for pid in pids:
        cluster.add_node(pid, initial_config=initial, peers=pids)
    return cluster
