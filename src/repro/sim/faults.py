"""Transient-fault injection.

The paper models transient faults as an *arbitrary starting state*: any
processor variable and any channel content may be corrupted (bounded by the
channel capacity).  The :class:`FaultInjector` reproduces this by:

* overwriting protocol-state fields of live processes with adversarially
  chosen (but type-correct) values,
* stuffing channels with stale packets,
* crashing processes and introducing churn (starting new joiners),
* temporarily partitioning the network.

A :class:`TransientFaultCampaign` describes a reproducible schedule of such
injections and is what the benchmark harness and the property-based tests
drive.
"""

from __future__ import annotations

import random
from collections.abc import MutableMapping
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.common.rng import make_rng
from repro.common.types import (
    BOTTOM,
    DEFAULT_PROPOSAL,
    NOT_PARTICIPANT,
    Configuration,
    Phase,
    ProcessId,
    Proposal,
    make_config,
)
from repro.sim.events import Action
from repro.sim.simulator import Simulator


@dataclass
class FaultRecord:
    """One injected fault, for post-mortem analysis of a run."""

    time: float
    kind: str
    target: Any
    details: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CorruptionAtom:
    """One independently applicable unit of the paper's transient-fault model.

    The arbitrary-state generator (:mod:`repro.audit.arbitrary_state`)
    produces *plans* — ordered lists of atoms — instead of mutating state
    directly, so that a violating run can be **shrunk** to a minimal
    reproducer by re-running subsets of the plan.  An atom is plain data
    (target pid, an attribute path, a key, a value), which keeps reproducers
    printable and plans comparable across runs.

    Kinds
    -----
    ``attr``
        ``setattr`` on the object reached by walking *path* from the node;
        *key* is the attribute name.
    ``entry``
        Overwrite one entry of the mapping reached by *path*; *key* is the
        mapping key.
    ``channel``
        Stuff a stale packet into the channel ``pid → key`` (*value* is the
        payload); bounded by the channel capacity like every injection.

    A *path* component of the form ``"service:<name>"`` descends into the
    node's ``service_map`` (and the atom is skipped when the node does not
    run that service); every other component is a plain attribute lookup.
    """

    kind: str
    pid: ProcessId
    path: Tuple[str, ...] = ()
    key: Any = None
    value: Any = None

    def describe(self) -> str:
        """Compact human-readable form (used in shrunk reproducers)."""
        if self.kind == "channel":
            return f"channel {self.pid}->{self.key}: stuff {self.value!r}"
        location = ".".join(self.path)
        if self.kind == "entry":
            return f"node {self.pid}: {location}[{self.key!r}] = {self.value!r}"
        return f"node {self.pid}: {location}.{self.key} = {self.value!r}"


def _resolve_path(node: Any, path: Tuple[str, ...]) -> Any:
    """Walk *path* from *node*; ``None`` when any component is missing."""
    target = node
    for component in path:
        if component.startswith("service:"):
            target = node.service_map.get(component[len("service:"):])
        else:
            target = getattr(target, component, None)
        if target is None:
            return None
    return target


class FaultInjector:
    """Injects crashes, state corruption and stale packets into a simulation."""

    def __init__(self, simulator: Simulator, seed: int = 0) -> None:
        self.simulator = simulator
        self.rng = make_rng(seed, "fault-injector")
        self.records: List[FaultRecord] = []
        # Partitions this injector installed; the scope of a no-name heal().
        self._partition_names: List[str] = []

    # ------------------------------------------------------------ crash/churn
    def crash(self, pid: ProcessId) -> None:
        """Stop-fail process *pid*."""
        self.simulator.crash_process(pid)
        self._record("crash", pid)

    def crash_many(self, pids: Iterable[ProcessId]) -> None:
        """Crash several processes at the current instant."""
        for pid in pids:
            self.crash(pid)

    def crash_majority_of(self, config: Configuration) -> List[ProcessId]:
        """Crash a (deterministically chosen) majority of *config*.

        Used by experiment E4: the recMA layer must detect the collapse and
        trigger a reconfiguration.
        """
        members = sorted(config)
        victims = members[: len(members) // 2 + 1]
        self.crash_many(victims)
        return victims

    def schedule_crash(self, time: float, pid: ProcessId) -> None:
        """Crash *pid* at absolute simulated time *time*."""
        self.simulator.call_at(time, Action(self.crash, pid), label=f"fault:crash:{pid}")

    # -------------------------------------------------------- state corruption
    def corrupt_attribute(self, obj: Any, attribute: str, value: Any) -> None:
        """Overwrite ``obj.attribute`` with *value* (arbitrary state corruption)."""
        setattr(obj, attribute, value)
        self._record("corrupt", f"{type(obj).__name__}.{attribute}", {"value": repr(value)})

    def corrupt_mapping_entry(self, mapping: Dict[Any, Any], key: Any, value: Any) -> None:
        """Overwrite one entry of a protocol-state dictionary."""
        mapping[key] = value
        self._record("corrupt-entry", key, {"value": repr(value)})

    def random_configuration(self, universe: Sequence[ProcessId]) -> Configuration:
        """Draw a random non-empty configuration over *universe*."""
        size = self.rng.randint(1, max(1, len(universe)))
        return make_config(self.rng.sample(list(universe), size))

    def random_config_value(self, universe: Sequence[ProcessId]) -> Any:
        """Draw an arbitrary ``config`` field value: a set, ``⊥``, ``]`` or ∅."""
        roll = self.rng.random()
        if roll < 0.15:
            return BOTTOM
        if roll < 0.30:
            return NOT_PARTICIPANT
        if roll < 0.40:
            return frozenset()
        return self.random_configuration(universe)

    def random_proposal(self, universe: Sequence[ProcessId]) -> Proposal:
        """Draw an arbitrary notification ``⟨phase, set⟩`` (may be invalid)."""
        phase = Phase(self.rng.choice([0, 1, 2]))
        if self.rng.random() < 0.3:
            members: Optional[Configuration] = None
        else:
            members = self.random_configuration(universe)
        return Proposal(phase=phase, members=members)

    # ---------------------------------------------------------- atom plans
    def apply_atom(self, cluster: Any, atom: CorruptionAtom) -> bool:
        """Apply one :class:`CorruptionAtom` against *cluster*.

        Returns ``True`` when the corruption landed (the node exists and is
        alive, the path resolves, the channel had room).  Every applied atom
        is recorded like any other injection, so post-mortem analysis sees
        generated and hand-picked faults uniformly.
        """
        if atom.kind == "channel":
            return self.stuff_channel(atom.pid, atom.key, atom.value)
        node = cluster.nodes.get(atom.pid)
        if node is None or node.crashed or not node.started:
            return False
        target = _resolve_path(node, atom.path)
        if target is None:
            return False
        if atom.kind == "attr":
            self.corrupt_attribute(target, atom.key, atom.value)
        elif atom.kind == "entry":
            # MutableMapping (not just dict): the failure detector's
            # ``counts`` is an offset-encoded mapping view, and its entries
            # remain a legitimate corruption surface.
            if not isinstance(target, (dict, MutableMapping)):
                return False
            self.corrupt_mapping_entry(target, atom.key, atom.value)
        else:
            raise SimulationError(f"unknown corruption-atom kind {atom.kind!r}")
        # State was mutated behind the node's back: the incremental
        # convergence ledger must re-examine this node at the next check.
        invalidate = getattr(cluster, "invalidate_convergence", None)
        if invalidate is not None:
            invalidate(atom.pid)
        return True

    def apply_plan(
        self, cluster: Any, atoms: Iterable[CorruptionAtom]
    ) -> Dict[str, int]:
        """Apply every atom in order; report how many landed vs were skipped."""
        applied = skipped = 0
        for atom in atoms:
            if self.apply_atom(cluster, atom):
                applied += 1
            else:
                skipped += 1
        return {"applied": applied, "skipped": skipped}

    # ------------------------------------------------------------ byzantine
    def make_byzantine(self, cluster: Any, pid: ProcessId, program: Any) -> bool:
        """Turn node *pid* into an active adversary running *program*.

        *program* is a :class:`~repro.audit.byzantine.TraitorProgram` (duck-
        typed here to keep the fault layer free of audit imports): activation
        registers it as the simulator's outbound interceptor for *pid* and
        starts its spontaneous-traffic tick.  Recorded like every other
        injection, so post-mortems see crashes, corruption and treason
        uniformly.  Returns ``False`` for dead/unknown nodes.
        """
        node = cluster.nodes.get(pid)
        if node is None or node.crashed or not node.started:
            return False
        program.activate()
        self._record(
            "byzantine", pid, {"behaviors": list(program.behavior_names)}
        )
        return True

    def restore_honest(self, pid: ProcessId) -> None:
        """End *pid*'s Byzantine window: stop intercepting its traffic.

        The node resumes honest execution of whatever state it holds; it
        stays marked in ``cluster.byzantine_pids`` because its local state
        carries no guarantees.
        """
        interceptors = getattr(self.simulator, "outbound_interceptors", {})
        program = interceptors.get(pid)
        if program is not None:
            program.deactivate()
            self._record("byzantine-end", pid)

    # ------------------------------------------------------------- channels
    def stuff_channel(self, source: ProcessId, destination: ProcessId, payload: Any) -> bool:
        """Inject a stale packet into the channel source→destination."""
        accepted = self.simulator.network.stuff_channel(source, destination, payload)
        self._record("stuff-channel", (source, destination), {"accepted": accepted})
        return accepted

    # ------------------------------------------------------------ partitions
    def partition(
        self,
        group_a: Iterable[ProcessId],
        group_b: Iterable[ProcessId],
        name: Optional[str] = None,
        leak: float = 0.0,
        symmetric: bool = True,
    ) -> str:
        """Partition the network between the two groups; return the name.

        Delegates to the :class:`~repro.sim.environment.NetworkEnvironment`'s
        directed model: ``symmetric=False`` blocks only a→b links, ``leak``
        lets the occasional packet cross, and the returned name heals this
        partition independently of any other.
        """
        group_a = list(group_a)
        group_b = list(group_b)
        name = self.simulator.network.environment.partition(
            group_a, group_b, name=name, leak=leak, symmetric=symmetric
        )
        self._partition_names.append(name)
        self._record(
            "partition",
            (tuple(group_a), tuple(group_b)),
            {"name": name, "leak": leak, "symmetric": symmetric},
        )
        return name

    def heal(self, name: Optional[str] = None) -> None:
        """Heal the named partition (default: every partition *this injector*
        installed — never partitions owned by a running environment program)."""
        environment = self.simulator.network.environment
        if name is not None:
            environment.heal(name)
            if name in self._partition_names:
                self._partition_names.remove(name)
        else:
            for own in self._partition_names:
                environment.heal(own)
            self._partition_names.clear()
        self._record("heal", name)

    # ------------------------------------------------------------- internals
    def _record(self, kind: str, target: Any, details: Optional[Dict[str, Any]] = None) -> None:
        self.records.append(
            FaultRecord(time=self.simulator.now, kind=kind, target=target, details=details or {})
        )


@dataclass
class TransientFaultCampaign:
    """A reproducible schedule of fault injections.

    Each action is ``(time, callable)``; :meth:`install` registers them with
    the simulator.  The campaign object is what workload generators build.
    """

    actions: List[tuple] = field(default_factory=list)

    def add(self, time: float, action: Callable[[], None], label: str = "") -> None:
        """Append an action firing at simulated time *time*."""
        self.actions.append((time, action, label))

    def install(self, target: Any) -> None:
        """Register every action with *target* — a cluster or a simulator.

        Accepting either lets a campaign be used wherever the scenario
        layer's ``Workload.install(cluster)`` protocol is expected.
        """
        simulator: Simulator = getattr(target, "simulator", target)
        for time, action, label in self.actions:
            simulator.call_at(time, action, label=label or "fault-campaign")

    def __len__(self) -> int:
        return len(self.actions)
